//! Cross-validation of the three independent solvability engines:
//!
//! 1. the exact Theorem III.8 procedure on classic schemes;
//! 2. the ω-automata procedure on regular schemes;
//! 3. the full-information bounded model checker.
//!
//! Where their domains overlap they must never contradict each other —
//! and the ways they legitimately differ (bounded vs unbounded rounds)
//! are asserted too.

use minobs_core::prelude::*;
use minobs_core::scenario::enumerate_gamma_lassos;
use minobs_core::theorem::min_excluded_prefix;
use minobs_omega::schemes as rs;
use minobs_synth::checker::{first_solvable_horizon, gamma_alphabet, solvable_by};

#[test]
fn bounded_solvability_implies_theorem_solvability() {
    // If the checker finds a k-round algorithm, Theorem III.8 must agree
    // the scheme is solvable (the converse fails for unbounded schemes).
    let schemes = [
        classic::s0(),
        classic::t_white(),
        classic::t_black(),
        classic::c1(),
        classic::s1(),
        classic::r1(),
        classic::fair_gamma(),
        classic::almost_fair(),
    ];
    for scheme in schemes {
        let bounded = first_solvable_horizon(&scheme, 4, &gamma_alphabet()).is_some();
        let solvable = decide_classic(&scheme).is_solvable();
        if bounded {
            assert!(solvable, "{}: bounded ⟹ solvable", scheme.name());
        }
        if !solvable {
            assert!(!bounded, "{}: obstruction ⟹ unbounded", scheme.name());
        }
    }
}

#[test]
fn horizon_equals_prefix_bound_everywhere() {
    // first_solvable_horizon = min_excluded_prefix — Corollary III.14 and
    // Proposition III.15 fused into one executable identity, on classic
    // and constructed schemes alike.
    let mut schemes: Vec<ClassicScheme> = vec![
        classic::s0(),
        classic::t_white(),
        classic::c1(),
        classic::s1(),
        classic::r1(),
        classic::fair_gamma(),
    ];
    for w0 in ["w", "b-", "wbw", "---"] {
        schemes.push(ClassicScheme::AvoidPrefix(w0.parse().unwrap()));
    }
    for scheme in schemes {
        let p = min_excluded_prefix(&scheme, 4).map(|(p, _)| p);
        let h = first_solvable_horizon(&scheme, 4, &gamma_alphabet());
        assert_eq!(h, p, "{}", scheme.name());
    }
}

#[test]
fn regular_engine_agrees_with_checker_on_bounded_schemes() {
    // Regular schemes with a finite prefix bound: the automata engine says
    // solvable, the checker finds the same horizon as the classic twin.
    let g: GammaWord = "wb".parse().unwrap();
    let reg = rs::regular_avoid_prefix(&g);
    let cls = ClassicScheme::AvoidPrefix(g.to_word());
    assert!(rs::decide_regular(&reg).is_solvable());
    assert_eq!(
        first_solvable_horizon(&reg, 4, &gamma_alphabet()),
        first_solvable_horizon(&cls, 4, &gamma_alphabet()),
    );
    assert_eq!(first_solvable_horizon(&reg, 4, &gamma_alphabet()), Some(2));
}

#[test]
fn random_gamma_minus_schemes_cross_validate() {
    // Build Γω \ X for many small X drawn from the lasso universe; the
    // classic and regular engines must agree exactly, and the checker must
    // reject every bounded horizon (Pref stays Γ*).
    let universe = enumerate_gamma_lassos(1, 2);
    let mut checked = 0;
    for i in 0..universe.len() {
        for j in (i + 1)..universe.len().min(i + 6) {
            let excluded = vec![universe[i].clone(), universe[j].clone()];
            let cls = ClassicScheme::GammaMinus(excluded.clone());
            let reg = rs::regular_gamma_minus(&excluded);
            let cv = decide_classic(&cls);
            let rv = rs::decide_regular(&reg);
            assert_eq!(
                cv.is_solvable(),
                rv.is_solvable(),
                "X = {{{}, {}}}",
                universe[i],
                universe[j]
            );
            for k in 0..=3 {
                assert!(
                    !solvable_by(&cls, k, &gamma_alphabet()).is_solvable(),
                    "Γω minus finite sets cannot be solved with bounded rounds"
                );
            }
            checked += 1;
        }
    }
    assert!(checked > 20);
}

#[test]
fn witnesses_from_both_engines_drive_aw_correctly() {
    // For solvable Γω \ {pair}: both engines' witnesses must parameterize
    // a working A_w on members of the scheme.
    let excluded: Vec<Scenario> = vec!["-(w)".parse().unwrap(), "b(w)".parse().unwrap()];
    let cls = ClassicScheme::GammaMinus(excluded.clone());
    let reg = rs::regular_gamma_minus(&excluded);
    for verdict in [decide_classic(&cls), rs::decide_regular(&reg)] {
        let w = verdict.witness().expect("solvable").clone();
        for s in enumerate_gamma_lassos(1, 2) {
            if !cls.contains(&s) {
                continue;
            }
            for wi in [false, true] {
                for bi in [false, true] {
                    let mut white = AwProcess::new(Role::White, wi, w.clone());
                    let mut black = AwProcess::new(Role::Black, bi, w.clone());
                    let out = run_two_process(&mut white, &mut black, &s, 400);
                    assert!(
                        out.verdict.is_consensus(),
                        "witness {w} on {s} ({wi},{bi}): {:?}",
                        out.verdict
                    );
                }
            }
        }
    }
}

#[test]
fn spair_relation_is_consistent_across_all_three_representations() {
    // Direct decision, automata acceptance, and partner construction all
    // tell the same story about the special-pair relation.
    use minobs_core::spair::{classify_pair, special_partner, SPairVerdict};
    use minobs_omega::pairs::{gamma_index, pair_index, spair_obligation};
    let lassos = enumerate_gamma_lassos(2, 1);
    let obligation = spair_obligation();
    for a in &lassos {
        for b in &lassos {
            let direct = classify_pair(a, b).is_special();
            // Automata check (align lassos to a common representation).
            let pre = a.lasso_prefix().len().max(b.lasso_prefix().len());
            let cl = a.lasso_cycle().len() * b.lasso_cycle().len();
            let at = |s: &Scenario, r: usize| gamma_index(s.letter_at(r).to_gamma().unwrap());
            let prefix: Vec<usize> = (0..pre).map(|r| pair_index(at(a, r), at(b, r))).collect();
            let cycle: Vec<usize> = (pre..pre + cl)
                .map(|r| pair_index(at(a, r), at(b, r)))
                .collect();
            assert_eq!(direct, obligation.accepts_lasso(&prefix, &cycle), "{a}/{b}");
            // Partner construction: if (a,b) special then b is among a's
            // partners.
            if direct {
                let partners =
                    minobs_core::spair::special_partners(a, a.repr_len() + b.repr_len() + 2);
                assert!(partners.contains(b), "{b} missing from partners of {a}");
                assert!(special_partner(a).is_some());
            } else if a == b {
                assert_eq!(classify_pair(a, b), SPairVerdict::EqualWords);
            }
        }
    }
}
