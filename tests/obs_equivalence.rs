//! Observability equivalence: the serial and parallel engines must make
//! the *same observations*, not just reach the same verdict. For each
//! exp_network graph family, both engines run under a `MemoryRecorder`
//! and must produce identical `RunStats` and identical canonicalized
//! event streams — messages and decisions sorted by (round, sender,
//! receiver), timing fields zeroed, engine identity normalized.
//!
//! Also covers the trace-level acceptance invariant: per-round dropped
//! message events sum to the run's `messages_dropped`.

use minobs_graphs::{generators, Graph};
use minobs_net::{DecisionRule, FloodConsensus};
use minobs_obs::{
    replay_event, MemoryRecorder, MessageStatus, MetricsRecorder, MetricsRegistry, TraceEvent,
};
use std::sync::Arc;
use minobs_sim::adversary::{BudgetChecked, NoFault, RandomOmissions, ScriptedAdversary};
use minobs_sim::network::run_network_with_recorder;
use minobs_sim::parallel::run_network_parallel_with_recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("cycle(8)", generators::cycle(8)),
        ("path(8)", generators::path(8)),
        ("star(8)", generators::star(8)),
        ("complete(6)", generators::complete(6)),
        ("grid(3x4)", generators::grid(3, 4)),
        ("torus(3x3)", generators::torus(3, 3)),
        ("hypercube(4)", generators::hypercube(4)),
        ("barbell(4,2)", generators::barbell(4, 2)),
        ("theta(3,2)", generators::theta(3, 2)),
        ("petersen", generators::petersen()),
        ("K(3,4)", generators::complete_bipartite(3, 4)),
    ]
}

/// Canonical events with run-identity noise removed: wall-clock fields
/// zeroed, engine label and thread count normalized. What remains is
/// exactly the observable behaviour the two engines must share.
fn comparable(recorder: &MemoryRecorder) -> Vec<TraceEvent> {
    recorder
        .canonical_events()
        .into_iter()
        .map(|event| match event {
            TraceEvent::RunStart { nodes, .. } => TraceEvent::RunStart {
                engine: "normalized",
                nodes,
                threads: 1,
            },
            TraceEvent::RoundEnd { round, counts, .. } => TraceEvent::RoundEnd {
                round,
                counts,
                nanos: 0,
            },
            TraceEvent::Span { round, name, .. } => TraceEvent::Span {
                round,
                name,
                nanos: 0,
            },
            TraceEvent::SpanEnd {
                round,
                span_id,
                name,
                ..
            } => TraceEvent::SpanEnd {
                round,
                span_id,
                name,
                nanos: 0,
            },
            TraceEvent::RunEnd { rounds, totals, .. } => TraceEvent::RunEnd {
                rounds,
                totals,
                nanos: 0,
            },
            other => other,
        })
        .collect()
}

/// Folds a canonicalized event stream into a fresh registry snapshot.
/// Replaying `comparable()` output (timing zeroed) makes the latency
/// histograms deterministic, so two engines that observe the same things
/// must produce byte-identical snapshots.
fn metrics_snapshot_of(events: &[TraceEvent]) -> serde_json::Value {
    let registry = Arc::new(MetricsRegistry::new());
    let mut metrics = MetricsRecorder::new(Arc::clone(&registry));
    for event in events {
        replay_event(&mut metrics, event);
    }
    registry.snapshot()
}

/// Asserts the span discipline `trace_lint` enforces: unique ids, proper
/// bracketing, everything closed. Returns the bracketed span names.
fn well_formed_span_names(events: &[TraceEvent]) -> Vec<String> {
    let mut stack: Vec<u64> = Vec::new();
    let mut ids = std::collections::BTreeSet::new();
    let mut names = Vec::new();
    for event in events {
        match event {
            TraceEvent::SpanStart { span_id, name, .. } => {
                assert!(ids.insert(*span_id), "duplicate span id {span_id}");
                stack.push(*span_id);
                names.push(name.clone());
            }
            TraceEvent::SpanEnd { span_id, .. } => {
                assert_eq!(stack.pop(), Some(*span_id), "spans must nest properly");
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");
    names
}

fn dropped_message_events(events: &[TraceEvent]) -> usize {
    events
        .iter()
        .filter(|event| {
            matches!(
                event,
                TraceEvent::Message {
                    status: MessageStatus::Dropped,
                    ..
                }
            )
        })
        .count()
}

#[test]
fn serial_and_parallel_engines_observe_identically_fault_free() {
    for (name, g) in families() {
        let n = g.vertex_count();
        let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

        let mut serial = MemoryRecorder::new();
        let serial_out = run_network_with_recorder(
            &g,
            FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
            &mut NoFault,
            2 * n,
            &mut serial,
        );

        for threads in [2usize, 4] {
            let mut parallel = MemoryRecorder::new();
            let parallel_out = run_network_parallel_with_recorder(
                &g,
                FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
                &mut NoFault,
                2 * n,
                threads,
                &mut parallel,
            );

            assert_eq!(
                serial_out.stats, parallel_out.stats,
                "{name} t={threads}: RunStats diverge"
            );
            assert_eq!(
                serial_out.decisions, parallel_out.decisions,
                "{name} t={threads}: decisions diverge"
            );
            assert_eq!(
                comparable(&serial),
                comparable(&parallel),
                "{name} t={threads}: canonical event streams diverge"
            );
        }
    }
}

#[test]
fn serial_and_parallel_engines_observe_identically_under_omissions() {
    // The adversary must be order-independent for a cross-engine
    // comparison (the engines present pending edges in different orders,
    // so a shuffling adversary would diverge): script explicit drop sets
    // over real graph edges, replayed identically to both engines.
    for (name, g) in families() {
        let n = g.vertex_count();
        let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
        let script: Vec<Vec<minobs_graphs::DirectedEdge>> = (0..3)
            .map(|round| {
                g.edges()
                    .iter()
                    .skip(round)
                    .take(2)
                    .map(|e| minobs_graphs::DirectedEdge::new(e.a, e.b))
                    .collect()
            })
            .collect();

        let mut serial = MemoryRecorder::new();
        let serial_out = run_network_with_recorder(
            &g,
            FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
            &mut ScriptedAdversary::repeating(script.clone()),
            2 * n,
            &mut serial,
        );

        let mut parallel = MemoryRecorder::new();
        let parallel_out = run_network_parallel_with_recorder(
            &g,
            FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
            &mut ScriptedAdversary::repeating(script),
            2 * n,
            3,
            &mut parallel,
        );

        assert_eq!(serial_out.stats, parallel_out.stats, "{name}: RunStats diverge");
        assert_eq!(
            comparable(&serial),
            comparable(&parallel),
            "{name}: canonical event streams diverge under omissions"
        );
    }
}

#[test]
fn serial_and_parallel_engines_produce_identical_metrics_snapshots() {
    for (name, g) in families() {
        let n = g.vertex_count();
        let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

        let mut serial = MemoryRecorder::new();
        run_network_with_recorder(
            &g,
            FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
            &mut NoFault,
            2 * n,
            &mut serial,
        );
        let serial_snapshot = metrics_snapshot_of(&comparable(&serial));

        for threads in [2usize, 4] {
            let mut parallel = MemoryRecorder::new();
            run_network_parallel_with_recorder(
                &g,
                FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
                &mut NoFault,
                2 * n,
                threads,
                &mut parallel,
            );
            assert_eq!(
                serial_snapshot,
                metrics_snapshot_of(&comparable(&parallel)),
                "{name} t={threads}: metrics snapshots diverge"
            );
        }
    }
}

#[test]
fn parallel_coordinator_spans_are_canonical() {
    for (name, g) in families() {
        let n = g.vertex_count();
        let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

        let mut serial = MemoryRecorder::new();
        run_network_with_recorder(
            &g,
            FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
            &mut NoFault,
            2 * n,
            &mut serial,
        );
        let serial_names = well_formed_span_names(serial.events());
        assert!(
            serial_names
                .chunks(2)
                .all(|pair| pair == ["net_send", "net_advance"]),
            "{name}: serial spans must alternate send/advance per round"
        );

        let mut parallel = MemoryRecorder::new();
        run_network_parallel_with_recorder(
            &g,
            FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
            &mut NoFault,
            2 * n,
            3,
            &mut parallel,
        );
        assert_eq!(
            serial_names,
            well_formed_span_names(parallel.events()),
            "{name}: parallel coordinator span sequence diverges from serial"
        );
        assert!(
            !serial_names.is_empty(),
            "{name}: instrumented engines must emit spans"
        );
    }
}

#[test]
fn dropped_events_sum_to_messages_dropped() {
    for (name, g) in families() {
        let n = g.vertex_count();
        let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

        let mut recorder = MemoryRecorder::new();
        let out = run_network_with_recorder(
            &g,
            FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
            &mut BudgetChecked::new(RandomOmissions::new(3, StdRng::seed_from_u64(11)), 3),
            2 * n,
            &mut recorder,
        );

        let events = recorder.into_events();
        assert_eq!(
            dropped_message_events(&events),
            out.stats.messages_dropped,
            "{name}: dropped message events must sum to stats.messages_dropped"
        );

        // And per-round counts agree with the event stream round by round.
        for event in &events {
            if let TraceEvent::RoundEnd { round, counts, .. } = event {
                let in_round = events
                    .iter()
                    .filter(|e| {
                        matches!(
                            e,
                            TraceEvent::Message {
                                round: r,
                                status: MessageStatus::Dropped,
                                ..
                            } if r == round
                        )
                    })
                    .count();
                assert_eq!(
                    in_round, counts.dropped,
                    "{name} round {round}: drop events vs round_end.dropped"
                );
            }
        }
    }
}

#[test]
fn run_end_totals_match_run_stats() {
    let g = generators::hypercube(4);
    let n = g.vertex_count();
    let inputs: Vec<u64> = (0..n as u64).collect();

    let mut recorder = MemoryRecorder::new();
    let out = run_network_with_recorder(
        &g,
        FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId),
        &mut NoFault,
        2 * n,
        &mut recorder,
    );

    let run_end = recorder
        .events()
        .iter()
        .find_map(|event| match event {
            TraceEvent::RunEnd { rounds, totals, .. } => Some((*rounds, *totals)),
            _ => None,
        })
        .expect("a run_end event");
    assert_eq!(run_end.0, out.stats.rounds);
    assert_eq!(run_end.1.sent, out.stats.messages_sent);
    assert_eq!(run_end.1.delivered, out.stats.messages_delivered);
    assert_eq!(run_end.1.dropped, out.stats.messages_dropped);
    assert_eq!(run_end.1.misaddressed, out.stats.misaddressed);
}
