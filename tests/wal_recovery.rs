//! Crash-safety harness for the verdict WAL (`minobs/wal/v1`).
//!
//! Three layers, increasingly end-to-end:
//!
//! 1. **Kill-and-restart sweep** — a pinned-seed sweep of
//!    `minobs_chaos::FaultPlan` storage faults (crash truncation, torn
//!    tail, bit rot) applied to a finished log. After *any* injected
//!    crash point, replay must yield a warm cache that is a
//!    prefix-consistent subset of the pre-crash cache: possibly missing
//!    the newest verdicts, never holding a wrong or invented one.
//! 2. **Order-independence** (proptest) — verdicts are immutable
//!    theorems, so a log written by interleaved workers in any order
//!    must replay to exactly the cache those workers built in memory.
//! 3. **Daemon restart** — a real daemon with a WAL answers a query,
//!    drains, restarts on the same log, and must answer the same query
//!    from the replayed cache (`cached: true`, `svc.cache_hits`
//!    advancing) with horizon subsumption intact.

use minobs_chaos::FaultPlan;
use minobs_obs::MetricsRegistry;
use minobs_svc::cache::VerdictCache;
use minobs_svc::client::SvcClient;
use minobs_svc::server::{serve, SvcConfig};
use minobs_svc::wal::{replay_bytes, CompactionPolicy, MemoryWalFile, Wal, WalFile, WalRecord};
use proptest::prelude::*;
use serde_json::{Map, Value};
use std::io;
use std::path::PathBuf;
use std::time::Duration;

fn fresh_cache() -> VerdictCache {
    VerdictCache::new(&MetricsRegistry::new())
}

/// The deterministic pre-crash workload: horizon deltas and theorem
/// memos across several keys, mirrored into a cache and a WAL. Ground
/// truth per key is a solvability boundary at `3 + idx`: everything
/// below is unsolvable, everything at or above is solvable.
fn build_workload() -> (Vec<u8>, VerdictCache) {
    let cache = fresh_cache();
    let file = MemoryWalFile::new();
    let mut wal =
        Wal::with_file(Box::new(file.clone()), CompactionPolicy::default()).expect("open wal");
    for idx in 0..4usize {
        let key = format!("classic:s{idx}|gamma");
        let boundary = 3 + idx;
        for k in [0usize, 2, 4, 6, 8, 1, 7] {
            let solvable = k >= boundary;
            cache.record_horizon(&key, k, solvable);
            wal.append(&WalRecord::Horizon {
                key: key.clone(),
                k,
                solvable,
            })
            .expect("append");
        }
        let theorem_key = format!("classic:s{idx}|theorem");
        let result = Value::from(idx % 2 == 0);
        cache.record_theorem(&theorem_key, result.clone());
        wal.append(&WalRecord::Theorem {
            key: theorem_key,
            result,
        })
        .expect("append");
    }
    wal.flush().expect("flush");
    (file.bytes(), cache)
}

/// Snapshot as comparable tuples (HorizonVerdicts is compared through
/// its accessors).
type EntryShape = (String, Option<usize>, Option<usize>, Option<Value>);

fn shape(cache: &VerdictCache) -> Vec<EntryShape> {
    cache
        .snapshot()
        .into_iter()
        .map(|(key, v, theorem)| (key, v.min_solvable(), v.max_unsolvable(), theorem))
        .collect()
}

/// After any injected crash, the replayed cache must be a
/// prefix-consistent subset of the pre-crash cache: boundaries may be
/// looser (fewer records survived) but never tighter, never flipped.
#[test]
fn kill_and_restart_yields_a_prefix_consistent_subset() {
    let (full_log, full_cache) = build_workload();
    let full = shape(&full_cache);

    for seed in 0..128u64 {
        let plan = FaultPlan::sample(seed, full_log.len() as u64);
        let mut mutilated = full_log.clone();
        plan.mutilate(&mut mutilated);

        let warm_cache = fresh_cache();
        let report = replay_bytes(&mutilated, &warm_cache);
        assert!(
            report.bytes <= mutilated.len() as u64,
            "seed {seed}: replay claims more bytes than survived"
        );

        for (key, min_solvable, max_unsolvable, theorem) in shape(&warm_cache) {
            let original = full
                .iter()
                .find(|(full_key, ..)| *full_key == key)
                .unwrap_or_else(|| panic!("seed {seed}: replay invented key {key:?}"));
            // Boundaries only ever tighten as records accumulate, so a
            // prefix's bounds are looser-or-equal — and in particular on
            // the correct side of the true boundary, never a wrong verdict.
            if let Some(warm) = min_solvable {
                let full_min = original.1.unwrap_or_else(|| {
                    panic!("seed {seed}: {key:?} solvable at {warm} but never proven solvable")
                });
                assert!(warm >= full_min, "seed {seed}: {key:?} min tightened");
            }
            if let Some(warm) = max_unsolvable {
                let full_max = original.2.unwrap_or_else(|| {
                    panic!("seed {seed}: {key:?} unsolvable at {warm} but never proven unsolvable")
                });
                assert!(warm <= full_max, "seed {seed}: {key:?} max tightened");
            }
            if let Some(t) = &theorem {
                assert_eq!(
                    Some(t),
                    original.3.as_ref(),
                    "seed {seed}: {key:?} theorem memo rewritten"
                );
            }
        }
    }
}

/// A [`WalFile`] that consults a [`FaultPlan`] live: appends past the
/// plan's write-error offset fail `ENOSPC`-style, everything accepted
/// before that stays readable — the disk-full half of the fault model.
struct PlannedFile {
    plan: FaultPlan,
    written: u64,
    survivor: MemoryWalFile,
}

impl WalFile for PlannedFile {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.written += frame.len() as u64;
        if self.plan.fails_at(self.written) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "no space left on device",
            ));
        }
        self.survivor.append(frame)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn enospc_mid_run_loses_the_tail_but_never_a_verdict() {
    for limit in [8u64, 64, 200, 500] {
        let survivor = MemoryWalFile::new();
        let mut wal = Wal::with_file(
            Box::new(PlannedFile {
                plan: FaultPlan {
                    write_error_after_bytes: Some(limit),
                    ..FaultPlan::NONE
                },
                written: 0,
                survivor: survivor.clone(),
            }),
            CompactionPolicy::default(),
        )
        .expect("magic fits under every limit tested");

        let cache = fresh_cache();
        let mut accepted = 0usize;
        for k in 0..16usize {
            let solvable = k >= 5;
            cache.record_horizon("classic:s1|gamma", k, solvable);
            match wal.append(&WalRecord::Horizon {
                key: "classic:s1|gamma".to_string(),
                k,
                solvable,
            }) {
                Ok(_) => accepted += 1,
                // First failure latches degradation server-side; stop
                // appending, exactly as the daemon does.
                Err(_) => break,
            }
        }

        let warm = fresh_cache();
        let report = replay_bytes(&survivor.bytes(), &warm);
        assert_eq!(
            report.records, accepted as u64,
            "limit {limit}: every accepted append must replay"
        );
        for (key, min_solvable, max_unsolvable, _) in shape(&warm) {
            assert_eq!(key, "classic:s1|gamma");
            if let Some(k) = min_solvable {
                assert!(k >= 5, "limit {limit}: wrong solvable verdict at {k}");
            }
            if let Some(k) = max_unsolvable {
                assert!(k < 5, "limit {limit}: wrong unsolvable verdict at {k}");
            }
        }
    }
}

proptest! {
    /// Order-independence: a WAL written by interleaved workers replays
    /// to exactly the cache those workers built in memory, whatever the
    /// interleaving — immutable verdicts commute.
    #[test]
    fn interleaved_writes_replay_to_the_shutdown_cache(
        writes in proptest::collection::vec((0..4usize, 0..10usize), 1..60),
    ) {
        // Ground truth per key: solvable iff k >= 2 + idx.
        let cache = fresh_cache();
        let file = MemoryWalFile::new();
        let mut wal = Wal::with_file(Box::new(file.clone()), CompactionPolicy::default())
            .expect("open wal");
        for (idx, k) in writes {
            let key = format!("classic:s{idx}|gamma");
            let solvable = k >= 2 + idx;
            cache.record_horizon(&key, k, solvable);
            wal.append(&WalRecord::Horizon { key: key.clone(), k, solvable }).expect("append");
            if k == 9 {
                // Workers also memoise theorem verdicts mid-stream.
                let tkey = format!("classic:s{idx}|theorem");
                let result = Value::from(idx as u64);
                cache.record_theorem(&tkey, result.clone());
                wal.append(&WalRecord::Theorem { key: tkey, result }).expect("append");
            }
        }
        wal.flush().expect("flush");

        let replayed = fresh_cache();
        let report = replay_bytes(&file.bytes(), &replayed);
        prop_assert!(!report.dropped_tail);
        prop_assert_eq!(shape(&replayed), shape(&cache));
    }
}

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut map = Map::new();
    for (key, value) in pairs {
        map.insert((*key).to_string(), value.clone());
    }
    Value::Object(map)
}

fn counter(stats: &Value, name: &str) -> u64 {
    stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn connect(addr: &str) -> SvcClient {
    let mut client = SvcClient::connect_with_timeout(addr, Some(Duration::from_secs(10)))
        .expect("connect to daemon");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    client
}

/// The full loop: a daemon with a WAL proves a verdict, drains,
/// restarts on the same log, and answers the pinned query from the
/// replayed cache without recomputing — with subsumption intact.
#[test]
fn daemon_restart_serves_warm_verdicts_from_the_wal() {
    let dir = std::env::temp_dir().join(format!("minobs-wal-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal_path: PathBuf = dir.join("verdicts.wal");
    let _ = std::fs::remove_file(&wal_path);
    let config = || SvcConfig {
        wal_path: Some(wal_path.clone()),
        ..SvcConfig::default()
    };
    let pinned = || obj(&[("scheme", Value::from("s1")), ("horizon", Value::from(2u64))]);

    // First life: prove the pinned verdict, then drain cleanly.
    let solvable = {
        let server = serve(config()).expect("bind");
        let addr = server.local_addr().to_string();
        let mut client = connect(&addr);
        let first = client.call("check_horizon", pinned()).expect("pinned query");
        assert_eq!(
            first.get("cached"),
            Some(&Value::from(false)),
            "first life must compute, not inherit state: {first:?}"
        );
        let solvable = first
            .get("solvable")
            .and_then(Value::as_bool)
            .expect("definite verdict");
        client.call("shutdown", Value::Null).expect("drain");
        server.join();
        solvable
    };

    // Second life: same log, fresh process state.
    let server = serve(config()).expect("rebind");
    let report = server
        .state()
        .wal_replay_report()
        .expect("wal configured on restart");
    assert!(report.records >= 1, "restart replayed nothing");
    assert!(server.state().wal_active(), "wal degraded on restart");
    let addr = server.local_addr().to_string();
    let mut client = connect(&addr);

    let hits_before = counter(
        &client.call("stats", Value::Null).expect("stats"),
        "svc.cache_hits",
    );
    let warm = client.call("check_horizon", pinned()).expect("warm query");
    assert_eq!(
        warm.get("cached"),
        Some(&Value::from(true)),
        "restart must answer the pinned query from the replayed cache: {warm:?}"
    );
    assert_eq!(warm.get("solvable"), Some(&Value::from(solvable)));
    assert_eq!(warm.get("proven_at"), Some(&Value::from(2u64)));
    let hits_after = counter(
        &client.call("stats", Value::Null).expect("stats"),
        "svc.cache_hits",
    );
    assert!(
        hits_after > hits_before,
        "svc.cache_hits must advance on the warm hit ({hits_before} → {hits_after})"
    );

    // Subsumption across the restart: the replayed boundary answers a
    // different horizon on the same side by monotonicity.
    let subsumed_horizon = if solvable { 6u64 } else { 1u64 };
    let other = client
        .call(
            "check_horizon",
            obj(&[
                ("scheme", Value::from("s1")),
                ("horizon", Value::from(subsumed_horizon)),
            ]),
        )
        .expect("subsumed query");
    assert_eq!(
        other.get("cached"),
        Some(&Value::from(true)),
        "subsumption must survive the restart: {other:?}"
    );
    assert_eq!(other.get("solvable"), Some(&Value::from(solvable)));
    assert_eq!(other.get("proven_at"), Some(&Value::from(2u64)));

    client.call("shutdown", Value::Null).expect("drain");
    server.join();
    let _ = std::fs::remove_file(&wal_path);
}
