//! Flight-recorder integration: ring wraparound and concurrent dumps
//! must always yield lint-clean `minobs/trace/v1` dumps, and the
//! tail-sampling keep/drop decision must be identical on every node of
//! a fleet (it is a pure function of the trace id).

use minobs_bench::lint::lint;
use minobs_obs::{sample_keep, FlightRecorder, TraceEvent};
use serde_json::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One request's worth of events, the shape the daemon feeds the ring:
/// svc_request, a root span pair, svc_response.
fn request_block(seq: u64) -> Vec<TraceEvent> {
    vec![
        TraceEvent::SvcRequest {
            seq,
            method: "stats".to_string(),
        },
        TraceEvent::SpanStart {
            round: 0,
            span_id: seq << 20,
            parent: None,
            name: "rpc.stats".to_string(),
            trace_id: Some(u128::from(seq) + 1),
            ctx_parent: None,
        },
        TraceEvent::SpanEnd {
            round: 0,
            span_id: seq << 20,
            name: "rpc.stats".to_string(),
            nanos: 10 + seq,
        },
        TraceEvent::SvcResponse {
            seq,
            method: "stats".to_string(),
            ok: true,
            cache: "none",
            nanos: 20 + seq,
        },
    ]
}

#[test]
fn wraparound_dump_is_lint_clean() {
    let flight = FlightRecorder::with_meta(64, Some("n1".to_string()), false);
    // 500 requests × 4 events overwrite the 64-slot ring many times.
    for seq in 0..500u64 {
        flight.push_block(&request_block(seq));
    }
    assert!(flight.recorded() > flight.capacity() as u64);

    let snapshot = flight.dump("test");
    let lines: Vec<&str> = snapshot.jsonl.lines().collect();
    // Header first, then exactly the kept events.
    let header: Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(
        header.get("event").and_then(Value::as_str),
        Some("flight_dump")
    );
    assert_eq!(header.get("reason").and_then(Value::as_str), Some("test"));
    assert_eq!(lines.len() as u64, snapshot.events + 1);
    // The surviving window still contains real requests, and whatever
    // partial unit straddled the eviction horizon was dropped whole.
    assert!(snapshot.events > 0);
    let (checked, _) = lint(&snapshot.jsonl).unwrap_or_else(|err| panic!("dump not clean: {err}"));
    assert_eq!(checked, lines.len());
}

#[test]
fn concurrent_dumps_never_tear_or_deadlock() {
    let flight = FlightRecorder::with_meta(256, Some("n1".to_string()), false);
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let flight = flight.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seq = w * 1_000_000;
                while !stop.load(Ordering::Relaxed) {
                    flight.push_block(&request_block(seq));
                    seq += 1;
                }
            })
        })
        .collect();

    // Dump repeatedly while the writers hammer the ring: every snapshot
    // must be well formed on its own, whatever instant it captured.
    for round in 0..50 {
        let snapshot = flight.dump("concurrent");
        if let Err(err) = lint(&snapshot.jsonl) {
            panic!("dump {round} not lint-clean: {err}");
        }
    }
    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().unwrap();
    }
    let last = flight.dump("final");
    lint(&last.jsonl).unwrap_or_else(|err| panic!("final dump not clean: {err}"));
}

#[test]
fn keep_decisions_are_fleet_consistent_and_monotone() {
    let trace_ids: Vec<u128> = (1..=2_000u128).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
    let mut kept_at_low = 0usize;
    for &id in &trace_ids {
        // Two nodes deciding independently about the same trace agree —
        // the decision depends on nothing but (trace_id, sample).
        let node_a = sample_keep(id, 0.3);
        let node_b = sample_keep(id, 0.3);
        assert_eq!(node_a, node_b, "nodes disagreed on trace {id:x}");
        // Raising the sample rate never drops a trace that a lower rate
        // kept, so fleets can be re-tuned without losing continuity.
        if node_a {
            kept_at_low += 1;
            assert!(sample_keep(id, 0.8), "kept at 0.3 but dropped at 0.8");
        }
        // The endpoints are exact.
        assert!(sample_keep(id, 1.0));
        assert!(!sample_keep(id, 0.0));
    }
    // The keep rate tracks the configured probability (loose band: the
    // ids are arbitrary, the hash is what spreads them).
    let rate = kept_at_low as f64 / trace_ids.len() as f64;
    assert!((0.2..0.4).contains(&rate), "keep rate {rate} far from 0.3");
}
