//! End-to-end integration: scheme → Theorem III.8 verdict → witness →
//! `A_w` → executor → consensus audit, across the whole classic catalog.

use minobs_core::prelude::*;
use minobs_core::scenario::enumerate_gamma_lassos;

/// Runs `A_w` with the given witness on `scenario` for all four input
/// pairs and asserts consensus.
fn assert_consensus_all_inputs(w: &Scenario, scenario: &Scenario, budget: usize) {
    for wi in [false, true] {
        for bi in [false, true] {
            let mut white = AwProcess::new(Role::White, wi, w.clone());
            let mut black = AwProcess::new(Role::Black, bi, w.clone());
            let out = run_two_process(&mut white, &mut black, scenario, budget);
            assert!(
                out.verdict.is_consensus(),
                "A_{w} on {scenario} inputs ({wi},{bi}): {:?}",
                out.verdict
            );
        }
    }
}

#[test]
fn solvable_catalog_schemes_run_to_consensus_via_their_witnesses() {
    // For every solvable classic scheme: take the Theorem III.8 witness,
    // instantiate A_w, and run it against every lasso member of the scheme
    // from the small universe. All runs must reach consensus.
    let schemes = [
        classic::s0(),
        classic::t_white(),
        classic::t_black(),
        classic::c1(),
        classic::s1(),
        classic::almost_fair(),
        classic::fair_gamma(),
    ];
    let universe = enumerate_gamma_lassos(2, 2);
    for scheme in schemes {
        let verdict = decide_classic(&scheme);
        let w = verdict
            .witness()
            .unwrap_or_else(|| panic!("{} should be solvable", scheme.name()))
            .clone();
        let mut members = 0;
        for s in &universe {
            if !scheme.contains(s) {
                continue;
            }
            members += 1;
            assert_consensus_all_inputs(&w, s, 256);
        }
        assert!(members > 0, "{} must have lasso members", scheme.name());
    }
}

#[test]
fn obstruction_schemes_have_no_finite_horizon_algorithm() {
    use minobs_synth::checker::{gamma_alphabet, sigma_alphabet, solvable_by};
    for k in 0..=5 {
        assert!(!solvable_by(&classic::r1(), k, &gamma_alphabet()).is_solvable());
    }
    for k in 0..=4 {
        assert!(!solvable_by(&classic::s2(), k, &sigma_alphabet()).is_solvable());
    }
}

#[test]
fn regular_and_classic_catalogs_agree_end_to_end() {
    use minobs_omega::schemes::*;
    let pairs: Vec<(minobs_omega::RegularScheme, ClassicScheme)> = vec![
        (regular_s0(), classic::s0()),
        (regular_t(Role::White), classic::t_white()),
        (regular_c1(), classic::c1()),
        (regular_s1(), classic::s1()),
        (regular_r1(), classic::r1()),
        (regular_fair(), classic::fair_gamma()),
        (regular_almost_fair(), classic::almost_fair()),
    ];
    for (reg, cls) in pairs {
        let rv = decide_regular(&reg);
        let cv = decide_classic(&cls);
        assert_eq!(rv.is_solvable(), cv.is_solvable(), "{}", cls.name());
        // Witnesses from the regular path drive A_w just as well: check on
        // a couple of members.
        if let Some(w) = rv.witness() {
            for s in enumerate_gamma_lassos(1, 1) {
                if cls.contains(&s) && *w != s {
                    assert_consensus_all_inputs(w, &s, 256);
                }
            }
        }
    }
}

#[test]
fn early_stopping_round_counts_match_section_iv_a() {
    use minobs_core::theorem::min_excluded_prefix;
    // Section IV-A table: (scheme, worst-case rounds).
    let expected: [(ClassicScheme, usize); 5] = [
        (classic::s0(), 1),
        (classic::t_white(), 1),
        (classic::t_black(), 1),
        (classic::c1(), 2),
        (classic::s1(), 2),
    ];
    let universe = enumerate_gamma_lassos(2, 2);
    for (scheme, rounds) in expected {
        let (p, w0) = min_excluded_prefix(&scheme, 4).unwrap();
        assert_eq!(p, rounds, "{}", scheme.name());
        // Cap A_w at p with the forbidden word w0 extended unfairly; every
        // member must reach consensus within p rounds.
        let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
        let mut worst = 0;
        for s in &universe {
            if !scheme.contains(s) {
                continue;
            }
            for wi in [false, true] {
                for bi in [false, true] {
                    let mut white = AwProcess::new(Role::White, wi, w.clone()).with_round_cap(p);
                    let mut black = AwProcess::new(Role::Black, bi, w.clone()).with_round_cap(p);
                    let out = run_two_process(&mut white, &mut black, s, 64);
                    assert!(
                        out.verdict.is_consensus(),
                        "{} on {s} ({wi},{bi}): {:?}",
                        scheme.name(),
                        out.verdict
                    );
                    worst = worst.max(out.rounds);
                }
            }
        }
        assert_eq!(worst, rounds, "{} worst-case rounds", scheme.name());
    }
}

#[test]
fn minimal_obstruction_sits_between_solvable_and_r1() {
    use minobs_core::minimal::{is_lower_pair_member, CanonicalMinimalObstruction};
    use minobs_core::scheme::OmissionScheme;
    let l = CanonicalMinimalObstruction;
    assert!(!minobs_core::theorem::decide_gamma(&l).is_solvable());
    let universe = enumerate_gamma_lassos(2, 1);
    let mut lowers = 0;
    for s in &universe {
        if is_lower_pair_member(s) == Some(true) {
            assert!(!l.contains(s));
            lowers += 1;
        }
    }
    assert!(lowers >= 3, "universe must exercise several lower members");
}

#[test]
fn stubborn_protocol_fails_exactly_on_mixed_inputs() {
    use minobs_core::engine::StubbornProtocol;
    let s: Scenario = "(-)".parse().unwrap();
    for wi in [false, true] {
        for bi in [false, true] {
            let out = run_two_process(
                &mut StubbornProtocol::new(Role::White, wi),
                &mut StubbornProtocol::new(Role::Black, bi),
                &s,
                4,
            );
            assert_eq!(out.verdict.is_consensus(), wi == bi);
        }
    }
}
