//! Integration of Section V: Theorem V.1 exercised end-to-end over graph
//! families — `f < c(G)` runs reach consensus under hostile adversaries,
//! `f = c(G)` cut adversaries break flooding, and the quantities
//! (`c(G)`, `deg(G)`, cut partitions) line up with the theory.

use minobs_graphs::{
    cut_partition, edge_connectivity, generators, min_degree, partition::validate_partition,
    Graph,
};
use minobs_net::{DecisionRule, FloodConsensus};
use minobs_sim::adversary::{BudgetChecked, CutAdversary, GreedyCutAdversary, RandomOmissions};
use minobs_sim::network::{run_network, NetVerdict};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("cycle(8)", generators::cycle(8)),
        ("complete(6)", generators::complete(6)),
        ("grid(3x4)", generators::grid(3, 4)),
        ("torus(3x3)", generators::torus(3, 3)),
        ("hypercube(3)", generators::hypercube(3)),
        ("barbell(4,2)", generators::barbell(4, 2)),
        ("theta(3,2)", generators::theta(3, 2)),
        ("petersen", generators::petersen()),
        ("star(7)", generators::star(7)),
    ]
}

fn distinct_inputs(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 100 + i).collect()
}

#[test]
fn flooding_succeeds_for_f_below_connectivity_on_all_families() {
    for (name, g) in families() {
        let c = edge_connectivity(&g);
        assert!(c >= 1, "{name}");
        let n = g.vertex_count();
        for f in 0..c {
            for seed in 0..5u64 {
                let nodes =
                    FloodConsensus::fleet(&g, &distinct_inputs(n), DecisionRule::ValueOfMinId);
                let mut adv =
                    BudgetChecked::new(RandomOmissions::new(f, StdRng::seed_from_u64(seed)), f);
                let out = run_network(&g, nodes, &mut adv, 2 * n);
                assert_eq!(
                    out.verdict,
                    NetVerdict::Consensus(100),
                    "{name} f={f} seed={seed}"
                );
                assert_eq!(out.stats.rounds, n - 1, "{name} decides in n-1 rounds");
            }
        }
    }
}

#[test]
fn cut_adversary_at_connectivity_breaks_flooding_on_all_families() {
    for (name, g) in families() {
        let n = g.vertex_count();
        let p = cut_partition(&g).expect(name);
        assert!(validate_partition(&g, &p).is_empty(), "{name}");
        // Silence A→B forever: the B side can never learn A's values.
        let nodes = FloodConsensus::fleet(&g, &distinct_inputs(n), DecisionRule::ValueOfMinId);
        let mut adv = CutAdversary::new(&p, "(w)".parse().unwrap());
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert!(
            matches!(out.verdict, NetVerdict::Disagreement { .. }),
            "{name}: {:?}",
            out.verdict
        );
        // And the adversary never exceeded f = c(G) drops per round.
        assert!(out.stats.max_drops_per_round <= edge_connectivity(&g), "{name}");
    }
}

#[test]
fn greedy_cut_adversary_also_breaks_flooding() {
    for (name, g) in [("barbell(4,2)", generators::barbell(4, 2)), ("cycle(7)", generators::cycle(7))] {
        let n = g.vertex_count();
        let p = cut_partition(&g).unwrap();
        let nodes = FloodConsensus::fleet(&g, &distinct_inputs(n), DecisionRule::ValueOfMinId);
        let mut adv = GreedyCutAdversary::new(&p);
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert!(
            !out.verdict.is_consensus(),
            "{name}: greedy cut at f = c(G) must block consensus, got {:?}",
            out.verdict
        );
    }
}

#[test]
fn connectivity_thresholds_match_theorem_v1_shape() {
    // The theorem's crossover: solvable ⇔ f < c(G). Empirically, for each
    // family, flooding always works at f = c-1 and the cut adversary
    // always defeats it at f = c. Also c(G) ≤ deg(G) with strictness on
    // the barbell/theta families (the Santoro–Widmayer gap).
    for (name, g) in families() {
        let c = edge_connectivity(&g);
        let d = min_degree(&g);
        assert!(c <= d, "{name}");
        if name.starts_with("barbell") {
            assert!(c < d, "{name} exhibits the open-question gap c < deg");
        }
    }
}

#[test]
fn uniform_inputs_survive_even_hostile_cuts() {
    // Validity stress: all nodes propose the same value; no adversary can
    // make flooding break validity (it can only delay).
    for (name, g) in families() {
        let n = g.vertex_count();
        let p = cut_partition(&g).unwrap();
        let nodes = FloodConsensus::fleet(&g, &vec![42; n], DecisionRule::ValueOfMinId);
        let mut adv = CutAdversary::new(&p, "(wb)".parse().unwrap());
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert_eq!(out.verdict, NetVerdict::Consensus(42), "{name}");
    }
}

#[test]
fn random_connected_graphs_follow_the_threshold() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let g = generators::gnp_connected(9, 0.4, &mut rng);
        let c = edge_connectivity(&g);
        let n = g.vertex_count();
        // f = c - 1: success.
        if c >= 1 {
            let nodes = FloodConsensus::fleet(&g, &distinct_inputs(n), DecisionRule::ValueOfMinId);
            let mut adv = BudgetChecked::new(
                RandomOmissions::new(c - 1, StdRng::seed_from_u64(seed)),
                c - 1,
            );
            let out = run_network(&g, nodes, &mut adv, 2 * n);
            assert_eq!(out.verdict, NetVerdict::Consensus(100), "seed {seed}");
        }
        // f = c with the cut adversary: failure.
        let p = cut_partition(&g).unwrap();
        let nodes = FloodConsensus::fleet(&g, &distinct_inputs(n), DecisionRule::ValueOfMinId);
        let mut adv = CutAdversary::new(&p, "(w)".parse().unwrap());
        let out = run_network(&g, nodes, &mut adv, 2 * n);
        assert!(!out.verdict.is_consensus(), "seed {seed}");
    }
}

#[test]
fn algorithm_l_closes_the_gap_on_barbells() {
    // On barbell graphs c(G) < deg(G): Santoro–Widmayer's own results
    // leave c ≤ f < deg open; Theorem V.1 (via A_L on solvable
    // sub-schemes) says consensus IS solvable for any L ⊆ Γ_C^ω with
    // ρ(L) solvable — exercised here with the almost-fair sub-scheme.
    use minobs_net::AlgorithmL;
    let g = generators::barbell(4, 2);
    let p = cut_partition(&g).unwrap();
    let inputs: Vec<u64> = (0..g.vertex_count())
        .map(|v| p.side_b.contains(&v) as u64)
        .collect();
    for v in ["(-)", "(w)", "(wb)", "-(b)", "w(b)"] {
        let fleet = AlgorithmL::fleet(&g, &p, &"(b)".parse().unwrap(), &inputs);
        let mut adv = CutAdversary::new(&p, v.parse().unwrap());
        let out = run_network(&g, fleet, &mut adv, 128);
        assert!(out.verdict.is_consensus(), "{v}: {:?}", out.verdict);
    }
}
