//! Pinned reproducer regression suite.
//!
//! `tests/reproducers/` holds shrunk counterexamples the chaos harness
//! found under pinned seeds (see `docs/CHAOS.md`). Each artifact must
//! keep reproducing its recorded violation forever — if an engine or
//! adversary change breaks one, that is a behavioral regression, not a
//! stale fixture. The suite also re-derives one artifact from its seed
//! to pin the full find → shrink → serialize pipeline byte-for-byte.

use minobs_chaos::{replay, run_chaos, ChaosConfig, GraphSpec, Reproducer};
use std::path::PathBuf;

fn reproducer_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/reproducers")
}

fn load_all() -> Vec<(String, Reproducer)> {
    let mut artifacts: Vec<(String, Reproducer)> = std::fs::read_dir(reproducer_dir())
        .expect("tests/reproducers must exist")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable artifact");
            let rep = Reproducer::from_json_str(&text)
                .unwrap_or_else(|err| panic!("{name}: {err}"));
            (name, rep)
        })
        .collect();
    artifacts.sort_by(|a, b| a.0.cmp(&b.0));
    artifacts
}

#[test]
fn every_pinned_reproducer_still_reproduces() {
    let artifacts = load_all();
    assert!(
        artifacts.len() >= 3,
        "expected at least one artifact per named graph"
    );
    for (name, rep) in &artifacts {
        let outcome = replay(rep);
        assert!(
            outcome.reproduced,
            "{name}: expected {} — observed {:?}",
            rep.violation, outcome.violations
        );
    }
}

#[test]
fn pinned_artifacts_cover_all_named_graphs() {
    let artifacts = load_all();
    for graph in GraphSpec::ALL {
        assert!(
            artifacts.iter().any(|(_, r)| r.graph == graph),
            "no pinned reproducer for {graph}"
        );
    }
}

#[test]
fn pinned_seed_rederives_the_artifact_byte_for_byte() {
    // The checked-in c4 artifact came from this exact campaign; the
    // whole pipeline (sampling, execution, shrinking, serialization)
    // must stay deterministic for `chaos replay` workflows to be
    // trustworthy.
    let report = run_chaos(&ChaosConfig {
        graph: GraphSpec::C4,
        seed: 7,
        runs: 1,
        over_budget: true,
    });
    assert_eq!(report.violating_runs, 1);
    let derived = report.reproducers[0].to_json_string();
    let pinned = std::fs::read_to_string(
        reproducer_dir().join("c4_seed7_run0_budget_exceeded.json"),
    )
    .expect("pinned c4 artifact");
    assert_eq!(derived, pinned);
}
