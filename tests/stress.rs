//! Scale tests — `#[ignore]`d by default, run with
//! `cargo test --release -- --ignored`. Each pushes one subsystem an
//! order of magnitude past the unit-test sizes.

use minobs_core::prelude::*;
use minobs_synth::checker::{gamma_alphabet, solvable_by, solvable_by_par, CheckResult};

#[test]
#[ignore = "scale test: 3^9 executions through the checker"]
fn checker_deep_horizon_chain_formula() {
    // The bivalency chain formula 2·3^k + 1, pushed to k = 9
    // (19 683 prefixes × 4 input pairs ≈ 79k executions).
    for k in [7usize, 8, 9] {
        let CheckResult::Unsolvable { chain } = solvable_by(&classic::r1(), k, &gamma_alphabet())
        else {
            panic!("R1 is an obstruction");
        };
        assert_eq!(chain.len(), 2 * 3usize.pow(k as u32) + 1, "k={k}");
    }
}

#[test]
#[ignore = "scale test: parallel checker at depth"]
fn parallel_checker_matches_at_depth() {
    let k = 8;
    let seq = solvable_by(&classic::r1(), k, &gamma_alphabet());
    let par = solvable_by_par(&classic::r1(), k, &gamma_alphabet());
    assert_eq!(seq, par);
}

#[test]
#[ignore = "scale test: long-scenario index arithmetic"]
fn index_calculus_at_length_3000() {
    use minobs_bigint::pow3;
    use minobs_core::index::{ind, ind_inv, IndexTracker};
    use minobs_core::letter::GammaLetter;
    use minobs_core::word::GammaWord;

    // 3^3000 has ~4757 bits; the calculus must stay exact.
    let w: GammaWord = (0..3000).map(|i| GammaLetter::ALL[i % 3]).collect();
    let v = ind(&w);
    assert!(v < pow3(3000));
    assert_eq!(ind_inv(3000, &v), Some(w.clone()));

    let mut t = IndexTracker::new();
    for a in w.iter() {
        t.push(a);
    }
    assert_eq!(t.into_value(), v);
}

#[test]
#[ignore = "scale test: A_w under a 2000-round adversary"]
fn aw_survives_long_adversarial_prefix() {
    // A scenario that stays adjacent to the witness for a long transient
    // before diverging: A_w must remain exact (bigint) and decide.
    let w: Scenario = "(b)".parse().unwrap();
    // (wb)-cycling scenario: fair, diverges from (b)ω immediately, but we
    // delay the engine budget to force thousands of bigint rounds on the
    // forbidden scenario first.
    let mut white = AwProcess::new(Role::White, true, w.clone());
    let mut black = AwProcess::new(Role::Black, false, w.clone());
    let out = run_two_process(&mut white, &mut black, &w, 2000);
    assert_eq!(out.rounds, 2000, "never decides on the forbidden scenario");
    assert!(matches!(out.verdict, Verdict::Undecided));

    // And a member scenario still decides fast afterwards.
    let member: Scenario = "(wb)".parse().unwrap();
    let mut white = AwProcess::new(Role::White, true, w.clone());
    let mut black = AwProcess::new(Role::Black, false, w);
    let out = run_two_process(&mut white, &mut black, &member, 64);
    assert!(out.verdict.is_consensus());
}

#[test]
#[ignore = "scale test: 400-node network, parallel engine"]
fn large_network_flooding() {
    use minobs_graphs::generators;
    use minobs_net::{DecisionRule, FloodConsensus};
    use minobs_sim::adversary::RandomOmissions;
    use minobs_sim::parallel::run_network_parallel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let g = generators::torus(20, 20);
    let n = g.vertex_count();
    let inputs: Vec<u64> = (0..n as u64).collect();
    let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
    // c(torus) = 4; f = 3 keeps the threshold satisfied.
    let mut adv = RandomOmissions::new(3, StdRng::seed_from_u64(1));
    let out = run_network_parallel(&g, nodes, &mut adv, 2 * n, 8);
    assert_eq!(out.verdict.expect_consensus(), 0);
    assert_eq!(out.stats.rounds, n - 1);
}

#[test]
#[ignore = "scale test: connectivity on large graphs"]
fn connectivity_on_large_families() {
    use minobs_graphs::{edge_connectivity, generators};
    assert_eq!(edge_connectivity(&generators::hypercube(8)), 8); // 256 nodes
    assert_eq!(edge_connectivity(&generators::torus(12, 12)), 4);
    assert_eq!(edge_connectivity(&generators::barbell(30, 7)), 7);
}

#[test]
#[ignore = "scale test: special pairs with long transients"]
fn spair_decision_long_lassos() {
    use minobs_core::spair::{is_special_pair, special_partner};
    // A long unfair scenario and its constructed partner.
    let prefix: String = "wb-".repeat(120);
    let w: Scenario = format!("{prefix}(b)").parse().unwrap();
    let p = special_partner(&w).expect("non-constant unfair has a partner");
    assert!(is_special_pair(&w, &p));
}
