//! End-to-end tests for the solvability-query service: wire round trips
//! over real sockets, concurrent-vs-serial verdict equivalence, graceful
//! shutdown under load, and (ignored by default) the warm-cache speedup
//! acceptance check.

use minobs_svc::client::SvcClient;
use minobs_svc::server::{serve, SvcConfig};
use serde_json::{Map, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

fn start() -> (minobs_svc::server::Server, String) {
    let server = serve(SvcConfig::default()).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut map = Map::new();
    for (key, value) in pairs {
        map.insert((*key).to_string(), value.clone());
    }
    Value::Object(map)
}

fn check_params(scheme: &str, horizon: u64) -> Value {
    obj(&[
        ("scheme", Value::from(scheme)),
        ("horizon", Value::from(horizon)),
    ])
}

/// The query mix both equivalence tests run: every method, schemes from
/// several families, horizons crossing each scheme's solvability
/// boundary so subsumption answers some of them.
fn workload() -> Vec<(&'static str, Value)> {
    let mut queries = Vec::new();
    for scheme in ["s0", "s1", "r1", "fair", "almost_fair", "regular_s1"] {
        for horizon in [0u64, 1, 2, 3] {
            queries.push(("check_horizon", check_params(scheme, horizon)));
        }
    }
    queries.push(("check_horizon", check_params("s2", 2)));
    for scheme in ["s1", "r1", "fair", "regular_c1"] {
        queries.push(("solvable", obj(&[("scheme", Value::from(scheme))])));
        queries.push((
            "first_horizon",
            obj(&[
                ("scheme", Value::from(scheme)),
                ("max_horizon", Value::from(4u64)),
            ]),
        ));
    }
    for (graph, f) in [("k4", 2u64), ("c5", 1), ("c5", 2), ("petersen", 2)] {
        queries.push((
            "net_solvable",
            obj(&[("graph", Value::from(graph)), ("f", Value::from(f))]),
        ));
    }
    queries.push((
        "simulate",
        obj(&[
            ("w", Value::from("(w)")),
            ("scenario", Value::from("(-)")),
            ("max_rounds", Value::from(48u64)),
        ]),
    ));
    queries
}

/// Projects a response onto the fields that must be identical no matter
/// how the query was scheduled or whether the cache answered it.
fn verdict_of(method: &str, result: &Value) -> String {
    match method {
        "check_horizon" => format!("{:?}", result.get("solvable")),
        "first_horizon" => format!(
            "{:?}@{:?}",
            result.get("outcome"),
            result.get("horizon").or(result.get("max_horizon"))
        ),
        "solvable" => format!(
            "{:?} witness {:?}",
            result.get("solvable"),
            result.get("witness")
        ),
        "net_solvable" => format!(
            "{:?} c {:?}",
            result.get("solvable"),
            result.get("edge_connectivity")
        ),
        "simulate" => format!("{:?}", result.get("verdict")),
        other => panic!("workload has no verdict projection for {other}"),
    }
}

#[test]
fn all_methods_answer_over_the_wire() {
    let (server, addr) = start();
    let mut client = SvcClient::connect(addr.as_str()).unwrap();

    let theorem = client
        .call("solvable", obj(&[("scheme", Value::from("s1"))]))
        .unwrap();
    assert_eq!(theorem.get("solvable").and_then(Value::as_bool), Some(true));
    assert!(theorem.get("witness").is_some(), "solvable carries witness");

    let check = client.call("check_horizon", check_params("r1", 3)).unwrap();
    assert_eq!(check.get("solvable").and_then(Value::as_bool), Some(false));
    // Same query again: answered by the cache.
    let check = client.call("check_horizon", check_params("r1", 3)).unwrap();
    assert_eq!(check.get("cached").and_then(Value::as_bool), Some(true));
    // Lower horizon: subsumed by the recorded verdict (unsolvable@3 ⇒ @2).
    let check = client.call("check_horizon", check_params("r1", 2)).unwrap();
    assert_eq!(check.get("solvable").and_then(Value::as_bool), Some(false));
    assert_eq!(check.get("cached").and_then(Value::as_bool), Some(true));

    let first = client
        .call(
            "first_horizon",
            obj(&[
                ("scheme", Value::from("s1")),
                ("max_horizon", Value::from(4u64)),
            ]),
        )
        .unwrap();
    assert_eq!(
        first.get("outcome").and_then(Value::as_str),
        Some("solvable")
    );

    let net = client
        .call(
            "net_solvable",
            obj(&[("graph", Value::from("k4")), ("f", Value::from(2u64))]),
        )
        .unwrap();
    assert_eq!(net.get("solvable").and_then(Value::as_bool), Some(true));
    assert_eq!(net.get("edge_connectivity").and_then(Value::as_u64), Some(3));

    let sim = client
        .call(
            "simulate",
            obj(&[
                ("w", Value::from("(w)")),
                ("scenario", Value::from("(-)")),
                ("max_rounds", Value::from(48u64)),
                ("trace", Value::from(true)),
            ]),
        )
        .unwrap();
    assert!(sim.get("verdict").is_some());
    assert!(sim.get("trace").and_then(Value::as_array).is_some());

    let stats = client.call("stats", Value::Null).unwrap();
    let counters = stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .expect("stats carries metric counters");
    for counter in ["svc.cache_hits", "svc.cache_misses", "svc.cache_subsumptions"] {
        assert!(
            counters.get(counter).and_then(Value::as_u64).is_some(),
            "{counter} missing from stats: {stats:?}"
        );
    }
    // This connection produced one exact hit and one subsumption above.
    assert!(counters.get("svc.cache_hits").and_then(Value::as_u64) >= Some(1));
    assert!(counters.get("svc.cache_subsumptions").and_then(Value::as_u64) >= Some(1));

    // Unknown methods and bad params answer errors, not hangups.
    assert!(client.call("no_such_method", Value::Null).is_err());
    assert!(client.call("check_horizon", Value::Null).is_err());
    let after = client.call("stats", Value::Null).unwrap();
    assert!(after.get("uptime_ms").is_some());

    client.call("shutdown", Value::Null).unwrap();
    server.join();
}

#[test]
fn concurrent_verdicts_match_serial() {
    // Serial baseline on a fresh daemon.
    let (server, addr) = start();
    let mut client = SvcClient::connect(addr.as_str()).unwrap();
    let baseline: Vec<String> = workload()
        .iter()
        .map(|(method, params)| {
            let result = client
                .call(method, params.clone())
                .unwrap_or_else(|e| panic!("serial {method} failed: {e}"));
            verdict_of(method, &result)
        })
        .collect();
    client.call("shutdown", Value::Null).unwrap();
    server.join();

    // Four clients race the same workload (shuffled per thread by
    // striding) against one fresh daemon; every verdict must match the
    // serial baseline even though cache states differ per interleaving.
    let (server, addr) = start();
    let queries = workload();
    std::thread::scope(|scope| {
        for stride in 1..=4usize {
            let addr = addr.clone();
            let queries = &queries;
            let baseline = &baseline;
            scope.spawn(move || {
                let mut client = SvcClient::connect(addr.as_str()).unwrap();
                let n = queries.len();
                for i in 0..n {
                    let idx = (i * stride) % n;
                    let (method, params) = &queries[idx];
                    let result = client
                        .call(method, params.clone())
                        .unwrap_or_else(|e| panic!("concurrent {method} failed: {e}"));
                    assert_eq!(
                        verdict_of(method, &result),
                        baseline[idx],
                        "query #{idx} ({method}) diverged under concurrency"
                    );
                }
            });
        }
    });
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_under_load_loses_no_accepted_request() {
    let (server, addr) = start();
    let successes = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let addr = addr.clone();
            let successes = &successes;
            scope.spawn(move || {
                let mut client = match SvcClient::connect(addr.as_str()) {
                    Ok(client) => client,
                    Err(_) => return, // daemon already draining
                };
                for i in 0..400usize {
                    let params = check_params(if worker % 2 == 0 { "s1" } else { "r1" }, 2);
                    match client.call("check_horizon", params) {
                        Ok(_) => {
                            successes.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(minobs_svc::SvcError::Rpc { .. }) => {
                            // A method error is still an answered request.
                            successes.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            // Connection closed: the drain refused this
                            // request before decoding it. That is the
                            // contract — it must never happen halfway
                            // (accepted but unanswered), which would
                            // surface as a recv hang, not an error.
                            let _ = i;
                            return;
                        }
                    }
                }
            });
        }
        // Let the load build, then drain from a separate connection.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut killer = SvcClient::connect(addr.as_str()).unwrap();
        let reply = killer.call("shutdown", Value::Null).unwrap();
        assert_eq!(reply.get("draining").and_then(Value::as_bool), Some(true));
    });

    // Drain must complete with every accepted request answered: the
    // request counter equals ok + err responses exactly.
    let state = std::sync::Arc::clone(server.state());
    server.join();
    let requests = state.registry().counter("svc.requests").get();
    let answered = state.registry().counter("svc.responses_ok").get()
        + state.registry().counter("svc.responses_err").get();
    assert_eq!(
        requests, answered,
        "accepted {requests} requests but answered {answered}"
    );
    assert!(
        successes.load(Ordering::SeqCst) > 0,
        "load threads got no responses at all"
    );
}

#[test]
fn telemetry_plane_exposes_spans_quantiles_and_exposition() {
    let trace_path = std::env::temp_dir().join(format!(
        "minobs_svc_telemetry_{}.trace.jsonl",
        std::process::id()
    ));
    let config = SvcConfig {
        trace_path: Some(trace_path.clone()),
        ..SvcConfig::default()
    };
    let server = serve(config).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let mut client = SvcClient::connect(addr.as_str()).unwrap();

    for _ in 0..3 {
        client
            .call("check_horizon", check_params("s1", 2))
            .unwrap();
        client
            .call("solvable", obj(&[("scheme", Value::from("s1"))]))
            .unwrap();
    }

    // `stats` carries per-method latency quantiles for every method
    // exercised so far, all non-zero (span/latency nanos are >= 1).
    let stats = client.call("stats", Value::Null).unwrap();
    let latency = stats
        .get("latency")
        .and_then(Value::as_object)
        .expect("stats carries a latency summary");
    for method in ["check_horizon", "solvable"] {
        let summary = latency
            .get(method)
            .unwrap_or_else(|| panic!("latency summary missing {method}: {stats:?}"));
        assert_eq!(
            summary.get("count").and_then(Value::as_u64),
            Some(3),
            "{method} latency count"
        );
        for q in ["p50_ns", "p95_ns", "p99_ns"] {
            let v = summary.get(q).and_then(Value::as_u64).unwrap_or(0);
            assert!(v > 0, "{method} {q} must be non-zero, got {summary:?}");
        }
    }

    // `metrics` renders the Prometheus text exposition.
    let metrics = client.call("metrics", Value::Null).unwrap();
    let text = metrics
        .get("text")
        .and_then(Value::as_str)
        .expect("metrics returns a text field");
    assert!(text.contains("# TYPE svc_requests counter"), "{text}");
    assert!(
        text.contains("svc_method_check_horizon_latency_ns_bucket{le=\"+Inf\"}"),
        "per-method histogram missing from exposition:\n{text}"
    );

    client.call("shutdown", Value::Null).unwrap();
    server.join();

    // The daemon trace interleaves whole requests: each request's
    // rpc.* span pair lands as a self-balanced block before its
    // svc_response, so a single pass with a stack must close everything.
    let trace = std::fs::read_to_string(&trace_path).expect("daemon trace written");
    let mut open: Vec<(u64, String)> = Vec::new();
    let mut span_names = Vec::new();
    for line in trace.lines() {
        let event: Value = serde_json::from_str(line).expect("valid trace JSON");
        match event.get("event").and_then(Value::as_str) {
            Some("span_start") => {
                let id = event.get("span_id").and_then(Value::as_u64).unwrap();
                let name = event.get("name").and_then(Value::as_str).unwrap();
                open.push((id, name.to_string()));
                span_names.push(name.to_string());
            }
            Some("span_end") => {
                let id = event.get("span_id").and_then(Value::as_u64).unwrap();
                let name = event.get("name").and_then(Value::as_str).unwrap();
                let (open_id, open_name) = open.pop().expect("span_end without span_start");
                assert_eq!((open_id, open_name.as_str()), (id, name));
                assert!(event.get("nanos").and_then(Value::as_u64).unwrap() >= 1);
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans in daemon trace: {open:?}");
    assert!(span_names.contains(&"rpc.check_horizon".to_string()));
    assert!(span_names.contains(&"rpc.solvable".to_string()));
    assert!(span_names.contains(&"rpc.stats".to_string()));
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn open_loop_bench_drives_the_service_end_to_end() {
    use minobs_svc::loadgen::{run_open_loop, MixEntry, OpenLoopConfig};
    use std::time::Duration;

    let (server, addr) = start();
    let config = OpenLoopConfig {
        freq: 200.0,
        duration: Duration::from_millis(500),
        threads: 2,
        mix: vec![
            MixEntry {
                method: "check_horizon".to_string(),
                params: check_params("s1", 2),
                weight: 3,
            },
            MixEntry {
                method: "stats".to_string(),
                params: Value::Null,
                weight: 1,
            },
        ],
        inflight_cap: 64,
        tick: None,
    };
    let summary = run_open_loop(&addr, &config).expect("open-loop bench runs");

    assert_eq!(summary.errors, 0, "no transport errors against a live daemon");
    // The comb fires ~freq × duration deadlines; every sent request is
    // answered (the reader drains pending entries before returning), and
    // each answer lands in the latency histogram.
    assert!(summary.sent >= 80, "only {} of ~100 deadlines sent", summary.sent);
    assert_eq!(summary.completed, summary.sent);
    assert_eq!(summary.latency.count(), summary.completed);
    assert!(summary.achieved_qps > 0.0);
    assert!(summary.achieved_qps <= summary.offered_qps * (1.0 + 1e-9));
    client_side_queued_is_visible(&addr);
    let mut client = SvcClient::connect(addr.as_str()).unwrap();
    client.call("shutdown", Value::Null).unwrap();
    server.join();
}

/// `stats` reports the `queued` gauge (accepted − answered). The stats
/// request itself is accepted but not yet answered while the handler
/// runs, so an otherwise idle daemon reports exactly 1.
fn client_side_queued_is_visible(addr: &str) {
    let mut client = SvcClient::connect(addr).unwrap();
    let stats = client.call("stats", Value::Null).unwrap();
    let queued = stats
        .get("queued")
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats carries a queued gauge: {stats:?}"));
    assert_eq!(queued, 1, "idle daemon: only the stats call itself in flight");
}

#[test]
fn wal_degradation_auto_dumps_the_flight_ring() {
    let base = std::env::temp_dir().join(format!("minobs_svc_wal_dump_{}", std::process::id()));
    let flight_dir = base.join("flight");
    std::fs::create_dir_all(&base).unwrap();
    // A directory is unopenable as a WAL file: the daemon degrades at
    // startup instead of dying, and the degradation edge auto-dumps.
    let config = SvcConfig {
        wal_path: Some(base.clone()),
        flight_dir: Some(flight_dir.clone()),
        ..SvcConfig::default()
    };
    let server = serve(config).expect("WAL degradation keeps the daemon up");
    let state = std::sync::Arc::clone(server.state());
    server.shutdown();
    server.join();

    assert!(
        state.registry().gauge("svc.wal_degraded").get() != 0,
        "daemon should be running degraded"
    );
    assert_eq!(state.registry().counter("svc.flight_dumps").get(), 1);
    let dump_path = flight_dir.join("flight-000-wal_degraded.trace.jsonl");
    let dump = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| panic!("auto-dump missing at {}: {e}", dump_path.display()));
    minobs_bench::lint::lint(&dump)
        .unwrap_or_else(|err| panic!("auto-dump not lint-clean: {err}"));
    let header: Value = serde_json::from_str(dump.lines().next().unwrap()).unwrap();
    assert_eq!(
        header.get("event").and_then(Value::as_str),
        Some("flight_dump")
    );
    assert_eq!(
        header.get("reason").and_then(Value::as_str),
        Some("wal_degraded")
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn dump_trace_rpc_is_lint_clean_and_kept_requests_surface_exemplars() {
    // Sampled daemon, but a slow-keep threshold of 0 ms keeps every
    // trace — the CI trigger shape.
    let config = SvcConfig {
        trace_sample: 0.01,
        trace_slow_ms: Some(0),
        ..SvcConfig::default()
    };
    let server = serve(config).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let mut client = SvcClient::connect(addr.as_str()).unwrap();
    for _ in 0..3 {
        client
            .call("check_horizon", check_params("s1", 2))
            .unwrap();
    }

    // The flight ring replays as a well-formed bounded trace on demand.
    let dump = client.call("dump_trace", Value::Null).unwrap();
    let jsonl = dump
        .get("jsonl")
        .and_then(Value::as_str)
        .expect("dump_trace returns the dump inline");
    assert!(dump.get("node_id").and_then(Value::as_str).is_some());
    assert!(dump.get("events").and_then(Value::as_u64).unwrap_or(0) > 0);
    minobs_bench::lint::lint(jsonl)
        .unwrap_or_else(|err| panic!("dump_trace output not lint-clean: {err}"));
    let header: Value = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
    assert_eq!(header.get("reason").and_then(Value::as_str), Some("rpc"));
    assert_eq!(header.get("sampled").and_then(Value::as_bool), Some(true));

    // Kept requests pin their trace id to the latency buckets: the
    // OpenMetrics exposition carries an exemplar on a finite bucket...
    let metrics = client.call("metrics", Value::Null).unwrap();
    let text = metrics.get("text").and_then(Value::as_str).unwrap();
    assert!(
        text.contains("# {trace_id=\""),
        "no exemplar in exposition:\n{text}"
    );
    // ...and stats.latency names the slowest bucket's trace outright.
    let stats = client.call("stats", Value::Null).unwrap();
    let exemplar = stats
        .get("latency")
        .and_then(|l| l.get("check_horizon"))
        .and_then(|m| m.get("exemplar_trace_id"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("no exemplar_trace_id in stats: {stats:?}"));
    assert_eq!(exemplar.len(), 32, "trace id is 32 hex digits: {exemplar}");
    assert!(exemplar.bytes().all(|b| b.is_ascii_hexdigit()));

    client.call("shutdown", Value::Null).unwrap();
    server.join();
}

#[test]
fn tail_sampling_drops_unremarkable_span_blocks_but_keeps_pairing() {
    let trace_path = std::env::temp_dir().join(format!(
        "minobs_svc_sampled_{}.trace.jsonl",
        std::process::id()
    ));
    // Keep probability 0 with the default slow threshold: every fast,
    // successful request's span block is sampled out.
    let config = SvcConfig {
        trace_path: Some(trace_path.clone()),
        trace_sample: 0.0,
        ..SvcConfig::default()
    };
    let server = serve(config).expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let mut client = SvcClient::connect(addr.as_str()).unwrap();
    for _ in 0..5 {
        client
            .call("check_horizon", check_params("s1", 2))
            .unwrap();
    }
    client.call("shutdown", Value::Null).unwrap();
    server.join();

    let trace = std::fs::read_to_string(&trace_path).expect("daemon trace written");
    // The stream declares itself sampled, stays lint-clean (request/
    // response pairing is never sampled out), and dropped at least some
    // span blocks.
    minobs_bench::lint::lint(&trace)
        .unwrap_or_else(|err| panic!("sampled trace not lint-clean: {err}"));
    assert!(
        trace.lines().any(|line| {
            let v: Value = serde_json::from_str(line).unwrap();
            v.get("event").and_then(Value::as_str) == Some("trace_sampled")
        }),
        "sampled stream must carry its trace_sampled marker"
    );
    let count = |kind: &str| {
        trace
            .lines()
            .filter(|line| {
                let v: Value = serde_json::from_str(line).unwrap();
                v.get("event").and_then(Value::as_str) == Some(kind)
            })
            .count()
    };
    let requests = count("svc_request");
    assert_eq!(requests, 6, "5 checks + shutdown all paired");
    assert_eq!(count("svc_response"), requests);
    assert!(
        count("span_start") < requests,
        "sampling at 0.0 should drop unremarkable span blocks"
    );
    let _ = std::fs::remove_file(&trace_path);
}

/// Acceptance: repeated `check_horizon` on a warm cache is at least 10×
/// the cold throughput. Run explicitly (release mode recommended):
/// `cargo test --release --test svc_service -- --ignored`.
#[test]
#[ignore = "timing-sensitive acceptance check; run explicitly in release"]
fn warm_cache_is_ten_times_cold_throughput() {
    let (server, addr) = start();
    let mut client = SvcClient::connect(addr.as_str()).unwrap();
    let params = check_params("s2", 4);

    let cold_start = Instant::now();
    let cold = client.call("check_horizon", params.clone()).unwrap();
    let cold_elapsed = cold_start.elapsed();
    assert_eq!(cold.get("cached").and_then(Value::as_bool), Some(false));

    const WARM_REPS: u32 = 50;
    let warm_start = Instant::now();
    for _ in 0..WARM_REPS {
        let warm = client.call("check_horizon", params.clone()).unwrap();
        assert_eq!(warm.get("cached").and_then(Value::as_bool), Some(true));
    }
    let warm_mean = warm_start.elapsed() / WARM_REPS;

    let speedup = cold_elapsed.as_secs_f64() / warm_mean.as_secs_f64().max(1e-9);
    client.call("shutdown", Value::Null).unwrap();
    server.join();
    assert!(
        speedup >= 10.0,
        "warm cache speedup only {speedup:.1}× (cold {cold_elapsed:?}, warm mean {warm_mean:?})"
    );
}
