//! Integration of the Section V-B reduction: the emulation `A'` of a
//! network algorithm is execution-equivalent to the network run through
//! `ρ`, across graph families, scenarios, and inputs — the mechanical
//! content of the Theorem V.1 impossibility proof.

use minobs_core::engine::run_two_process;
use minobs_core::letter::Role;
use minobs_core::scenario::Scenario;
use minobs_graphs::{cut_partition, generators, CutPartition, Graph};
use minobs_net::{DecisionRule, EmulatedSide, FloodConsensus};
use minobs_sim::adversary::CutAdversary;
use minobs_sim::network::{run_network, NodeProtocol as _};

fn sc(s: &str) -> Scenario {
    s.parse().unwrap()
}

fn side_inputs(g: &Graph, p: &CutPartition, wi: bool, bi: bool) -> Vec<u64> {
    (0..g.vertex_count())
        .map(|v| {
            if p.side_a.contains(&v) {
                wi as u64
            } else {
                bi as u64
            }
        })
        .collect()
}

fn split(
    g: &Graph,
    p: &CutPartition,
    inputs: &[u64],
) -> (Vec<FloodConsensus>, Vec<FloodConsensus>) {
    let fleet = FloodConsensus::fleet(g, inputs, DecisionRule::ValueOfMinId);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (v, node) in fleet.into_iter().enumerate() {
        if p.side_a.contains(&v) {
            a.push(node);
        } else {
            b.push(node);
        }
    }
    (a, b)
}

/// The full equivalence check for one (graph, scenario, inputs) triple.
fn check_equivalence(g: &Graph, p: &CutPartition, v: &str, wi: bool, bi: bool) {
    let inputs = side_inputs(g, p, wi, bi);

    // Network run under ρ⁻¹(v).
    let fleet = FloodConsensus::fleet(g, &inputs, DecisionRule::ValueOfMinId);
    let mut adv = CutAdversary::new(p, sc(v));
    let net = run_network(g, fleet, &mut adv, 4 * g.vertex_count());

    // Emulated two-process run under v.
    let (side_a, side_b) = split(g, p, &inputs);
    let mut white = EmulatedSide::new(Role::White, wi, g, p, side_a);
    let mut black = EmulatedSide::new(Role::Black, bi, g, p, side_b);
    let _ = run_two_process(&mut white, &mut black, &sc(v), 4 * g.vertex_count());

    // Decision-for-decision equality.
    let mut emulated = vec![None; g.vertex_count()];
    for &node in &p.side_a {
        emulated[node] = white.node(node).unwrap().decision();
    }
    for &node in &p.side_b {
        emulated[node] = black.node(node).unwrap().decision();
    }
    assert_eq!(
        net.decisions, emulated,
        "graph {g} scenario {v} inputs ({wi},{bi})"
    );
}

#[test]
fn emulation_equivalence_across_families_and_scenarios() {
    let graphs = [
        generators::barbell(3, 2),
        generators::barbell(4, 2),
        generators::cycle(6),
        generators::theta(3, 2),
        generators::star(5),
        generators::grid(2, 3),
    ];
    let scenarios = ["(-)", "(w)", "(b)", "(wb)", "w-(b)", "bw(-)", "(x)", "x(-)"];
    for g in &graphs {
        let p = cut_partition(g).unwrap();
        for v in scenarios {
            for (wi, bi) in [(false, true), (true, false), (true, true)] {
                check_equivalence(g, &p, v, wi, bi);
            }
        }
    }
}

#[test]
fn emulation_preserves_round_counts() {
    // Both executions consume the same letters: halting happens after the
    // same number of rounds (flood decides at n-1 everywhere).
    let g = generators::barbell(3, 2);
    let p = cut_partition(&g).unwrap();
    let inputs = side_inputs(&g, &p, true, false);

    let fleet = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
    let mut adv = CutAdversary::new(&p, sc("(wb)"));
    let net = run_network(&g, fleet, &mut adv, 64);

    let (side_a, side_b) = split(&g, &p, &inputs);
    let mut white = EmulatedSide::new(Role::White, true, &g, &p, side_a);
    let mut black = EmulatedSide::new(Role::Black, false, &g, &p, side_b);
    let two = run_two_process(&mut white, &mut black, &sc("(wb)"), 64);

    assert_eq!(net.stats.rounds, two.rounds);
}

#[test]
fn rho_roundtrip_on_scripts() {
    // scenario → Γ_C script → within-scheme validation, end to end.
    use minobs_net::scheme_net::{scenario_to_script, script_within_gamma_c, script_within_of};
    let g = generators::barbell(4, 3);
    let p = cut_partition(&g).unwrap();
    for v in ["(-)", "(w)", "(b)", "w-b(wb)"] {
        let script = scenario_to_script(&sc(v), &p, 16);
        assert!(script_within_gamma_c(&script, &p), "{v}");
        assert!(script_within_of(&script, p.f()), "{v}");
    }
}

#[test]
fn unfair_direction_breaks_flooding_exactly_when_it_hides_the_minimum() {
    // With the MinValue rule, the constant unfair scenarios are harmful in
    // exactly one direction: the one that hides the side holding the
    // minimum — the network-level shadow of the two-process asymmetry
    // between DropWhite^ω and DropBlack^ω.
    let g = generators::barbell(4, 2);
    let p = cut_partition(&g).unwrap();
    // Minimum (value 0) on the A side:
    for (v, expect_consensus) in [("(-)", true), ("(wb)", true), ("(w)", false), ("(b)", true)] {
        let inputs = side_inputs(&g, &p, false, true);
        let fleet = FloodConsensus::fleet(&g, &inputs, DecisionRule::MinValue);
        let mut adv = CutAdversary::new(&p, sc(v));
        let out = run_network(&g, fleet, &mut adv, 64);
        assert_eq!(out.verdict.is_consensus(), expect_consensus, "A-min {v}: {:?}", out.verdict);
    }
    // Minimum on the B side: the harmful direction flips.
    for (v, expect_consensus) in [("(w)", true), ("(b)", false)] {
        let inputs = side_inputs(&g, &p, true, false);
        let fleet = FloodConsensus::fleet(&g, &inputs, DecisionRule::MinValue);
        let mut adv = CutAdversary::new(&p, sc(v));
        let out = run_network(&g, fleet, &mut adv, 64);
        assert_eq!(out.verdict.is_consensus(), expect_consensus, "B-min {v}: {:?}", out.verdict);
    }
}
