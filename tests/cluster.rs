//! Replicated-cluster integration tests: three in-process daemons
//! gossiping verdicts, with and without seeded link faults.
//!
//! The convergence property asserted throughout is the semilattice one
//! the gossip protocol is built on (see `docs/CLUSTER.md`): after every
//! link fault heals, all live nodes hold *identical* verdict maps, every
//! replicated bound is a tightening of what a node already knew (never a
//! rewrite), and a key proven on one node is a cache hit on every other.
//!
//! The pinned-seed partition sweep (`partition_sweep_across_seeds`) is
//! `#[ignore]`d like the other long-haul suites; the CI `cluster` job
//! runs it with `-- --ignored`.

use minobs_bench::lint::lint;
use minobs_chaos::link::{LinkFault, LinkFaultPlan};
use minobs_cluster::{LinkPolicy, LinkVerdict};
use minobs_obs::TraceContext;
use minobs_svc::client::SvcClient;
use minobs_svc::server::{serve, Server, SvcConfig};
use minobs_svc::ClusterClient;
use serde_json::{Map, Value};
use std::collections::HashMap;
use std::time::{Duration, Instant};

const NODES: usize = 3;
/// Fast cadence so a dozen rounds (enough to pass any sampled partition
/// window) fit in well under a second.
const GOSSIP_INTERVAL: Duration = Duration::from_millis(15);
const CONVERGE_DEADLINE: Duration = Duration::from_secs(30);

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut map = Map::new();
    for (key, value) in pairs {
        map.insert((*key).to_string(), value.clone());
    }
    Value::Object(map)
}

fn check_params(scheme: &str, horizon: u64) -> Value {
    obj(&[
        ("scheme", Value::from(scheme)),
        ("horizon", Value::from(horizon)),
    ])
}

/// Boots `NODES` daemons sequentially; node `i` gossips with every node
/// booted before it, which covers all pairs directly for three nodes.
/// `plan` (when any) is adapted into each initiator's [`LinkPolicy`]
/// with node indices resolved through the boot-order address map.
fn boot_cluster(plan: Option<LinkFaultPlan>) -> Vec<Server> {
    let mut servers: Vec<Server> = Vec::with_capacity(NODES);
    let mut addrs: Vec<String> = Vec::with_capacity(NODES);
    for index in 0..NODES {
        let link_policy = plan.clone().map(|plan| {
            let addr_index: HashMap<String, usize> =
                addrs.iter().cloned().zip(0..).collect();
            LinkPolicy::new(move |round, peer| {
                let to = *addr_index.get(peer).expect("peers come from the boot list");
                match plan.verdict(round, index, to) {
                    LinkFault::Deliver => LinkVerdict::Deliver,
                    LinkFault::Drop => LinkVerdict::Drop,
                    LinkFault::Delay(ms) => LinkVerdict::Delay(Duration::from_millis(ms)),
                }
            })
        });
        let server = serve(SvcConfig {
            peers: addrs.clone(),
            gossip_interval: GOSSIP_INTERVAL,
            link_policy,
            ..SvcConfig::default()
        })
        .expect("bind an ephemeral port");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    servers
}

fn shutdown(servers: Vec<Server>) {
    for server in &servers {
        server.shutdown();
    }
    for server in servers {
        server.join();
    }
}

/// Distinct warm state per node: different schemes, horizons on both
/// sides of solvability, plus a theorem memo — so convergence has to
/// move every record type in every direction.
fn warm_nodes(servers: &[Server]) {
    let seeds: [(&str, usize, bool); NODES] = [
        ("cluster:a|alpha2", 3, true),
        ("cluster:b|alpha2", 2, false),
        ("cluster:c|alpha2", 1, true),
    ];
    for (server, (key, k, solvable)) in servers.iter().zip(seeds) {
        server.state().record_horizon(key, k, solvable);
    }
    servers[0].state().record_horizon("cluster:a|alpha2", 1, false);
    servers[1]
        .state()
        .record_theorem("cluster:b|theorem", Value::from("memo-b"));
}

type Snapshot = Vec<(
    String,
    minobs_synth::cache::HorizonVerdicts,
    Option<Value>,
)>;

fn snapshots(servers: &[Server]) -> Vec<Snapshot> {
    servers
        .iter()
        .map(|server| server.state().cache().snapshot())
        .collect()
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let started = Instant::now();
    while started.elapsed() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    done()
}

/// Asserts that `after` only refines `before`: every key survives and
/// both bounds are at least as tight — a replicated record may tighten a
/// bound but never rewrite or loosen one.
fn assert_tightening_only(context: &str, before: &Snapshot, after: &Snapshot) {
    for (key, verdicts, theorem) in before {
        let found = after
            .iter()
            .find(|(k, _, _)| k == key)
            .unwrap_or_else(|| panic!("{context}: key {key:?} vanished"));
        if let Some(old) = verdicts.min_solvable() {
            let new = found
                .1
                .min_solvable()
                .unwrap_or_else(|| panic!("{context}: {key:?} lost its solvable bound"));
            assert!(new <= old, "{context}: {key:?} solvable bound loosened");
        }
        if let Some(old) = verdicts.max_unsolvable() {
            let new = found
                .1
                .max_unsolvable()
                .unwrap_or_else(|| panic!("{context}: {key:?} lost its unsolvable bound"));
            assert!(new >= old, "{context}: {key:?} unsolvable bound loosened");
        }
        if let Some(memo) = theorem {
            assert_eq!(
                found.2.as_ref(),
                Some(memo),
                "{context}: {key:?} theorem memo changed"
            );
        }
    }
}

/// One full convergence trial under the faults of `plan` (or none).
/// Panics with `context` on any violated property.
fn converge_trial(context: &str, plan: Option<LinkFaultPlan>) {
    let servers = boot_cluster(plan);
    warm_nodes(&servers);
    let before = snapshots(&servers);

    let converged = wait_until(CONVERGE_DEADLINE, || {
        let snaps = snapshots(&servers);
        snaps.iter().all(|snap| *snap == snaps[0])
    });
    let after = snapshots(&servers);
    assert!(
        converged,
        "{context}: nodes failed to converge within {CONVERGE_DEADLINE:?}: sizes {:?}",
        after.iter().map(Vec::len).collect::<Vec<_>>()
    );
    assert!(
        after[0].len() >= 4,
        "{context}: converged map is missing seeded records: {after:?}"
    );
    for (index, snap) in before.iter().enumerate() {
        assert_tightening_only(context, snap, &after[index]);
    }
    shutdown(servers);
}

#[test]
fn three_nodes_converge_and_serve_each_others_verdicts() {
    let servers = boot_cluster(None);
    let addrs: Vec<String> = servers
        .iter()
        .map(|server| server.local_addr().to_string())
        .collect();

    // Prove a key on one node through the real RPC surface, routed by
    // the consistent-hash ring like a production client would.
    let mut cluster_client = ClusterClient::new(&addrs);
    let fresh = cluster_client
        .call("classic:r1|binary", "check_horizon", check_params("r1", 3))
        .unwrap();
    assert_eq!(fresh.get("cached").and_then(Value::as_bool), Some(false));

    // Every node — owner or not — must come to serve it from cache.
    // Wait on the node's *snapshot*, not on a check_horizon probe: a probe
    // would prove the verdict locally on its first miss, and the eventual
    // cache hit would say nothing about replication. With the snapshot
    // gate, gossip is the only way the entry can have arrived.
    for (server, addr) in servers.iter().zip(&addrs) {
        let replicated = wait_until(CONVERGE_DEADLINE, || {
            !server.state().cache().snapshot().is_empty()
        });
        assert!(replicated, "node {addr} never received the verdict via gossip");
        let mut client = SvcClient::connect(addr.as_str()).unwrap();
        let check = client
            .call("check_horizon", check_params("r1", 3))
            .unwrap();
        assert_eq!(
            check.get("cached").and_then(Value::as_bool),
            Some(true),
            "node {addr} should serve the replicated verdict from cache"
        );
        // Subsumption works on replicated bounds too (unsolvable@3 ⇒ @2).
        let mut client = SvcClient::connect(addr.as_str()).unwrap();
        let lower = client
            .call("check_horizon", check_params("r1", 2))
            .unwrap();
        assert_eq!(lower.get("solvable").and_then(Value::as_bool), Some(false));
        assert_eq!(lower.get("cached").and_then(Value::as_bool), Some(true));
    }

    // Peer tables surface in stats on every gossiping node.
    for (index, addr) in addrs.iter().enumerate().skip(1) {
        let mut client = SvcClient::connect(addr.as_str()).unwrap();
        let stats = client.call("stats", Value::Null).unwrap();
        let peers = stats.get("peers").expect("stats carries a peers section");
        assert_eq!(
            peers.get("count").and_then(Value::as_u64),
            Some(index as u64)
        );
        assert_eq!(
            peers.get("alive").and_then(Value::as_u64),
            Some(index as u64)
        );
    }

    shutdown(servers);
}

#[test]
fn single_node_stats_report_an_empty_peer_table() {
    let server = serve(SvcConfig::default()).unwrap();
    let mut client = SvcClient::connect(server.local_addr().to_string().as_str()).unwrap();
    let stats = client.call("stats", Value::Null).unwrap();
    let peers = stats.get("peers").expect("peers present in single-node mode");
    assert_eq!(peers.get("count").and_then(Value::as_u64), Some(0));
    assert_eq!(peers.get("max_lag").and_then(Value::as_u64), Some(0));
    assert_eq!(
        peers
            .get("table")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(0)
    );
    server.shutdown();
    server.join();
}

/// End-to-end distributed tracing: one traced client request against a
/// gossiping node must leave a single trace_id threaded across at least
/// two nodes' trace files with a correct parent chain — the client's
/// root context parents the serving node's `rpc.check_horizon` span,
/// the replication `gossip.exchange` is ctx-parented on that rpc root,
/// and the receiving node's `rpc.gossip` span is ctx-parented on the
/// exchange. This is the fixture `trace stitch` reassembles.
#[test]
fn traced_request_threads_one_trace_id_across_nodes() {
    let run = std::process::id();
    let trace_paths: Vec<std::path::PathBuf> = (0..NODES)
        .map(|i| std::env::temp_dir().join(format!("minobs-e2e-trace-{run}-{i}.jsonl")))
        .collect();
    let mut servers: Vec<Server> = Vec::with_capacity(NODES);
    let mut addrs: Vec<String> = Vec::with_capacity(NODES);
    for (index, trace_path) in trace_paths.iter().enumerate() {
        let server = serve(SvcConfig {
            peers: addrs.clone(),
            gossip_interval: GOSSIP_INTERVAL,
            trace_path: Some(trace_path.clone()),
            node_id: Some(format!("node{index}")),
            ..SvcConfig::default()
        })
        .expect("bind an ephemeral port");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }

    // Target the last node: it is the only one gossiping to both
    // others, so its miss is guaranteed to trigger a ctx-carrying
    // exchange. `SvcClient::call` mints the root trace context.
    let mut client = SvcClient::connect(addrs[NODES - 1].as_str()).unwrap();
    let fresh = client
        .call("check_horizon", check_params("r1", 3))
        .unwrap();
    assert_eq!(fresh.get("cached").and_then(Value::as_bool), Some(false));

    // Full replication implies the serving node completed exchanges
    // with every peer — including the one that carried the stashed ctx.
    let replicated = wait_until(CONVERGE_DEADLINE, || {
        servers
            .iter()
            .all(|server| !server.state().cache().snapshot().is_empty())
    });
    assert!(replicated, "verdict never replicated to every node");
    // Shutdown flushes every node's buffered trace sink.
    shutdown(servers);

    // (node_id, span event) for every span_start across all files.
    let mut spans: Vec<(String, Value)> = Vec::new();
    for path in &trace_paths {
        let text = std::fs::read_to_string(path).expect("trace file written");
        for line in text.lines() {
            let value: Value = serde_json::from_str(line).expect("valid JSONL");
            let node = value
                .get("node_id")
                .and_then(Value::as_str)
                .expect("every daemon line is node-stamped")
                .to_string();
            if value.get("event").and_then(Value::as_str) == Some("span_start") {
                spans.push((node, value));
            }
        }
        let _ = std::fs::remove_file(path);
    }
    let field = |v: &Value, k: &str| v.get(k).and_then(Value::as_u64);
    let trace_of = |v: &Value| v.get("trace_id").and_then(Value::as_str).map(str::to_string);

    // The client's request root: rpc.check_horizon on the serving node,
    // stamped with the client's trace but with no remote parent (the
    // client is the trace root and writes no file).
    let (rpc_node, rpc) = spans
        .iter()
        .find(|(node, v)| {
            node == "node2" && v.get("name").and_then(Value::as_str) == Some("rpc.check_horizon")
        })
        .expect("serving node recorded the rpc span");
    let trace = trace_of(rpc).expect("rpc root carries the client's trace_id");
    assert!(rpc.get("ctx_parent").is_none());
    let rpc_span = field(rpc, "span_id").unwrap();

    // The replication exchange on the same node, parented on the rpc root.
    let (_, exchange) = spans
        .iter()
        .find(|(node, v)| {
            node == rpc_node
                && v.get("name").and_then(Value::as_str) == Some("gossip.exchange")
                && trace_of(v).as_deref() == Some(trace.as_str())
        })
        .expect("serving node recorded a ctx-carrying gossip exchange");
    assert_eq!(field(exchange, "ctx_parent"), Some(rpc_span));
    let exchange_span = field(exchange, "span_id").unwrap();

    // The receiving side: an rpc.gossip span on a *different* node,
    // same trace, parented on the exchange span.
    let (gossip_node, gossip) = spans
        .iter()
        .find(|(node, v)| {
            node != rpc_node
                && v.get("name").and_then(Value::as_str) == Some("rpc.gossip")
                && trace_of(v).as_deref() == Some(trace.as_str())
        })
        .expect("a peer recorded the ctx-carrying rpc.gossip span");
    assert_eq!(field(gossip, "ctx_parent"), Some(exchange_span));
    assert_ne!(gossip_node, rpc_node, "the trace must cross nodes");
}

/// The post-hoc incident path end to end: boot a three-node fleet under
/// CI's aggressive tail-sampling regime (`sample = 0.01`, but
/// `slow_ms = 0` so every timed request counts as slow and is kept),
/// issue one traced request, then pull every node's flight ring through
/// the `dump_trace` RPC. Each dump must be a lint-clean
/// `minobs/trace/v1` stream, the request's trace id must appear in at
/// least two nodes' dumps (the serving node's rpc root plus a peer's
/// ctx-carrying replication hop — the fixture `trace stitch`
/// reassembles), and the same id must surface as an exemplar in the
/// serving node's Prometheus exposition.
#[test]
fn fleet_dump_trace_reassembles_a_cross_node_trace() {
    let mut servers: Vec<Server> = Vec::with_capacity(NODES);
    let mut addrs: Vec<String> = Vec::with_capacity(NODES);
    for index in 0..NODES {
        let server = serve(SvcConfig {
            peers: addrs.clone(),
            gossip_interval: GOSSIP_INTERVAL,
            node_id: Some(format!("node{index}")),
            trace_sample: 0.01,
            trace_slow_ms: Some(0),
            ..SvcConfig::default()
        })
        .expect("bind an ephemeral port");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }

    // Mint the root context by hand so the test knows which trace id to
    // hunt for in the dumps, and target the last node: it gossips to
    // both peers, so its miss triggers ctx-carrying exchanges.
    let ctx = TraceContext::root();
    let hex = ctx.trace_id_hex();
    let mut client = SvcClient::connect(addrs[NODES - 1].as_str()).unwrap();
    let fresh = client
        .call_with_ctx("check_horizon", check_params("r1", 3), &ctx)
        .unwrap();
    assert_eq!(fresh.get("cached").and_then(Value::as_bool), Some(false));

    // Full replication implies the serving node completed the exchanges
    // that carried the stashed ctx to its peers.
    let replicated = wait_until(CONVERGE_DEADLINE, || {
        servers
            .iter()
            .all(|server| !server.state().cache().snapshot().is_empty())
    });
    assert!(replicated, "verdict never replicated to every node");

    // Pull every node's flight ring over the wire — the same surface
    // `svc dump --all` drives.
    let mut dumps: Vec<(String, String)> = Vec::new();
    for addr in &addrs {
        let mut client = SvcClient::connect(addr.as_str()).unwrap();
        let dump = client.call("dump_trace", Value::Null).unwrap();
        let node = dump
            .get("node_id")
            .and_then(Value::as_str)
            .expect("dump_trace reports its node identity")
            .to_string();
        let jsonl = dump
            .get("jsonl")
            .and_then(Value::as_str)
            .expect("dump_trace inlines the JSONL stream")
            .to_string();
        dumps.push((node, jsonl));
    }

    // Every per-node dump stands alone as a valid trace stream.
    for (node, jsonl) in &dumps {
        lint(jsonl).unwrap_or_else(|err| panic!("{node} dump fails trace_lint: {err}"));
    }

    // The kept request's id crosses node boundaries: the serving node
    // recorded the rpc root and at least one *other* node recorded the
    // replicated hop under the same trace.
    let carriers: Vec<&str> = dumps
        .iter()
        .filter(|(_, jsonl)| jsonl.contains(hex.as_str()))
        .map(|(node, _)| node.as_str())
        .collect();
    assert!(
        carriers.contains(&format!("node{}", NODES - 1).as_str()),
        "serving node's dump lost the kept request (carriers: {carriers:?})"
    );
    assert!(
        carriers.len() >= 2,
        "trace {hex} should appear in >= 2 nodes' dumps, found {carriers:?}"
    );

    // The same id is the request's exemplar in the serving node's
    // Prometheus exposition (per-method histogram, so later dump_trace
    // calls cannot displace it).
    let mut client = SvcClient::connect(addrs[NODES - 1].as_str()).unwrap();
    let metrics = client.call("metrics", Value::Null).unwrap();
    let text = metrics
        .get("text")
        .and_then(Value::as_str)
        .expect("metrics RPC inlines the exposition");
    assert!(
        text.contains(&format!("trace_id=\"{hex}\"")),
        "serving node's exposition lacks the request's exemplar"
    );

    shutdown(servers);
}

/// The tier-1 pinned-seed chaos check: one sampled partition plan,
/// convergence after heal, tightening-only replication.
#[test]
fn convergence_survives_a_pinned_seed_partition() {
    let plan = LinkFaultPlan::sample(0xC0FFEE, NODES);
    converge_trial("seed 0xC0FFEE", Some(plan));
}

/// The full sweep the CI `cluster` job runs: 32 pinned seeds, each a
/// different partition window, split, and noise schedule.
#[test]
#[ignore = "long-haul sweep; run explicitly with -- --ignored (CI cluster job)"]
fn partition_sweep_across_seeds() {
    for seed in 0..32u64 {
        let plan = LinkFaultPlan::sample(seed, NODES);
        converge_trial(&format!("sweep seed {seed} ({plan:?})"), Some(plan));
    }
}
