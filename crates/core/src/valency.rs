//! Valency of partial scenarios (Definitions III.9 / III.10), executable.
//!
//! Fix an algorithm `A`, a scheme `L`, and the bivalent initial
//! configuration `I` (input 0 at White, 1 at Black). A partial scenario
//! `v ∈ Pref(L)` is *`i`-valent* when every `L`-scenario extending `v`
//! makes `A` decide `i`, and *bivalent* when both decisions are reachable.
//! A bivalent prefix all of whose one-letter extensions (within `Pref(L)`)
//! are univalent is *decisive* — the configuration where the
//! impossibility argument corners the algorithm.
//!
//! The infinite quantification over extensions is approximated soundly by
//! a caller-supplied *extension basis*: a set of lasso continuations
//! appended to the prefix, each membership-checked against `L`. For the
//! classic schemes a small basis (constant tails + short fair cycles)
//! already distinguishes every valency the theory predicts, and every
//! reported decision is a genuine `A`-run, so
//!
//! * reported `Bivalent` is **exact** (two concrete witnessing runs);
//! * reported univalence is exact relative to the basis (a larger basis
//!   can only refine it).

use crate::engine::{run_two_process, TwoProcessProtocol, Verdict};
use crate::letter::{GammaLetter, Role};
use crate::scenario::Scenario;
use crate::scheme::OmissionScheme;
use crate::word::Word;

/// The valency of a partial scenario under a concrete algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Valency {
    /// Every basis extension decides 0.
    Zero,
    /// Every basis extension decides 1.
    One,
    /// Both decisions observed; the witnesses are the extending scenarios.
    Bivalent {
        /// An extension deciding 0.
        witness_zero: Scenario,
        /// An extension deciding 1.
        witness_one: Scenario,
    },
    /// No basis extension completed a decision (e.g. the prefix has no
    /// `L`-extension in the basis, or runs exceeded the budget).
    Unknown,
}

impl Valency {
    /// `true` for [`Valency::Bivalent`].
    pub fn is_bivalent(&self) -> bool {
        matches!(self, Valency::Bivalent { .. })
    }
}

/// A factory producing fresh protocol instances for repeated runs.
pub trait ProtocolFactory {
    /// The protocol type.
    type P: TwoProcessProtocol;
    /// A fresh instance for `role` with input `input`.
    fn fresh(&self, role: Role, input: bool) -> Self::P;
}

impl<P, F> ProtocolFactory for F
where
    P: TwoProcessProtocol,
    F: Fn(Role, bool) -> P,
{
    type P = P;
    fn fresh(&self, role: Role, input: bool) -> P {
        self(role, input)
    }
}

/// The default extension basis: constant tails, the alternating fair
/// cycles, and the clean tail — enough to separate the valencies of every
/// classic scheme.
pub fn default_extension_basis() -> Vec<Scenario> {
    ["(-)", "(w)", "(b)", "(wb)", "(bw)", "(w-)", "(b-)", "(-w)", "(-b)"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
}

/// Classifies the valency of `prefix` for algorithm `A` (via `factory`)
/// against scheme `L`, using the given extension basis and the bivalent
/// initial configuration `I` (White = 0, Black = 1).
pub fn valency<F>(
    factory: &F,
    scheme: &dyn OmissionScheme,
    prefix: &Word,
    basis: &[Scenario],
    budget: usize,
) -> Valency
where
    F: ProtocolFactory,
    <F::P as TwoProcessProtocol>::Msg: Clone,
{
    let mut saw_zero: Option<Scenario> = None;
    let mut saw_one: Option<Scenario> = None;
    for tail in basis {
        let extended = tail.prepend(prefix);
        if !scheme.contains(&extended) {
            continue;
        }
        let mut white = factory.fresh(Role::White, false);
        let mut black = factory.fresh(Role::Black, true);
        let out = run_two_process(&mut white, &mut black, &extended, budget);
        match out.verdict {
            Verdict::Consensus(false) => saw_zero = saw_zero.or(Some(extended)),
            Verdict::Consensus(true) => saw_one = saw_one.or(Some(extended)),
            Verdict::Undecided => {}
            bad => panic!("algorithm violated consensus on {extended}: {bad:?}"),
        }
        if let (Some(_), Some(_)) = (&saw_zero, &saw_one) {
            break;
        }
    }
    match (saw_zero, saw_one) {
        (Some(witness_zero), Some(witness_one)) => Valency::Bivalent {
            witness_zero,
            witness_one,
        },
        (Some(_), None) => Valency::Zero,
        (None, Some(_)) => Valency::One,
        (None, None) => Valency::Unknown,
    }
}

/// Searches for a *decisive* prefix (Definition III.10): bivalent, with no
/// bivalent one-letter extension inside `Pref(L)`. Walks bivalent children
/// breadth-first from `ε` up to `max_depth`.
///
/// Returns the decisive prefix, or `None` when every explored bivalent
/// prefix keeps a bivalent child (the scheme side of Lemma III.11's
/// dichotomy: following the bivalent children forever traces an unfair
/// scenario trapped in a special pair).
pub fn find_decisive_prefix<F>(
    factory: &F,
    scheme: &dyn OmissionScheme,
    basis: &[Scenario],
    max_depth: usize,
    budget: usize,
) -> Option<Word>
where
    F: ProtocolFactory,
    <F::P as TwoProcessProtocol>::Msg: Clone,
{
    let mut frontier: Vec<Word> = vec![Word::empty()];
    for _depth in 0..=max_depth {
        let mut next = Vec::new();
        for v in frontier {
            if !valency(factory, scheme, &v, basis, budget).is_bivalent() {
                continue;
            }
            let mut bivalent_children = Vec::new();
            for a in GammaLetter::ALL {
                let child = v.push(a.to_letter());
                if !scheme.allows_prefix(&child) {
                    continue;
                }
                if valency(factory, scheme, &child, basis, budget).is_bivalent() {
                    bivalent_children.push(child);
                }
            }
            if bivalent_children.is_empty() {
                return Some(v); // bivalent, no bivalent children: decisive
            }
            next.extend(bivalent_children);
        }
        frontier = next;
        if frontier.is_empty() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::AwProcess;
    use crate::scheme::classic;
    use crate::theorem::decide_classic;

    fn aw_factory(w: &Scenario) -> impl ProtocolFactory<P = AwProcess> + '_ {
        move |role, input| AwProcess::new(role, input, w.clone())
    }

    #[test]
    fn epsilon_is_bivalent_for_fair_witness_schemes() {
        // The impossibility proof's starting point (§III-C): under inputs
        // (0, 1), ε is bivalent — scenarios above the witness trajectory
        // decide White's value, scenarios below decide Black's, and a fair
        // witness leaves members on both sides.
        for scheme in [classic::s1(), classic::c1()] {
            let w = decide_classic(&scheme).witness().unwrap().clone();
            let factory = aw_factory(&w);
            let v = valency(
                &factory,
                &scheme,
                &Word::empty(),
                &default_extension_basis(),
                256,
            );
            assert!(v.is_bivalent(), "{}: {v:?}", scheme.name());
        }
    }

    #[test]
    fn constant_witness_makes_aw_a_dictatorship() {
        // A structural curiosity surfaced by the valency analysis: with
        // the maximal witness w = (b)^ω, no phantom index can ever end
        // *above* ind(w_r) = 3^r - 1, so every run decides on the below
        // side — Black's initial value. That is exactly the behaviour of
        // the intuitive almost-fair algorithm (Corollary IV.1: everyone
        // outputs ◼'s value), and it makes ε univalent rather than
        // bivalent. Consensus still holds: a value-dictatorship satisfies
        // Termination, Agreement, and Validity.
        let scheme = classic::almost_fair();
        let w = decide_classic(&scheme).witness().unwrap().clone();
        assert_eq!(w, "(b)".parse().unwrap());
        let factory = aw_factory(&w);
        let v = valency(
            &factory,
            &scheme,
            &Word::empty(),
            &default_extension_basis(),
            256,
        );
        assert_eq!(v, Valency::One, "Black proposes 1; the dictator decides 1");
    }

    #[test]
    fn bivalent_witnesses_really_decide_differently() {
        let scheme = classic::s1();
        let w = decide_classic(&scheme).witness().unwrap().clone();
        let factory = aw_factory(&w);
        let Valency::Bivalent {
            witness_zero,
            witness_one,
        } = valency(
            &factory,
            &scheme,
            &Word::empty(),
            &default_extension_basis(),
            256,
        )
        else {
            panic!("ε must be bivalent");
        };
        // Re-run both witnesses and confirm.
        for (s, expect) in [(witness_zero, false), (witness_one, true)] {
            let mut white = AwProcess::new(Role::White, false, w.clone());
            let mut black = AwProcess::new(Role::Black, true, w.clone());
            let out = run_two_process(&mut white, &mut black, &s, 256);
            assert_eq!(out.verdict, Verdict::Consensus(expect), "{s}");
        }
    }

    #[test]
    fn decisive_prefix_exists_for_bounded_schemes() {
        // S1 decides in 2 rounds: a decisive prefix exists within depth 2.
        let scheme = classic::s1();
        let (p, w0) = crate::theorem::min_excluded_prefix(&scheme, 4).unwrap();
        let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
        let factory = move |role, input| {
            AwProcess::new(role, input, w.clone()).with_round_cap(p)
        };
        let decisive = find_decisive_prefix(
            &factory,
            &scheme,
            &default_extension_basis(),
            3,
            64,
        );
        let v = decisive.expect("a decisive prefix must exist for capped A_w on S1");
        assert!(v.len() < p, "decisive before the decision round, got {v}");
    }

    #[test]
    fn valency_of_univalent_prefixes() {
        // Under S1 with capped A_w: after two clean rounds the run is
        // already decided; any decided prefix is univalent.
        let scheme = classic::s1();
        let (p, w0) = crate::theorem::min_excluded_prefix(&scheme, 4).unwrap();
        let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
        let factory = move |role, input| {
            AwProcess::new(role, input, w.clone()).with_round_cap(p)
        };
        let v = valency(
            &factory,
            &scheme,
            &"--".parse().unwrap(),
            &default_extension_basis(),
            64,
        );
        assert!(
            matches!(v, Valency::Zero | Valency::One),
            "a completed prefix is univalent: {v:?}"
        );
    }

    #[test]
    fn unknown_when_prefix_leaves_the_scheme() {
        let scheme = classic::s0(); // only Full^ω
        let w: Scenario = "(wb)".parse().unwrap();
        let factory = aw_factory(&w);
        let v = valency(
            &factory,
            &scheme,
            &"w".parse().unwrap(),
            &default_extension_basis(),
            64,
        );
        assert_eq!(v, Valency::Unknown, "no S0 scenario starts with a loss");
    }

    #[test]
    fn obstruction_keeps_bivalent_children_forever() {
        // Lemma III.11's dichotomy, the obstruction side: for R1 = Γω no
        // decisive prefix appears (within the search depth) because every
        // bivalent prefix keeps a bivalent child — A_w never becomes safe.
        let scheme = classic::r1();
        let w: Scenario = "(b)".parse().unwrap(); // not a valid witness: R1 has none
        let factory = aw_factory(&w);
        let decisive = find_decisive_prefix(
            &factory,
            &scheme,
            &default_extension_basis(),
            3,
            128,
        );
        assert_eq!(decisive, None);
    }
}
