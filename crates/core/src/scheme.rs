//! Omission schemes (Definition II.2) and the paper's catalog of classic
//! fault environments (Examples II.5–II.11).
//!
//! An omission scheme is *any* set of scenarios — the paper's point is
//! precisely that no failure metric is endorsed. The library therefore
//! exposes a scheme as a trait ([`OmissionScheme`]) whose one mandatory
//! operation is scenario membership, plus a prefix-viability query used by
//! executors and the model checker.
//!
//! [`ClassicScheme`] is a closed enumeration of every environment named in
//! the paper, each with exact membership, prefix, fairness and special-pair
//! answers — these feed [`crate::theorem::decide_classic`]. Arbitrary
//! ω-regular schemes get the same treatment in the `minobs-omega` crate.

use crate::letter::{GammaLetter, Letter, Role};
use crate::scenario::Scenario;
use crate::word::Word;
use std::fmt;

/// An arbitrary set of communication scenarios.
pub trait OmissionScheme {
    /// Is the (ultimately periodic) scenario a member of the scheme?
    fn contains(&self, w: &Scenario) -> bool;

    /// Is `u` a prefix of some member? (`u ∈ Pref(L)`, Definition II.4.)
    ///
    /// Executors use this to validate adversary scripts; the bounded model
    /// checker enumerates `Pref(L) ∩ Γ^k` through it.
    fn allows_prefix(&self, u: &Word) -> bool;

    /// A human-readable name for reports.
    fn name(&self) -> String;
}

/// Every concrete fault environment named in the paper.
///
/// The seven environments of Section II-A2 (restated as Example II.11) plus
/// the fair scheme (Example II.8) and the almost-fair scheme of
/// Corollary IV.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassicScheme {
    /// `S0 = {Full^ω}` — no messenger is ever captured (env. 1).
    S0,
    /// `T_role = {Full, Drop(role)}^ω` — only `role`'s messengers are at
    /// risk (envs. 2 and 3).
    T(Role),
    /// `C1` — at most one process *crashes*: at some round one process's
    /// messages stop forever; before that, nothing is lost (env. 4,
    /// Example II.10 restricted to Γ as in Example II.11 line 4).
    C1,
    /// `S1 = T_White ∪ T_Black` — at most one of the processes ever loses
    /// messages (env. 5, Example II.9).
    S1,
    /// `R1 = Γ^ω` — at most one message lost per round (env. 6,
    /// Example II.6). The well-studied near-minimal obstruction.
    R1,
    /// `S2 = Σ^ω` — anything goes (env. 7, Example II.5). The folklore
    /// impossibility.
    S2,
    /// `F = Fair(Γ^ω)` — every `Γ`-scenario that is fair (Example II.8
    /// intersected with Γ^ω).
    FairGamma,
    /// `F_almost = Γ^ω \ {drop(role)^ω}` — everything but one constant
    /// unfair scenario (Corollary IV.1 uses `role = Black`).
    AlmostFair(Role),
    /// `Γ^ω` minus a finite set of scenarios — the shape used for the
    /// descending chain of obstructions in Section IV-C.
    GammaMinus(Vec<Scenario>),
    /// All `Γ`-scenarios avoiding a fixed forbidden prefix `w0` — the shape
    /// of Corollary III.14 (`Pref(L) ⊊ Γ*`, every other prefix allowed).
    AvoidPrefix(Word),
    /// At most `k` messages lost in the whole execution (the classic
    /// *total* omission budget, counted over `Γ`: at most `k` non-`Full`
    /// letters). Not one of the paper's seven environments, but the fault
    /// model behind the textbook `f + 1`-round bound — expressed here as
    /// an omission scheme and analyzed with the same tools.
    TotalBudget(usize),
    /// All of `Σ^ω` avoiding a fixed forbidden prefix — the double-omission
    /// analogue of [`ClassicScheme::AvoidPrefix`]. Theorem III.8 does not
    /// cover schemes with double omission (the paper's Section VI leaves
    /// their characterization open); the bounded model checker still
    /// decides their finite-horizon solvability exactly, which is what the
    /// `exp_sigma` experiment explores.
    SigmaAvoidPrefix(Word),
    /// At most `k` *rounds with any loss* over the whole execution,
    /// double omissions allowed — a Σ-side total budget.
    SigmaTotalBudget(usize),
}

impl ClassicScheme {
    /// `true` when the scheme is a subset of `Γ^ω` (no double omission) —
    /// the hypothesis of Theorem III.8.
    pub fn is_gamma_subset(&self) -> bool {
        !matches!(
            self,
            ClassicScheme::S2
                | ClassicScheme::SigmaAvoidPrefix(_)
                | ClassicScheme::SigmaTotalBudget(_)
        )
    }
}

/// A scheme within `Γ^ω`, queryable for the Theorem III.8 conditions.
///
/// The theorem's four conditions existentially quantify over *all* fair
/// scenarios and *all* special pairs; implementations answer with concrete
/// witnesses (always ultimately periodic — see DESIGN.md).
pub trait GammaScheme: OmissionScheme {
    /// A fair scenario `f ∈ Fair(Γ^ω)` with `f ∉ L`, if one exists
    /// (condition III.8.i).
    fn missing_fair_scenario(&self) -> Option<Scenario>;

    /// A special pair `(u, u')` with `u ∉ L` and `u' ∉ L`, if one exists
    /// (condition III.8.ii).
    fn missing_special_pair(&self) -> Option<(Scenario, Scenario)>;

    /// Is the constant scenario `drop(role)^ω` a member?
    /// (Conditions III.8.iii / III.8.iv.)
    fn contains_constant_drop(&self, role: Role) -> bool {
        self.contains(&Scenario::constant_gamma(GammaLetter::dropping(role)))
    }
}

impl fmt::Display for ClassicScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl OmissionScheme for ClassicScheme {
    fn contains(&self, w: &Scenario) -> bool {
        match self {
            ClassicScheme::S0 => *w == Scenario::constant(Letter::Full),
            ClassicScheme::T(role) => scenario_only_drops(w, *role),
            ClassicScheme::C1 => is_crash_scenario(w),
            ClassicScheme::S1 => {
                scenario_only_drops(w, Role::White) || scenario_only_drops(w, Role::Black)
            }
            ClassicScheme::R1 => w.is_gamma(),
            ClassicScheme::S2 => true,
            ClassicScheme::FairGamma => w.is_gamma() && w.is_fair(),
            ClassicScheme::AlmostFair(role) => {
                w.is_gamma() && *w != Scenario::constant_gamma(GammaLetter::dropping(*role))
            }
            ClassicScheme::GammaMinus(excluded) => {
                w.is_gamma() && !excluded.contains(w)
            }
            ClassicScheme::AvoidPrefix(w0) => w.is_gamma() && !w.has_prefix(w0),
            ClassicScheme::TotalBudget(k) => {
                // Ultimately periodic: finitely many losses iff the cycle
                // is loss-free; then count the transient's losses.
                w.is_gamma() && {
                    let c = w.canonicalize();
                    c.lasso_cycle().iter().all(|a| a == Letter::Full)
                        && c.lasso_prefix().iter().filter(|&a| a != Letter::Full).count() <= *k
                }
            }
            ClassicScheme::SigmaAvoidPrefix(w0) => !w.has_prefix(w0),
            ClassicScheme::SigmaTotalBudget(k) => {
                let c = w.canonicalize();
                c.lasso_cycle().iter().all(|a| a == Letter::Full)
                    && c.lasso_prefix().iter().filter(|&a| a != Letter::Full).count() <= *k
            }
        }
    }

    fn allows_prefix(&self, u: &Word) -> bool {
        match self {
            ClassicScheme::S0 => u.iter().all(|a| a == Letter::Full),
            ClassicScheme::T(role) => {
                u.iter().all(|a| a == Letter::Full || a == GammaLetter::dropping(*role).to_letter())
            }
            ClassicScheme::C1 => {
                // Prefix of a crash scenario: Full^a · drop(x)^b for one x.
                is_crash_prefix(u)
            }
            ClassicScheme::S1 => {
                u.iter().all(|a| a == Letter::Full || a == Letter::DropWhite)
                    || u.iter().all(|a| a == Letter::Full || a == Letter::DropBlack)
            }
            ClassicScheme::R1 | ClassicScheme::FairGamma => u.is_gamma(),
            ClassicScheme::S2 => true,
            ClassicScheme::AlmostFair(_) => {
                // Every Γ-prefix extends to a fair scenario, which is never
                // the excluded constant.
                u.is_gamma()
            }
            ClassicScheme::GammaMinus(_) => {
                // Excluding finitely many scenarios removes no prefixes:
                // every Γ-prefix has uncountably many extensions.
                u.is_gamma()
            }
            ClassicScheme::AvoidPrefix(w0) => {
                u.is_gamma() && !w0.is_prefix_of(u)
            }
            ClassicScheme::TotalBudget(k) => {
                u.is_gamma() && u.iter().filter(|&a| a != Letter::Full).count() <= *k
            }
            ClassicScheme::SigmaAvoidPrefix(w0) => !w0.is_prefix_of(u),
            ClassicScheme::SigmaTotalBudget(k) => {
                u.iter().filter(|&a| a != Letter::Full).count() <= *k
            }
        }
    }

    fn name(&self) -> String {
        match self {
            ClassicScheme::S0 => "S0 (no loss)".into(),
            ClassicScheme::T(Role::White) => "T_White (only White at risk)".into(),
            ClassicScheme::T(Role::Black) => "T_Black (only Black at risk)".into(),
            ClassicScheme::C1 => "C1 (one crash)".into(),
            ClassicScheme::S1 => "S1 (one faulty process)".into(),
            ClassicScheme::R1 => "R1 = Γω (one loss per round)".into(),
            ClassicScheme::S2 => "S2 = Σω (anything goes)".into(),
            ClassicScheme::FairGamma => "Fair(Γω)".into(),
            ClassicScheme::AlmostFair(r) => format!("Γω \\ {{drop({r})^ω}}"),
            ClassicScheme::GammaMinus(ex) => {
                let list: Vec<String> = ex.iter().map(|s| s.to_string()).collect();
                format!("Γω \\ {{{}}}", list.join(", "))
            }
            ClassicScheme::AvoidPrefix(w0) => format!("Γω avoiding prefix {w0}"),
            ClassicScheme::TotalBudget(k) => format!("B{k} (at most {k} total losses)"),
            ClassicScheme::SigmaAvoidPrefix(w0) => format!("Σω avoiding prefix {w0}"),
            ClassicScheme::SigmaTotalBudget(k) => {
                format!("ΣB{k} (at most {k} lossy rounds, double omission allowed)")
            }
        }
    }
}

/// Does `w` drop messages only from `role` (i.e. `w ∈ {Full, drop(role)}^ω`)?
fn scenario_only_drops(w: &Scenario, role: Role) -> bool {
    let ok = |a: Letter| a == Letter::Full || a == GammaLetter::dropping(role).to_letter();
    w.lasso_prefix().iter().all(ok) && w.lasso_cycle().iter().all(ok)
}

/// Is `w` a crash scenario: `Full^a · drop(x)^ω` for some process `x`, or
/// all-Full (Example II.10 ∩ Γ^ω as written in Example II.11 line 4)?
fn is_crash_scenario(w: &Scenario) -> bool {
    let c = w.canonicalize();
    if *w == Scenario::constant(Letter::Full) {
        return true;
    }
    // Cycle must be a single constant drop letter; prefix all Full.
    let cycle_ok = c.lasso_cycle().len() == 1
        && matches!(
            c.lasso_cycle().get(0),
            Some(Letter::DropWhite) | Some(Letter::DropBlack)
        );
    cycle_ok && c.lasso_prefix().iter().all(|a| a == Letter::Full)
}

/// Is `u` a prefix of a crash scenario: `Full^a` or `Full^a·drop(x)^b`?
fn is_crash_prefix(u: &Word) -> bool {
    let mut i = 0;
    while i < u.len() && u.get(i) == Some(Letter::Full) {
        i += 1;
    }
    if i == u.len() {
        return true;
    }
    let drop = u.get(i).unwrap();
    if drop != Letter::DropWhite && drop != Letter::DropBlack {
        return false;
    }
    (i..u.len()).all(|j| u.get(j) == Some(drop))
}

/// Constructors mirroring the paper's numbered environments.
pub mod classic {
    use super::*;

    /// Environment 1: `S0 = {Full^ω}`.
    pub fn s0() -> ClassicScheme {
        ClassicScheme::S0
    }

    /// Environment 2: messengers from White may be captured.
    pub fn t_white() -> ClassicScheme {
        ClassicScheme::T(Role::White)
    }

    /// Environment 3: messengers from Black may be captured.
    pub fn t_black() -> ClassicScheme {
        ClassicScheme::T(Role::Black)
    }

    /// Environment 4: `C1`, the crash-prone model.
    pub fn c1() -> ClassicScheme {
        ClassicScheme::C1
    }

    /// Environment 5: `S1`, at most one faulty process.
    pub fn s1() -> ClassicScheme {
        ClassicScheme::S1
    }

    /// Environment 6: `R1 = Γ^ω`, at most one loss per round.
    pub fn r1() -> ClassicScheme {
        ClassicScheme::R1
    }

    /// Environment 7: `S2 = Σ^ω`, any messenger may be captured.
    pub fn s2() -> ClassicScheme {
        ClassicScheme::S2
    }

    /// Example II.8 within Γ: all fair scenarios.
    pub fn fair_gamma() -> ClassicScheme {
        ClassicScheme::FairGamma
    }

    /// Corollary IV.1: `Γ^ω \ {DropBlack^ω}`.
    pub fn almost_fair() -> ClassicScheme {
        ClassicScheme::AlmostFair(Role::Black)
    }

    /// The classic total-omission budget: at most `k` messages lost over
    /// the whole execution.
    pub fn total_budget(k: usize) -> ClassicScheme {
        ClassicScheme::TotalBudget(k)
    }

    /// The seven environments of Section II-A2 in order.
    pub fn seven_environments() -> Vec<ClassicScheme> {
        vec![s0(), t_white(), t_black(), c1(), s1(), r1(), s2()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    #[test]
    fn s0_contains_only_all_full() {
        let s0 = classic::s0();
        assert!(s0.contains(&sc("(-)")));
        assert!(s0.contains(&sc("--(--)")));
        assert!(!s0.contains(&sc("w(-)")));
        assert!(s0.allows_prefix(&"---".parse().unwrap()));
        assert!(!s0.allows_prefix(&"-w".parse().unwrap()));
    }

    #[test]
    fn t_white_membership() {
        let t = classic::t_white();
        assert!(t.contains(&sc("(-)")));
        assert!(t.contains(&sc("(w)")));
        assert!(t.contains(&sc("w-w(-w)")));
        assert!(!t.contains(&sc("(b)")));
        assert!(!t.contains(&sc("w(b-)")));
        assert!(!t.contains(&sc("(x)")));
    }

    #[test]
    fn c1_membership() {
        let c1 = classic::c1();
        assert!(c1.contains(&sc("(-)")), "no crash at all");
        assert!(c1.contains(&sc("(w)")), "White crashes at round 0");
        assert!(c1.contains(&sc("---(b)")), "Black crashes at round 3");
        assert!(!c1.contains(&sc("w-(w)")), "recovered then re-lost is not a crash");
        assert!(!c1.contains(&sc("(wb)")), "alternating loss is not a crash");
        assert!(!c1.contains(&sc("-(-w)")), "intermittent is not a crash");
    }

    #[test]
    fn c1_prefixes() {
        let c1 = classic::c1();
        for good in ["ε", "---", "ww", "--bbb", "w"] {
            assert!(c1.allows_prefix(&good.parse().unwrap()), "{good}");
        }
        for bad in ["w-", "wb", "-b-", "bw"] {
            assert!(!c1.allows_prefix(&bad.parse().unwrap()), "{bad}");
        }
    }

    #[test]
    fn s1_is_union_of_both_t() {
        let s1 = classic::s1();
        assert!(s1.contains(&sc("(w)")));
        assert!(s1.contains(&sc("(b)")));
        assert!(s1.contains(&sc("(-)")));
        assert!(!s1.contains(&sc("(wb)")), "both processes lose");
        assert!(s1.allows_prefix(&"ww--w".parse().unwrap()));
        assert!(!s1.allows_prefix(&"wb".parse().unwrap()));
    }

    #[test]
    fn r1_is_all_gamma() {
        let r1 = classic::r1();
        assert!(r1.contains(&sc("(wb)")));
        assert!(r1.contains(&sc("(-)")));
        assert!(!r1.contains(&sc("(x)")));
        assert!(r1.allows_prefix(&"wbwb".parse().unwrap()));
        assert!(!r1.allows_prefix(&"x".parse().unwrap()));
    }

    #[test]
    fn s2_contains_everything() {
        let s2 = classic::s2();
        assert!(s2.contains(&sc("(x)")));
        assert!(s2.contains(&sc("(-)")));
        assert!(s2.allows_prefix(&"xxxx".parse().unwrap()));
    }

    #[test]
    fn fair_gamma_membership() {
        let f = classic::fair_gamma();
        assert!(f.contains(&sc("(-)")));
        assert!(f.contains(&sc("(wb)")));
        assert!(!f.contains(&sc("(w)")));
        assert!(!f.contains(&sc("--(b)")));
        // Every Γ-prefix is viable: extend with Full^ω.
        assert!(f.allows_prefix(&"wwww".parse().unwrap()));
    }

    #[test]
    fn almost_fair_excludes_exactly_one() {
        let af = classic::almost_fair();
        assert!(!af.contains(&sc("(b)")));
        assert!(!af.contains(&sc("b(bb)")), "same scenario, other lasso");
        assert!(af.contains(&sc("(w)")));
        assert!(af.contains(&sc("-(b)")), "crash after one clean round is kept");
        assert!(af.contains(&sc("(-)")));
    }

    #[test]
    fn gamma_minus_excludes_list() {
        let l = ClassicScheme::GammaMinus(vec![sc("(w)"), sc("(b)")]);
        assert!(!l.contains(&sc("(w)")));
        assert!(!l.contains(&sc("w(w)")), "semantic equality applies");
        assert!(l.contains(&sc("-(w)")));
        assert!(l.contains(&sc("(-)")));
        assert!(l.allows_prefix(&"wwww".parse().unwrap()));
    }

    #[test]
    fn avoid_prefix_scheme() {
        let w0: Word = "wb".parse().unwrap();
        let l = ClassicScheme::AvoidPrefix(w0);
        assert!(!l.contains(&sc("wb(-)")));
        assert!(l.contains(&sc("w-(b)")));
        assert!(l.contains(&sc("(-)")));
        assert!(!l.allows_prefix(&"wbw".parse().unwrap()));
        assert!(l.allows_prefix(&"w-".parse().unwrap()));
        assert!(l.allows_prefix(&"w".parse().unwrap()), "shorter than w0 is fine");
    }

    #[test]
    fn total_budget_membership() {
        let b2 = classic::total_budget(2);
        assert!(b2.contains(&sc("(-)")), "zero losses");
        assert!(b2.contains(&sc("w(-)")));
        assert!(b2.contains(&sc("wb(-)")));
        assert!(b2.contains(&sc("-w-b-(-)")), "two losses spread out");
        assert!(!b2.contains(&sc("wbw(-)")), "three losses");
        assert!(!b2.contains(&sc("(w)")), "infinitely many losses");
        assert!(!b2.contains(&sc("(x)")), "outside Γ");
        // Budget 0 is exactly S0.
        let b0 = classic::total_budget(0);
        assert!(b0.contains(&sc("(-)")));
        assert!(!b0.contains(&sc("w(-)")));
    }

    #[test]
    fn total_budget_prefixes() {
        let b1 = classic::total_budget(1);
        assert!(b1.allows_prefix(&"---".parse().unwrap()));
        assert!(b1.allows_prefix(&"-w-".parse().unwrap()));
        assert!(!b1.allows_prefix(&"wb".parse().unwrap()));
        assert!(!b1.allows_prefix(&"x".parse().unwrap()));
    }

    #[test]
    fn sigma_avoid_prefix_membership() {
        let l = ClassicScheme::SigmaAvoidPrefix("x".parse().unwrap());
        assert!(!l.contains(&sc("x(-)")));
        assert!(l.contains(&sc("(x)").suffix(0).prepend(&"-".parse().unwrap())), "-x… allowed");
        assert!(l.contains(&sc("(-)")));
        assert!(l.contains(&sc("w(x)")), "double omission later is fine");
        assert!(!l.allows_prefix(&"xw".parse().unwrap()));
        assert!(l.allows_prefix(&"wx".parse().unwrap()));
        assert!(!l.is_gamma_subset());
    }

    #[test]
    fn sigma_total_budget_membership() {
        let l = ClassicScheme::SigmaTotalBudget(1);
        assert!(l.contains(&sc("(-)")));
        assert!(l.contains(&sc("x(-)")), "one double-omission round");
        assert!(l.contains(&sc("w(-)")));
        assert!(!l.contains(&sc("xw(-)")), "two lossy rounds");
        assert!(!l.contains(&sc("(x)")));
        assert!(l.allows_prefix(&"-x-".parse().unwrap()));
        assert!(!l.allows_prefix(&"xx".parse().unwrap()));
        assert!(!l.is_gamma_subset());
    }

    #[test]
    fn seven_environments_are_the_papers_list() {
        let envs = classic::seven_environments();
        assert_eq!(envs.len(), 7);
        assert_eq!(envs[0], ClassicScheme::S0);
        assert_eq!(envs[6], ClassicScheme::S2);
    }

    #[test]
    fn gamma_subset_flags() {
        assert!(classic::r1().is_gamma_subset());
        assert!(!classic::s2().is_gamma_subset());
    }

    #[test]
    fn membership_implies_prefix_allowed() {
        // Soundness link between the two queries, spot-checked.
        let schemes = classic::seven_environments();
        let scenarios = ["(-)", "(w)", "(b)", "--(w)", "(wb)", "w(b)"];
        for l in &schemes {
            for s in scenarios {
                let w = sc(s);
                if l.contains(&w) {
                    for r in 0..6 {
                        assert!(
                            l.allows_prefix(&w.prefix_word(r)),
                            "{} should allow prefixes of {}",
                            l.name(),
                            w
                        );
                    }
                }
            }
        }
    }
}
