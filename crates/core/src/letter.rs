//! The omission alphabets `Σ` and `Γ` (Definition II.1).
//!
//! A letter describes what the environment does to the two messages of one
//! synchronous round. The paper draws letters as directed graphs on
//! `Π = {◻, ◼}`; we name them by effect:
//!
//! | paper glyph | here | meaning |
//! |---|---|---|
//! | `⇄` | [`Letter::Full`] | no message is lost |
//! | `→` dropped from ◻ | [`Letter::DropWhite`] | White's message is not transmitted |
//! | `←` dropped from ◼ | [`Letter::DropBlack`] | Black's message is not transmitted |
//! | no edges | [`Letter::DropBoth`] | both messages are lost (double omission) |
//!
//! `Γ = Σ \ {DropBoth}` is the sub-alphabet *without double omission*; all
//! of Section III works inside `Γ`.
//!
//! The textual encoding used throughout (parsing, `Display`, test vectors):
//! `-` = `Full`, `w` = `DropWhite`, `b` = `DropBlack`, `x` = `DropBoth`.

use std::fmt;

/// One of the two processes of the Coordinated Attack Problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// General White, `◻` in the paper.
    White,
    /// General Black, `◼` in the paper.
    Black,
}

impl Role {
    /// The other process.
    pub fn other(self) -> Role {
        match self {
            Role::White => Role::Black,
            Role::Black => Role::White,
        }
    }

    /// Both roles, in canonical order.
    pub const BOTH: [Role; 2] = [Role::White, Role::Black];
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::White => f.write_str("White"),
            Role::Black => f.write_str("Black"),
        }
    }
}

/// A letter of the full alphabet `Σ`: the fault pattern of one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Letter {
    /// Both messages are delivered.
    Full,
    /// White's message is lost: Black's `receive` returns `null`.
    DropWhite,
    /// Black's message is lost: White's `receive` returns `null`.
    DropBlack,
    /// Both messages are lost (the double omission, `Σ \ Γ`).
    DropBoth,
}

/// A letter of the restricted alphabet `Γ = {Full, DropWhite, DropBlack}`.
///
/// Section III of the paper characterizes obstructions among schemes over
/// `Γ^ω`, i.e. schemes in which the double simultaneous omission never
/// happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GammaLetter {
    /// Both messages are delivered.
    Full,
    /// White's message is lost.
    DropWhite,
    /// Black's message is lost.
    DropBlack,
}

impl Letter {
    /// All four letters of `Σ`, in canonical order.
    pub const ALL: [Letter; 4] = [
        Letter::Full,
        Letter::DropWhite,
        Letter::DropBlack,
        Letter::DropBoth,
    ];

    /// Does the message sent *by* `sender` get through this round?
    pub fn delivers_from(self, sender: Role) -> bool {
        match (self, sender) {
            (Letter::Full, _) => true,
            (Letter::DropWhite, Role::White) => false,
            (Letter::DropWhite, Role::Black) => true,
            (Letter::DropBlack, Role::White) => true,
            (Letter::DropBlack, Role::Black) => false,
            (Letter::DropBoth, _) => false,
        }
    }

    /// Does `receiver` get the opposite process's message this round?
    pub fn delivers_to(self, receiver: Role) -> bool {
        self.delivers_from(receiver.other())
    }

    /// Is this letter's fault pattern a loss of `role`'s message?
    pub fn drops_from(self, role: Role) -> bool {
        !self.delivers_from(role)
    }

    /// `true` for letters of `Γ` (at most one message lost).
    pub fn is_gamma(self) -> bool {
        self != Letter::DropBoth
    }

    /// Downcast to `Γ`, or `None` for the double omission.
    pub fn to_gamma(self) -> Option<GammaLetter> {
        match self {
            Letter::Full => Some(GammaLetter::Full),
            Letter::DropWhite => Some(GammaLetter::DropWhite),
            Letter::DropBlack => Some(GammaLetter::DropBlack),
            Letter::DropBoth => None,
        }
    }

    /// The canonical one-character encoding (`-`, `w`, `b`, `x`).
    pub fn to_char(self) -> char {
        match self {
            Letter::Full => '-',
            Letter::DropWhite => 'w',
            Letter::DropBlack => 'b',
            Letter::DropBoth => 'x',
        }
    }

    /// Parse the one-character encoding. `.` is accepted as an alias of `-`.
    pub fn from_char(c: char) -> Option<Letter> {
        match c {
            '-' | '.' => Some(Letter::Full),
            'w' => Some(Letter::DropWhite),
            'b' => Some(Letter::DropBlack),
            'x' => Some(Letter::DropBoth),
            _ => None,
        }
    }
}

impl GammaLetter {
    /// All three letters of `Γ`, in canonical order.
    pub const ALL: [GammaLetter; 3] = [
        GammaLetter::Full,
        GammaLetter::DropWhite,
        GammaLetter::DropBlack,
    ];

    /// The `δ` weight of Definition III.1.
    ///
    /// `δ(DropWhite) = -1`, `δ(Full) = 0`, `δ(DropBlack) = +1`, so that
    /// `ind(DropWhite^r) = 0` and `ind(DropBlack^r) = 3^r - 1`
    /// (Proposition III.3 with White in the role of `◁`).
    pub fn delta(self) -> i8 {
        match self {
            GammaLetter::DropWhite => -1,
            GammaLetter::Full => 0,
            GammaLetter::DropBlack => 1,
        }
    }

    /// Upcast into the full alphabet `Σ`.
    pub fn to_letter(self) -> Letter {
        match self {
            GammaLetter::Full => Letter::Full,
            GammaLetter::DropWhite => Letter::DropWhite,
            GammaLetter::DropBlack => Letter::DropBlack,
        }
    }

    /// Does the message sent *by* `sender` get through this round?
    pub fn delivers_from(self, sender: Role) -> bool {
        self.to_letter().delivers_from(sender)
    }

    /// Does `receiver` get the opposite process's message this round?
    pub fn delivers_to(self, receiver: Role) -> bool {
        self.to_letter().delivers_to(receiver)
    }

    /// The canonical one-character encoding (`-`, `w`, `b`).
    pub fn to_char(self) -> char {
        self.to_letter().to_char()
    }

    /// Parse the one-character encoding; rejects `x`.
    pub fn from_char(c: char) -> Option<GammaLetter> {
        Letter::from_char(c).and_then(Letter::to_gamma)
    }

    /// The letter that drops `role`'s message.
    pub fn dropping(role: Role) -> GammaLetter {
        match role {
            Role::White => GammaLetter::DropWhite,
            Role::Black => GammaLetter::DropBlack,
        }
    }
}

impl From<GammaLetter> for Letter {
    fn from(g: GammaLetter) -> Letter {
        g.to_letter()
    }
}

impl TryFrom<Letter> for GammaLetter {
    type Error = ();
    fn try_from(l: Letter) -> Result<GammaLetter, ()> {
        l.to_gamma().ok_or(())
    }
}

impl fmt::Display for Letter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl fmt::Display for GammaLetter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_other_is_an_involution() {
        for r in Role::BOTH {
            assert_eq!(r.other().other(), r);
            assert_ne!(r.other(), r);
        }
    }

    #[test]
    fn full_delivers_everything() {
        for r in Role::BOTH {
            assert!(Letter::Full.delivers_from(r));
            assert!(Letter::Full.delivers_to(r));
        }
    }

    #[test]
    fn drop_both_delivers_nothing() {
        for r in Role::BOTH {
            assert!(!Letter::DropBoth.delivers_from(r));
            assert!(!Letter::DropBoth.delivers_to(r));
        }
    }

    #[test]
    fn drop_white_semantics() {
        // White's message is lost: Black receives null, White still hears Black.
        assert!(!Letter::DropWhite.delivers_from(Role::White));
        assert!(Letter::DropWhite.delivers_from(Role::Black));
        assert!(!Letter::DropWhite.delivers_to(Role::Black));
        assert!(Letter::DropWhite.delivers_to(Role::White));
    }

    #[test]
    fn drop_black_semantics() {
        assert!(!Letter::DropBlack.delivers_from(Role::Black));
        assert!(Letter::DropBlack.delivers_from(Role::White));
        assert!(!Letter::DropBlack.delivers_to(Role::White));
        assert!(Letter::DropBlack.delivers_to(Role::Black));
    }

    #[test]
    fn gamma_excludes_exactly_the_double_omission() {
        let gammas: Vec<_> = Letter::ALL.iter().filter(|l| l.is_gamma()).collect();
        assert_eq!(gammas.len(), 3);
        assert!(Letter::DropBoth.to_gamma().is_none());
        for g in GammaLetter::ALL {
            assert_eq!(g.to_letter().to_gamma(), Some(g));
        }
    }

    #[test]
    fn delta_weights_match_definition() {
        assert_eq!(GammaLetter::DropWhite.delta(), -1);
        assert_eq!(GammaLetter::Full.delta(), 0);
        assert_eq!(GammaLetter::DropBlack.delta(), 1);
    }

    #[test]
    fn char_roundtrip_sigma() {
        for l in Letter::ALL {
            assert_eq!(Letter::from_char(l.to_char()), Some(l));
        }
        assert_eq!(Letter::from_char('.'), Some(Letter::Full));
        assert_eq!(Letter::from_char('?'), None);
    }

    #[test]
    fn char_roundtrip_gamma() {
        for g in GammaLetter::ALL {
            assert_eq!(GammaLetter::from_char(g.to_char()), Some(g));
        }
        assert_eq!(GammaLetter::from_char('x'), None);
    }

    #[test]
    fn dropping_constructor() {
        assert_eq!(GammaLetter::dropping(Role::White), GammaLetter::DropWhite);
        assert_eq!(GammaLetter::dropping(Role::Black), GammaLetter::DropBlack);
        for r in Role::BOTH {
            assert!(!GammaLetter::dropping(r).delivers_from(r));
            assert!(GammaLetter::dropping(r).delivers_from(r.other()));
        }
    }

    #[test]
    fn gamma_delivery_agrees_with_sigma() {
        for g in GammaLetter::ALL {
            for r in Role::BOTH {
                assert_eq!(g.delivers_from(r), g.to_letter().delivers_from(r));
                assert_eq!(g.delivers_to(r), g.to_letter().delivers_to(r));
            }
        }
    }
}
