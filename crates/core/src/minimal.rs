//! Minimal obstructions (Section IV-C).
//!
//! Theorem III.8 makes the lattice of obstructions inside `Γ^ω` explicit:
//! an obstruction must contain all fair scenarios, both constants, and at
//! least one member of every special pair. Three structural consequences,
//! all reproduced executably here:
//!
//! 1. **The SPair graph is a perfect matching.** Every unfair non-constant
//!    scenario has *exactly one* special partner (the parity of its settled
//!    index dictates whether the partner sits above or below), and the two
//!    constants have none. [`build_spair_graph`] materializes the matching
//!    over a bounded universe and checks it.
//! 2. **An infinite strictly descending chain of obstructions exists**
//!    ([`descending_chain`]): `L_n = Γ^ω \ {u_0, …, u_n}` for pairwise
//!    non-partnered unfair `u_i` — so there is no *least* obstruction.
//! 3. **Minimal obstructions nonetheless exist**: for any vertex cover `U`
//!    of the SPair matching that is also independent (i.e. picks exactly
//!    one endpoint of every edge), `Γ^ω \ U` is a minimal obstruction. The
//!    canonical choice — take every *lower* endpoint — is decidable
//!    scenario-by-scenario and is packaged as
//!    [`CanonicalMinimalObstruction`], a first-class scheme.
//!
//! The paper's closing remark — `Γ^ω` is "the nearest obstruction we have
//! to a simple minimal obstruction" — is quantified by
//! [`distance_to_minimality`].

use crate::index::{ind, ind_parity_is_even};
use crate::letter::{GammaLetter, Role};
use crate::scenario::{enumerate_gamma_lassos, Scenario};
use crate::scheme::{GammaScheme, OmissionScheme};
use crate::spair::is_special_pair;
use crate::word::Word;

/// The SPair graph over a finite universe of unfair scenarios.
#[derive(Debug, Clone)]
pub struct SPairGraph {
    /// The unfair scenarios (canonical lassos), the graph's vertices.
    pub nodes: Vec<Scenario>,
    /// Edges as index pairs `(i, j)` with `i < j`.
    pub edges: Vec<(usize, usize)>,
}

impl SPairGraph {
    /// Degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.edges.iter().filter(|(a, b)| *a == i || *b == i).count()
    }

    /// `true` iff no vertex has degree > 1 — the matching property.
    pub fn is_matching(&self) -> bool {
        (0..self.nodes.len()).all(|i| self.degree(i) <= 1)
    }

    /// `true` iff `cover` (vertex indexes) touches every edge.
    pub fn is_vertex_cover(&self, cover: &[usize]) -> bool {
        self.edges
            .iter()
            .all(|(a, b)| cover.contains(a) || cover.contains(b))
    }

    /// `true` iff no edge has both endpoints in `set`.
    pub fn is_independent(&self, set: &[usize]) -> bool {
        !self
            .edges
            .iter()
            .any(|(a, b)| set.contains(a) && set.contains(b))
    }

    /// The exact covers: sets picking exactly one endpoint per edge. For a
    /// matching there are `2^{|edges|}`; this returns the canonical one
    /// (all lower-index endpoints) plus its mirror.
    pub fn canonical_exact_covers(&self) -> (Vec<usize>, Vec<usize>) {
        let lowers = self
            .edges
            .iter()
            .map(|&(a, b)| if self.node_is_lower(a, b) { a } else { b })
            .collect();
        let uppers = self
            .edges
            .iter()
            .map(|&(a, b)| if self.node_is_lower(a, b) { b } else { a })
            .collect();
        (lowers, uppers)
    }

    /// Of the edge `(a, b)`, is `a` the index-wise lower scenario?
    fn node_is_lower(&self, a: usize, b: usize) -> bool {
        let sa = &self.nodes[a];
        let sb = &self.nodes[b];
        let r = sa.repr_len().max(sb.repr_len()) + 2;
        let ia = ind(&sa.prefix_word(r).to_gamma().expect("Γ universe"));
        let ib = ind(&sb.prefix_word(r).to_gamma().expect("Γ universe"));
        ia < ib
    }
}

/// All canonical unfair `Γ`-lassos with transient part of length
/// ≤ `max_prefix` (the cycle of an unfair lasso canonicalizes to a single
/// drop letter).
pub fn unfair_universe(max_prefix: usize) -> Vec<Scenario> {
    enumerate_gamma_lassos(max_prefix, 1)
        .into_iter()
        .filter(|s| s.is_unfair())
        .collect()
}

/// Builds the SPair graph over [`unfair_universe`]`(max_prefix)`.
///
/// Note: partners of scenarios near the boundary may have longer transients
/// than `max_prefix` and thus fall outside the universe; such vertices show
/// up isolated even though they are matched in the full infinite graph.
pub fn build_spair_graph(max_prefix: usize) -> SPairGraph {
    let nodes = unfair_universe(max_prefix);
    let mut edges = Vec::new();
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            if is_special_pair(&nodes[i], &nodes[j]) {
                edges.push((i, j));
            }
        }
    }
    SPairGraph { nodes, edges }
}

/// Is the unfair non-constant scenario the *lower* member of its unique
/// special pair?
///
/// The settled index parity decides: with tail `DropBlack` the lower member
/// has even parity; with tail `DropWhite`, odd parity. (Derived from the
/// adjacency-maintenance condition `(-1)^{ind} · δ(tail) = +1` for the
/// lower word; see `crate::spair`.)
pub fn is_lower_pair_member(w: &Scenario) -> Option<bool> {
    if !w.is_gamma() || !w.is_unfair() {
        return None;
    }
    if *w == Scenario::constant_gamma(GammaLetter::DropWhite)
        || *w == Scenario::constant_gamma(GammaLetter::DropBlack)
    {
        return None; // constants are unmatched
    }
    let c = w.canonicalize();
    let settled_prefix = c
        .lasso_prefix()
        .to_gamma()
        .expect("Γ scenario");
    let even = ind_parity_is_even(&settled_prefix);
    let tail_drops_black = c.eventually_always_drops(Role::Black);
    // Tail letters have δ ≠ 0, so parity is settled at the transient's end.
    Some(if tail_drops_black { even } else { !even })
}

/// The canonical minimal obstruction: `Γ^ω \ U` where `U` is the set of
/// all *lower* members of special pairs.
///
/// * It is an obstruction: all fair scenarios and both constants are
///   present, and every special pair keeps its upper member.
/// * It is inclusion-minimal: removing any further scenario `x` makes it
///   solvable — a fair `x` or a constant `x` fires conditions i/iii/iv,
///   and an unfair non-constant `x` is an upper member whose lower partner
///   is already missing, firing condition ii.
#[derive(Debug, Clone, Default)]
pub struct CanonicalMinimalObstruction;

impl OmissionScheme for CanonicalMinimalObstruction {
    fn contains(&self, w: &Scenario) -> bool {
        w.is_gamma() && is_lower_pair_member(w) != Some(true)
    }

    fn allows_prefix(&self, u: &Word) -> bool {
        // Every Γ-prefix extends to a fair scenario, which is never removed.
        u.is_gamma()
    }

    fn name(&self) -> String {
        "Γω minus all lower pair members (canonical minimal obstruction)".into()
    }
}

impl GammaScheme for CanonicalMinimalObstruction {
    fn missing_fair_scenario(&self) -> Option<Scenario> {
        None
    }

    fn missing_special_pair(&self) -> Option<(Scenario, Scenario)> {
        None // every pair keeps its upper member
    }
}

/// The descending chain of obstructions `L_0 ⊋ L_1 ⊋ …` of Section IV-C:
/// `L_n = Γ^ω \ {u_0, …, u_n}` where `u_i = Full^{i+1}·DropBlack^ω` are
/// pairwise non-partnered unfair scenarios whose partners all stay inside.
///
/// Every returned scheme is an obstruction, so no obstruction in the chain
/// is minimal — there is no *least* obstruction.
pub fn descending_chain(n: usize) -> Vec<crate::scheme::ClassicScheme> {
    let mut excluded: Vec<Scenario> = Vec::new();
    let mut out = Vec::new();
    for i in 0..=n {
        let prefix = Word(vec![crate::letter::Letter::Full; i + 1]);
        let u = Scenario::new(prefix, "b".parse().unwrap());
        excluded.push(u);
        out.push(crate::scheme::ClassicScheme::GammaMinus(excluded.clone()));
    }
    out
}

/// How far `Γ^ω` is from the canonical minimal obstruction, restricted to
/// the bounded universe: the number of lower pair members with transient
/// length ≤ `max_prefix` — the scenarios one must remove from `Γ^ω` to
/// reach minimality.
pub fn distance_to_minimality(max_prefix: usize) -> usize {
    unfair_universe(max_prefix)
        .iter()
        .filter(|s| is_lower_pair_member(s) == Some(true))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spair::special_partner;
    use crate::theorem::{decide_gamma, Solvability};

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    #[test]
    fn spair_graph_is_a_matching() {
        for max_prefix in 0..=3 {
            let g = build_spair_graph(max_prefix);
            assert!(g.is_matching(), "max_prefix={max_prefix}");
        }
    }

    #[test]
    fn spair_graph_counts() {
        // Universe with transient ≤ 1: constants (w), (b) plus the
        // length-1-transient unfair lassos.
        let g = build_spair_graph(1);
        assert!(g.nodes.len() >= 6);
        assert!(!g.edges.is_empty());
        // -(w) ↔ b(w) must be an edge.
        let i = g.nodes.iter().position(|s| *s == sc("-(w)")).unwrap();
        let j = g.nodes.iter().position(|s| *s == sc("b(w)")).unwrap();
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        assert!(g.edges.contains(&(a, b)));
    }

    #[test]
    fn constants_are_isolated() {
        let g = build_spair_graph(2);
        for c in ["(w)", "(b)"] {
            let i = g.nodes.iter().position(|s| *s == sc(c)).unwrap();
            assert_eq!(g.degree(i), 0, "{c}");
        }
    }

    #[test]
    fn exact_covers_are_covers_and_independent() {
        let g = build_spair_graph(2);
        let (lowers, uppers) = g.canonical_exact_covers();
        for cover in [&lowers, &uppers] {
            assert!(g.is_vertex_cover(cover));
            assert!(g.is_independent(cover));
            assert_eq!(cover.len(), g.edges.len());
        }
    }

    #[test]
    fn lower_member_classification_matches_pair_order() {
        let g = build_spair_graph(2);
        for &(a, b) in &g.edges {
            let (lo, hi) = if g.node_is_lower(a, b) { (a, b) } else { (b, a) };
            assert_eq!(
                is_lower_pair_member(&g.nodes[lo]),
                Some(true),
                "{}",
                g.nodes[lo]
            );
            assert_eq!(
                is_lower_pair_member(&g.nodes[hi]),
                Some(false),
                "{}",
                g.nodes[hi]
            );
        }
    }

    #[test]
    fn lower_member_none_for_fair_and_constants() {
        assert_eq!(is_lower_pair_member(&sc("(-)")), None);
        assert_eq!(is_lower_pair_member(&sc("(wb)")), None);
        assert_eq!(is_lower_pair_member(&sc("(w)")), None);
        assert_eq!(is_lower_pair_member(&sc("(b)")), None);
    }

    #[test]
    fn canonical_minimal_obstruction_is_an_obstruction() {
        let l = CanonicalMinimalObstruction;
        assert_eq!(decide_gamma(&l), Solvability::Obstruction);
        // It keeps fair scenarios and constants:
        assert!(l.contains(&sc("(-)")));
        assert!(l.contains(&sc("(wb)")));
        assert!(l.contains(&sc("(w)")));
        assert!(l.contains(&sc("(b)")));
        // It keeps upper members and drops lower members:
        assert!(l.contains(&sc("b(w)")), "upper member stays");
        assert!(!l.contains(&sc("-(w)")), "lower member removed");
        assert!(l.contains(&sc("-w(b)")), "upper member stays");
        assert!(!l.contains(&sc("--(b)")), "lower member removed");
    }

    #[test]
    fn canonical_minimal_obstruction_is_minimal() {
        // Removing any single further scenario makes the scheme solvable:
        // simulate by checking the Theorem III.8 conditions on L \ {x}.
        let l = CanonicalMinimalObstruction;
        let universe = enumerate_gamma_lassos(2, 2);
        let mut removed_some = 0;
        for x in &universe {
            if !l.contains(x) {
                continue;
            }
            // L \ {x}: solvable?
            let solvable = if x.is_fair() || *x == sc("(w)") || *x == sc("(b)") {
                true // conditions i / iii / iv fire with witness x
            } else {
                // x is an upper member; its lower partner is already gone —
                // condition ii fires.
                let partner = special_partner(x).expect("upper members are matched");
                !l.contains(&partner)
            };
            assert!(solvable, "removing {x} should make the scheme solvable");
            removed_some += 1;
        }
        assert!(removed_some > 10, "the check must cover many scenarios");
    }

    #[test]
    fn descending_chain_is_strictly_decreasing_obstructions() {
        let chain = descending_chain(4);
        assert_eq!(chain.len(), 5);
        for (i, l) in chain.iter().enumerate() {
            assert_eq!(
                decide_gamma(l),
                Solvability::Obstruction,
                "L_{i} must be an obstruction"
            );
        }
        // Strict decrease: L_{n+1} misses u_{n+1} which L_n contains.
        for i in 0..chain.len() - 1 {
            let extra = Scenario::new(
                Word(vec![crate::letter::Letter::Full; i + 2]),
                "b".parse().unwrap(),
            );
            assert!(chain[i].contains(&extra));
            assert!(!chain[i + 1].contains(&extra));
        }
    }

    #[test]
    fn chain_exclusions_are_pairwise_non_special() {
        // The u_i = Full^{i+1}(b) must be pairwise non-partnered, otherwise
        // some L_n would fire condition ii.
        let us: Vec<Scenario> = (0..5)
            .map(|i| {
                Scenario::new(
                    Word(vec![crate::letter::Letter::Full; i + 1]),
                    "b".parse().unwrap(),
                )
            })
            .collect();
        for (i, a) in us.iter().enumerate() {
            for b in us.iter().skip(i + 1) {
                assert!(!is_special_pair(a, b), "{a} / {b}");
            }
        }
    }

    #[test]
    fn distance_to_minimality_grows_with_universe() {
        let d1 = distance_to_minimality(1);
        let d2 = distance_to_minimality(2);
        let d3 = distance_to_minimality(3);
        assert!(d1 >= 1);
        assert!(d2 > d1);
        assert!(d3 > d2);
    }

    #[test]
    fn lower_membership_agrees_with_partner_search() {
        // Cross-validate is_lower_pair_member against the constructive
        // partner search for the small universe.
        for w in unfair_universe(2) {
            let classified = is_lower_pair_member(&w);
            match classified {
                None => assert!(
                    special_partner(&w).is_none(),
                    "{w} classified unmatched but has a partner"
                ),
                Some(is_lower) => {
                    let p = special_partner(&w).expect("matched scenario needs a partner");
                    let r = w.repr_len().max(p.repr_len()) + 2;
                    let iw = ind(&w.prefix_word(r).to_gamma().unwrap());
                    let ip = ind(&p.prefix_word(r).to_gamma().unwrap());
                    assert_eq!(is_lower, iw < ip, "{w} vs partner {p}");
                }
            }
        }
    }
}
