//! The scenario index `ind : Γ* → ℕ` (Definition III.1).
//!
//! The index is defined inductively by
//!
//! ```text
//! ind(ε)   = 0
//! ind(u·a) = 3·ind(u) + (-1)^{ind(u)}·δ(a) + 1
//! ```
//!
//! with `δ(DropWhite) = -1`, `δ(Full) = 0`, `δ(DropBlack) = +1`.
//!
//! For each length `r`, `ind` is a bijection from `Γ^r` onto `[0, 3^r - 1]`
//! (Lemma III.2), with `ind(DropWhite^r) = 0` and
//! `ind(DropBlack^r) = 3^r - 1` (Proposition III.3). Words whose indexes
//! differ by exactly one are *indistinguishability neighbours*: one of the
//! two processes has the same view under both (Lemma III.4 /
//! Corollary III.5) — this is the engine of both the impossibility proof
//! and the algorithm `A_w`.
//!
//! Index values grow like `3^r`, so the general API returns
//! [`UBig`]; an incremental [`IndexTracker`] maintains the index of a
//! growing word in amortized `O(len)` bigint work per letter.

use crate::letter::{GammaLetter, Role};
use crate::word::GammaWord;
use minobs_bigint::{pow3, UBig};

/// The index of a finite `Γ`-word (Definition III.1).
pub fn ind(w: &GammaWord) -> UBig {
    let mut t = IndexTracker::new();
    for a in w.iter() {
        t.push(a);
    }
    t.into_value()
}

/// Parity of `ind(w)` without computing the full value.
///
/// From the recurrence, `ind(u·a) ≡ ind(u) + |δ(a)| + 1 (mod 2)`, so the
/// parity flips exactly on `Full` letters (`δ = 0`).
pub fn ind_parity_is_even(w: &GammaWord) -> bool {
    let mut even = true; // ind(ε) = 0
    for a in w.iter() {
        if a == GammaLetter::Full {
            even = !even;
        }
    }
    even
}

/// The inverse of the index map: the unique `w ∈ Γ^r` with `ind(w) = value`
/// (Lemma III.2). Returns `None` when `value ≥ 3^r`.
pub fn ind_inv(r: usize, value: &UBig) -> Option<GammaWord> {
    if *value >= pow3(r as u32) {
        return None;
    }
    // Peel letters from the right: v = ind(u·a) = 3·ind(u) + (-1)^{ind(u)}·δ(a) + 1.
    // Writing v - 1 = 3·q + s with s ∈ {-1, 0, +1} (balanced ternary digit),
    // we get ind(u) = q and δ(a) = (-1)^q · s.
    let mut letters = vec![GammaLetter::Full; r];
    let mut v = value.clone();
    for slot in letters.iter_mut().rev() {
        // Compute (q, s) with v - 1 = 3q + s, s ∈ {-1,0,1}:
        // equivalently v = 3q + (s+1), s+1 ∈ {0,1,2}.
        let (q, rem) = v.div_rem_small(3);
        let s: i8 = rem as i8 - 1;
        let delta = if q.is_even() { s } else { -s };
        *slot = match delta {
            -1 => GammaLetter::DropWhite,
            0 => GammaLetter::Full,
            1 => GammaLetter::DropBlack,
            _ => unreachable!(),
        };
        v = q;
    }
    debug_assert!(v.is_zero());
    Some(GammaWord(letters))
}

/// Incrementally maintained index of a growing `Γ`-word.
///
/// Tracks `ind(w)` and `3^{|w|}` so pushes cost one bigint multiply-add and
/// neighbour queries need no recomputation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexTracker {
    value: UBig,
    len: usize,
    pow3_len: UBig,
}

impl Default for IndexTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexTracker {
    /// Tracker for the empty word (`ind(ε) = 0`).
    pub fn new() -> Self {
        IndexTracker {
            value: UBig::zero(),
            len: 0,
            pow3_len: UBig::one(),
        }
    }

    /// Extends the tracked word by one letter.
    pub fn push(&mut self, a: GammaLetter) {
        let signed_delta = if self.value.is_even() {
            a.delta()
        } else {
            -a.delta()
        };
        // value = 3*value + signed_delta + 1; signed_delta + 1 ∈ {0, 1, 2}.
        self.value = self
            .value
            .mul_small(3)
            .add_ref(&UBig::from((signed_delta + 1) as u32));
        self.len += 1;
        self.pow3_len = self.pow3_len.mul_small(3);
    }

    /// The current index `ind(w)`.
    pub fn value(&self) -> &UBig {
        &self.value
    }

    /// Consumes the tracker, returning the index.
    pub fn into_value(self) -> UBig {
        self.value
    }

    /// The length of the tracked word.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the tracked word is `ε`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `3^{|w|}`, the size of the index space at the current length.
    pub fn pow3_len(&self) -> &UBig {
        &self.pow3_len
    }

    /// `true` iff `ind(w)` is even.
    pub fn is_even(&self) -> bool {
        self.value.is_even()
    }
}

/// Which process cannot distinguish two adjacent-index words
/// (Corollary III.5).
///
/// For `v, v' ∈ Γ^r` with `ind(v') = ind(v) + 1`:
/// * if `ind(v)` is even, **White** has the same state after both
///   (`s_◻(v) = s_◻(v')`) under any algorithm;
/// * if `ind(v)` is odd, **Black** does.
///
/// Derivation (with our δ orientation, `δ(DropWhite) = -1`): when `ind(v)`
/// is even, Lemma III.4 says the pair differs either in the last letter
/// only, with letters in `{(DropWhite, Full), (Full, DropWhite)}` — both of
/// which deliver Black's message to White identically — or in index-adjacent
/// prefixes followed by `DropBlack` on both sides, where White receives
/// `null` on both sides and is confused about the prefixes by induction.
pub fn confused_process(ind_v_is_even: bool) -> Role {
    if ind_v_is_even {
        Role::White
    } else {
        Role::Black
    }
}

/// The index-order successor word: `ind⁻¹(ind(v) + 1)` at the same length,
/// or `None` when `v = DropBlack^r` (maximal index).
pub fn index_successor(v: &GammaWord) -> Option<GammaWord> {
    let next = ind(v).succ();
    ind_inv(v.len(), &next)
}

/// The index-order predecessor word, or `None` when `v = DropWhite^r`.
pub fn index_predecessor(v: &GammaWord) -> Option<GammaWord> {
    let prev = ind(v).pred()?;
    ind_inv(v.len(), &prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::letter::GammaLetter;
    use crate::letter::GammaLetter::{DropBlack, DropWhite, Full};
    use proptest::prelude::*;

    fn gw(s: &str) -> GammaWord {
        s.parse().unwrap()
    }

    fn ind_u64(s: &str) -> u64 {
        ind(&gw(s)).to_u64().unwrap()
    }

    #[test]
    fn empty_word_has_index_zero() {
        assert_eq!(ind(&GammaWord::empty()), UBig::zero());
    }

    #[test]
    fn length_one_indexes() {
        // Figure 1, first column: the three one-letter words carry 0, 1, 2.
        assert_eq!(ind_u64("w"), 0);
        assert_eq!(ind_u64("-"), 1);
        assert_eq!(ind_u64("b"), 2);
    }

    #[test]
    fn proposition_iii_3_extremes() {
        for r in 0..40 {
            let lo = GammaWord::repeat(DropWhite, r);
            let hi = GammaWord::repeat(DropBlack, r);
            assert_eq!(ind(&lo), UBig::zero(), "ind(w^{r}) = 0");
            assert_eq!(
                ind(&hi),
                pow3(r as u32).pred().unwrap(),
                "ind(b^{r}) = 3^{r} - 1"
            );
        }
    }

    #[test]
    fn lemma_iii_2_bijection_small_r() {
        // ind is a bijection Γ^r → [0, 3^r - 1].
        for r in 0..8usize {
            let mut seen = vec![false; 3usize.pow(r as u32)];
            for w in GammaWord::enumerate_all(r) {
                let v = ind(&w).to_u64().unwrap() as usize;
                assert!(v < seen.len(), "index in range");
                assert!(!seen[v], "index is injective");
                seen[v] = true;
            }
            assert!(seen.iter().all(|&b| b), "index is surjective");
        }
    }

    #[test]
    fn ind_inv_roundtrip_small_r() {
        for r in 0..7usize {
            for w in GammaWord::enumerate_all(r) {
                assert_eq!(ind_inv(r, &ind(&w)), Some(w));
            }
        }
    }

    #[test]
    fn ind_inv_rejects_out_of_range() {
        assert_eq!(ind_inv(2, &UBig::from(9u32)), None);
        assert_eq!(ind_inv(0, &UBig::from(1u32)), None);
        assert_eq!(ind_inv(0, &UBig::zero()), Some(GammaWord::empty()));
    }

    #[test]
    fn figure_1_length_two_table() {
        // Reproduces Figure 1 of the paper: indexes of all words of length 2
        // (reconstructed from the recurrence; the paper's glyphs are
        // orientation-symmetric, our canonical orientation puts DropWhite
        // low). The essential shape: ww ↦ 0, bb ↦ 8, and each value in
        // 0..=8 hit exactly once.
        let table: Vec<(String, u64)> = GammaWord::enumerate_all(2)
            .map(|w| (w.to_string(), ind(&w).to_u64().unwrap()))
            .collect();
        let lookup = |s: &str| table.iter().find(|(t, _)| t == s).unwrap().1;
        assert_eq!(lookup("ww"), 0);
        assert_eq!(lookup("bb"), 8);
        // The recurrence at work: ind(-)=1 odd, so the second letter's δ is
        // negated: ind("-w") = 3·1 + (−1)^1·(−1) + 1 = 5.
        assert_eq!(lookup("-w"), 5);
        assert_eq!(lookup("--"), 4);
        assert_eq!(lookup("-b"), 3);
        assert_eq!(lookup("w-"), 1);
        assert_eq!(lookup("wb"), 2);
        assert_eq!(lookup("b-"), 7);
        assert_eq!(lookup("bw"), 6);
    }

    #[test]
    fn tracker_matches_batch_index() {
        let w = gw("-wb-bw-wbb");
        let mut t = IndexTracker::new();
        for (i, a) in w.iter().enumerate() {
            t.push(a);
            assert_eq!(*t.value(), ind(&w.prefix(i + 1)));
            assert_eq!(t.len(), i + 1);
        }
        assert_eq!(*t.pow3_len(), pow3(w.len() as u32));
    }

    #[test]
    fn lemma_iii_4_adjacent_words_share_a_view() {
        // For every adjacent pair (v, v') with ind(v') = ind(v)+1, exactly
        // one of the cases of Lemma III.4 applies: either they differ only
        // in the last letter in one of the two prescribed patterns, or their
        // length-(r-1) prefixes are adjacent and the last letters are the
        // prescribed constant pair.
        for r in 1..6usize {
            for v in GammaWord::enumerate_all(r) {
                let Some(v2) = index_successor(&v) else {
                    continue;
                };
                let u = v.prefix(r - 1);
                let u2 = v2.prefix(r - 1);
                let a = v.get(r - 1).unwrap();
                let b = v2.get(r - 1).unwrap();
                let even = ind(&v).is_even();
                if u == u2 {
                    // Same prefix: last letters are a δ-adjacent pair whose
                    // shared delivery direction is fixed by the parity of
                    // ind(v).
                    if even {
                        assert!(
                            (a, b) == (DropWhite, Full) || (a, b) == (Full, DropWhite),
                            "r={r} v={v} v'={v2}"
                        );
                    } else {
                        assert!(
                            (a, b) == (Full, DropBlack) || (a, b) == (DropBlack, Full),
                            "r={r} v={v} v'={v2}"
                        );
                    }
                } else {
                    // Index-adjacent prefixes followed by the same extremal
                    // letter on both sides.
                    assert_eq!(ind(&u2), ind(&u).succ(), "prefixes adjacent");
                    if even {
                        assert_eq!((a, b), (DropBlack, DropBlack), "r={r} v={v}");
                    } else {
                        assert_eq!((a, b), (DropWhite, DropWhite), "r={r} v={v}");
                    }
                }
            }
        }
    }

    #[test]
    fn successor_predecessor_inverse() {
        for r in 0..5usize {
            for w in GammaWord::enumerate_all(r) {
                if let Some(s) = index_successor(&w) {
                    assert_eq!(index_predecessor(&s), Some(w.clone()));
                }
                if let Some(p) = index_predecessor(&w) {
                    assert_eq!(index_successor(&p), Some(w.clone()));
                }
            }
        }
    }

    #[test]
    fn extremes_have_no_neighbour_beyond() {
        let lo = GammaWord::repeat(DropWhite, 5);
        let hi = GammaWord::repeat(DropBlack, 5);
        assert_eq!(index_predecessor(&lo), None);
        assert_eq!(index_successor(&hi), None);
    }

    #[test]
    fn confused_process_alternates_with_parity() {
        assert_eq!(confused_process(true), Role::White);
        assert_eq!(confused_process(false), Role::Black);
    }

    fn arb_gamma_word(max_len: usize) -> impl Strategy<Value = GammaWord> {
        proptest::collection::vec(0usize..3, 0..max_len)
            .prop_map(|ds| GammaWord(ds.into_iter().map(|d| GammaLetter::ALL[d]).collect()))
    }

    proptest! {
        #[test]
        fn prop_index_in_range(w in arb_gamma_word(64)) {
            let v = ind(&w);
            prop_assert!(v < pow3(w.len() as u32));
        }

        #[test]
        fn prop_ind_inv_roundtrip(w in arb_gamma_word(64)) {
            prop_assert_eq!(ind_inv(w.len(), &ind(&w)), Some(w));
        }

        #[test]
        fn prop_tracker_matches_batch(w in arb_gamma_word(48)) {
            let mut t = IndexTracker::new();
            for a in w.iter() { t.push(a); }
            prop_assert_eq!(t.into_value(), ind(&w));
        }

        #[test]
        fn prop_prefix_monotone_scaling(w in arb_gamma_word(32), a in 0usize..3) {
            // Appending any letter multiplies the index by 3 up to ±1 + 1:
            // |ind(w·a) - 3·ind(w) - 1| ≤ 1.
            let letter = GammaLetter::ALL[a];
            let base = ind(&w).mul_small(3).succ();
            let ext = ind(&w.push(letter));
            prop_assert!(base.abs_diff(&ext) <= UBig::one());
        }
    }
}
