//! Synchronous two-process execution engine (Section II-F).
//!
//! An execution of a distributed algorithm under a scenario `w` proceeds in
//! rounds: each live process emits a message, the round’s [`Letter`](crate::letter::Letter)
//! decides which messages are delivered, and each live process updates its
//! state from what it received (`null` when the message was lost *or* the
//! peer has halted — a halted process sends nothing, which is
//! indistinguishable from an omission).
//!
//! The engine runs any pair of [`TwoProcessProtocol`]s against any
//! [`Scenario`], collects message statistics, and audits the three
//! Uniform Consensus properties of Section II-B (Termination, Validity,
//! Agreement) into a [`Verdict`].

use crate::letter::Role;
use crate::scenario::Scenario;
use minobs_obs::{MessageStatus, NullRecorder, Recorder, RoundCounts, RoundTimer};

/// A state machine for one of the two processes.
///
/// The engine drives it with `outgoing` / `advance` once per round until
/// [`TwoProcessProtocol::halted`] or the round budget runs out.
pub trait TwoProcessProtocol {
    /// The message type exchanged by this protocol family.
    type Msg: Clone;

    /// Which process this instance plays.
    fn role(&self) -> Role;

    /// The initial value this process proposes.
    fn input(&self) -> bool;

    /// The message to send this round, or `None` to stay silent.
    /// Not called once halted.
    fn outgoing(&self) -> Option<Self::Msg>;

    /// Consumes the round's incoming message (`None` = the receive call
    /// returned `null`) and moves to the next round. Not called once
    /// halted.
    fn advance(&mut self, incoming: Option<Self::Msg>);

    /// The decided value, once the process has decided.
    fn decision(&self) -> Option<bool>;

    /// `true` once the process has halted (it stops sending and stepping).
    fn halted(&self) -> bool;
}

/// The consensus audit of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Both processes decided the same value, and Validity holds.
    Consensus(bool),
    /// Both decided, on different values — Agreement violated.
    Disagreement { white: bool, black: bool },
    /// Both processes proposed `proposed` but some process decided
    /// otherwise — Validity violated.
    ValidityViolation { proposed: bool, decided: bool },
    /// At least one process had not decided when the round budget ran out.
    Undecided,
}

impl Verdict {
    /// Unwraps [`Verdict::Consensus`].
    ///
    /// # Panics
    /// Panics with a descriptive message on any other verdict.
    pub fn expect_consensus(&self) -> bool {
        match self {
            Verdict::Consensus(v) => *v,
            other => panic!("expected consensus, got {other:?}"),
        }
    }

    /// `true` iff the execution reached consensus.
    pub fn is_consensus(&self) -> bool {
        matches!(self, Verdict::Consensus(_))
    }
}

/// The result of running two processes under a scenario.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// White's decision, if it decided within the budget.
    pub white_decision: Option<bool>,
    /// Black's decision, if it decided within the budget.
    pub black_decision: Option<bool>,
    /// Rounds executed until both halted (or the budget).
    pub rounds: usize,
    /// Messages handed to the environment.
    pub messages_sent: usize,
    /// Messages actually delivered.
    pub messages_delivered: usize,
    /// The audited verdict.
    pub verdict: Verdict,
}

/// Runs `white` and `black` under `scenario` for at most `max_rounds`
/// rounds and audits the execution.
///
/// Letters of the scenario are consumed in order; a process that has halted
/// sends nothing, so its peer observes `null` regardless of the letter —
/// matching the paper's convention that only *sent* messages are subject to
/// omission ("the message of the process, *if any*, is not transmitted").
pub fn run_two_process<P, Q>(
    white: &mut P,
    black: &mut Q,
    scenario: &Scenario,
    max_rounds: usize,
) -> Outcome
where
    P: TwoProcessProtocol,
    Q: TwoProcessProtocol<Msg = P::Msg>,
{
    run_two_process_with_recorder(white, black, scenario, max_rounds, &mut NullRecorder)
}

/// [`run_two_process`] with structured observations delivered to
/// `recorder`. White is node 0, Black node 1 in the emitted events.
pub fn run_two_process_with_recorder<P, Q, R>(
    white: &mut P,
    black: &mut Q,
    scenario: &Scenario,
    max_rounds: usize,
    recorder: &mut R,
) -> Outcome
where
    P: TwoProcessProtocol,
    Q: TwoProcessProtocol<Msg = P::Msg>,
    R: Recorder + ?Sized,
{
    assert_eq!(white.role(), Role::White, "first protocol must play White");
    assert_eq!(black.role(), Role::Black, "second protocol must play Black");

    const WHITE: usize = 0;
    const BLACK: usize = 1;

    let mut rounds = 0usize;
    let mut messages_sent = 0usize;
    let mut messages_delivered = 0usize;
    let run_timer = RoundTimer::start_if(recorder.enabled());
    recorder.on_run_start("two_process", 2, 1);

    while rounds < max_rounds && !(white.halted() && black.halted()) {
        let observing = recorder.enabled();
        let timer = RoundTimer::start_if(observing);
        let decided_before = (white.decision().is_some(), black.decision().is_some());

        let letter = scenario.letter_at(rounds);
        let from_white = if white.halted() { None } else { white.outgoing() };
        let from_black = if black.halted() { None } else { black.outgoing() };
        let white_sent = from_white.is_some();
        let black_sent = from_black.is_some();
        let mut counts = RoundCounts {
            sent: white_sent as usize + black_sent as usize,
            ..RoundCounts::default()
        };

        let to_black = from_white.filter(|_| letter.delivers_from(Role::White));
        let to_white = from_black.filter(|_| letter.delivers_from(Role::Black));
        counts.delivered = to_black.is_some() as usize + to_white.is_some() as usize;
        counts.dropped = counts.sent - counts.delivered;
        if observing {
            if white_sent {
                let status = if to_black.is_some() {
                    MessageStatus::Delivered
                } else {
                    MessageStatus::Dropped
                };
                recorder.on_message(rounds, WHITE, BLACK, status);
            }
            if black_sent {
                let status = if to_white.is_some() {
                    MessageStatus::Delivered
                } else {
                    MessageStatus::Dropped
                };
                recorder.on_message(rounds, BLACK, WHITE, status);
            }
        }
        messages_sent += counts.sent;
        messages_delivered += counts.delivered;

        if !white.halted() {
            white.advance(to_white);
        }
        if !black.halted() {
            black.advance(to_black);
        }
        if observing {
            if !decided_before.0 {
                if let Some(value) = white.decision() {
                    recorder.on_decision(rounds, WHITE, value as u64);
                }
            }
            if !decided_before.1 {
                if let Some(value) = black.decision() {
                    recorder.on_decision(rounds, BLACK, value as u64);
                }
            }
        }
        recorder.on_round_end(rounds, counts, timer.elapsed_nanos());
        rounds += 1;
    }

    let white_decision = white.decision();
    let black_decision = black.decision();
    let verdict = audit(
        white.input(),
        black.input(),
        white_decision,
        black_decision,
    );
    recorder.on_run_end(
        rounds,
        RoundCounts {
            sent: messages_sent,
            delivered: messages_delivered,
            dropped: messages_sent - messages_delivered,
            misaddressed: 0,
        },
        run_timer.elapsed_nanos(),
    );

    Outcome {
        white_decision,
        black_decision,
        rounds,
        messages_sent,
        messages_delivered,
        verdict,
    }
}

/// Audits the three consensus properties given inputs and decisions.
pub fn audit(
    white_input: bool,
    black_input: bool,
    white_decision: Option<bool>,
    black_decision: Option<bool>,
) -> Verdict {
    let (Some(w), Some(b)) = (white_decision, black_decision) else {
        return Verdict::Undecided;
    };
    if w != b {
        return Verdict::Disagreement { white: w, black: b };
    }
    if white_input == black_input && w != white_input {
        return Verdict::ValidityViolation {
            proposed: white_input,
            decided: w,
        };
    }
    Verdict::Consensus(w)
}

/// A deliberately broken protocol for failure-injection tests: it decides
/// its own input immediately, without communicating.
#[derive(Debug, Clone)]
pub struct StubbornProtocol {
    role: Role,
    init: bool,
    halted: bool,
}

impl StubbornProtocol {
    /// Builds a stubborn process.
    pub fn new(role: Role, init: bool) -> Self {
        StubbornProtocol {
            role,
            init,
            halted: false,
        }
    }
}

impl TwoProcessProtocol for StubbornProtocol {
    type Msg = ();

    fn role(&self) -> Role {
        self.role
    }

    fn input(&self) -> bool {
        self.init
    }

    fn outgoing(&self) -> Option<()> {
        None
    }

    fn advance(&mut self, _incoming: Option<()>) {
        self.halted = true;
    }

    fn decision(&self) -> Option<bool> {
        self.halted.then_some(self.init)
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    #[test]
    fn stubborn_processes_disagree_on_mixed_inputs() {
        let out = run_two_process(
            &mut StubbornProtocol::new(Role::White, false),
            &mut StubbornProtocol::new(Role::Black, true),
            &sc("(-)"),
            8,
        );
        assert_eq!(
            out.verdict,
            Verdict::Disagreement {
                white: false,
                black: true
            }
        );
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn stubborn_processes_agree_on_equal_inputs() {
        let out = run_two_process(
            &mut StubbornProtocol::new(Role::White, true),
            &mut StubbornProtocol::new(Role::Black, true),
            &sc("(x)"),
            8,
        );
        assert_eq!(out.verdict, Verdict::Consensus(true));
    }

    #[test]
    fn audit_detects_validity_violation() {
        let v = audit(true, true, Some(false), Some(false));
        assert_eq!(
            v,
            Verdict::ValidityViolation {
                proposed: true,
                decided: false
            }
        );
    }

    #[test]
    fn audit_undecided_when_any_missing() {
        assert_eq!(audit(true, false, None, Some(true)), Verdict::Undecided);
        assert_eq!(audit(true, false, Some(true), None), Verdict::Undecided);
        assert_eq!(audit(true, false, None, None), Verdict::Undecided);
    }

    #[test]
    fn mixed_inputs_cannot_violate_validity() {
        assert_eq!(audit(true, false, Some(false), Some(false)), Verdict::Consensus(false));
        assert_eq!(audit(true, false, Some(true), Some(true)), Verdict::Consensus(true));
    }

    #[test]
    #[should_panic(expected = "first protocol must play White")]
    fn engine_rejects_swapped_roles() {
        let _ = run_two_process(
            &mut StubbornProtocol::new(Role::Black, true),
            &mut StubbornProtocol::new(Role::White, true),
            &sc("(-)"),
            1,
        );
    }

    #[test]
    fn expect_consensus_panics_on_disagreement() {
        let v = Verdict::Disagreement {
            white: true,
            black: false,
        };
        let res = std::panic::catch_unwind(|| v.expect_consensus());
        assert!(res.is_err());
    }

    #[test]
    fn round_budget_caps_execution() {
        // Stubborn halts after 1 round; a never-halting protocol would cap.
        #[derive(Debug)]
        struct Forever(Role);
        impl TwoProcessProtocol for Forever {
            type Msg = ();
            fn role(&self) -> Role {
                self.0
            }
            fn input(&self) -> bool {
                false
            }
            fn outgoing(&self) -> Option<()> {
                Some(())
            }
            fn advance(&mut self, _: Option<()>) {}
            fn decision(&self) -> Option<bool> {
                None
            }
            fn halted(&self) -> bool {
                false
            }
        }
        let out = run_two_process(
            &mut Forever(Role::White),
            &mut Forever(Role::Black),
            &sc("(-)"),
            17,
        );
        assert_eq!(out.rounds, 17);
        assert_eq!(out.verdict, Verdict::Undecided);
        assert_eq!(out.messages_sent, 34);
        assert_eq!(out.messages_delivered, 34);
    }

    #[test]
    fn delivery_respects_letters() {
        #[derive(Debug)]
        struct Counter {
            role: Role,
            got: usize,
            rounds: usize,
        }
        impl TwoProcessProtocol for Counter {
            type Msg = u8;
            fn role(&self) -> Role {
                self.role
            }
            fn input(&self) -> bool {
                false
            }
            fn outgoing(&self) -> Option<u8> {
                Some(7)
            }
            fn advance(&mut self, incoming: Option<u8>) {
                if incoming.is_some() {
                    self.got += 1;
                }
                self.rounds += 1;
            }
            fn decision(&self) -> Option<bool> {
                None
            }
            fn halted(&self) -> bool {
                self.rounds >= 4
            }
        }
        // Letters: w b - x then halted.
        let mut white = Counter {
            role: Role::White,
            got: 0,
            rounds: 0,
        };
        let mut black = Counter {
            role: Role::Black,
            got: 0,
            rounds: 0,
        };
        let out = run_two_process(&mut white, &mut black, &sc("wb-x(-)"), 10);
        assert_eq!(out.rounds, 4);
        // w: white hears black; b: black hears white; -: both; x: none.
        assert_eq!(out.messages_sent, 8);
        assert_eq!(out.messages_delivered, 4);
    }
}
