//! Theorem III.8: the characterization of solvable omission schemes
//! without double omission.
//!
//! For `L ⊆ Γ^ω`, Consensus is solvable for `L` **iff** at least one of:
//!
//! 1. some fair scenario is missing from `L` (condition III.8.i);
//! 2. some special pair is entirely missing from `L` (III.8.ii);
//! 3. `DropWhite^ω ∉ L` (III.8.iii);
//! 4. `DropBlack^ω ∉ L` (III.8.iv).
//!
//! The decision procedure returns a [`Solvability`] verdict carrying the
//! witnessing scenario — the parameter to feed [`crate::algorithm::AwProcess`] —
//! and which condition fired. For a missing special pair the *upper* member
//! is returned (see the witness-hygiene note in [`crate::algorithm`]).
//!
//! This module answers the conditions exactly for every [`ClassicScheme`];
//! the `minobs-omega` crate extends the same interface to arbitrary
//! ω-regular schemes via automata emptiness.

use crate::index::ind;
use crate::letter::{GammaLetter, Role};
use crate::scenario::Scenario;
use crate::scheme::{ClassicScheme, GammaScheme, OmissionScheme};
use crate::spair::is_special_pair;
use crate::word::{GammaWord, Word};

/// Which condition of Theorem III.8 made the scheme solvable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConditionIII8 {
    /// III.8.i — a fair scenario is missing.
    MissingFair,
    /// III.8.ii — a special pair is entirely missing.
    MissingSpecialPair,
    /// III.8.iii — `DropWhite^ω` is missing.
    MissingConstantWhite,
    /// III.8.iv — `DropBlack^ω` is missing.
    MissingConstantBlack,
}

/// The verdict of the Theorem III.8 decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solvability {
    /// The scheme is solvable; `witness ∉ L` parameterizes a correct `A_w`.
    Solvable {
        /// The forbidden scenario to hand to `A_w`.
        witness: Scenario,
        /// Which condition produced the witness.
        condition: ConditionIII8,
    },
    /// The scheme is an obstruction for the Coordinated Attack Problem.
    Obstruction,
}

impl Solvability {
    /// `true` iff the verdict is solvable.
    pub fn is_solvable(&self) -> bool {
        matches!(self, Solvability::Solvable { .. })
    }

    /// The witness scenario, when solvable.
    pub fn witness(&self) -> Option<&Scenario> {
        match self {
            Solvability::Solvable { witness, .. } => Some(witness),
            Solvability::Obstruction => None,
        }
    }

    /// The fired condition, when solvable.
    pub fn condition(&self) -> Option<ConditionIII8> {
        match self {
            Solvability::Solvable { condition, .. } => Some(*condition),
            Solvability::Obstruction => None,
        }
    }
}

/// Decides Theorem III.8 for any scheme exposing the [`GammaScheme`]
/// queries, returning an `A_w`-ready witness.
pub fn decide_gamma<S: GammaScheme + ?Sized>(scheme: &S) -> Solvability {
    // Condition i: a missing fair scenario is the most robust witness
    // (fair scenarios have no special partner, so A_w cannot be trapped).
    if let Some(f) = scheme.missing_fair_scenario() {
        debug_assert!(f.is_fair() && !scheme.contains(&f));
        return Solvability::Solvable {
            witness: f,
            condition: ConditionIII8::MissingFair,
        };
    }
    if !scheme.contains_constant_drop(Role::White) {
        return Solvability::Solvable {
            witness: Scenario::constant_gamma(GammaLetter::DropWhite),
            condition: ConditionIII8::MissingConstantWhite,
        };
    }
    if !scheme.contains_constant_drop(Role::Black) {
        return Solvability::Solvable {
            witness: Scenario::constant_gamma(GammaLetter::DropBlack),
            condition: ConditionIII8::MissingConstantBlack,
        };
    }
    if let Some((u, u2)) = scheme.missing_special_pair() {
        debug_assert!(is_special_pair(&u, &u2));
        debug_assert!(!scheme.contains(&u) && !scheme.contains(&u2));
        return Solvability::Solvable {
            witness: upper_member(&u, &u2),
            condition: ConditionIII8::MissingSpecialPair,
        };
    }
    Solvability::Obstruction
}

/// Decides solvability for a [`ClassicScheme`], including `S2 = Σ^ω`
/// (an obstruction: it contains the obstruction `R1 = Γ^ω`, and solvability
/// is inherited downward under inclusion).
///
/// # Panics
/// Panics for the other Σ-schemes ([`ClassicScheme::SigmaAvoidPrefix`],
/// [`ClassicScheme::SigmaTotalBudget`]): Theorem III.8 does not cover
/// double omission — the paper's Section VI leaves that characterization
/// open. Use the bounded model checker (`minobs-synth`) for those.
pub fn decide_classic(scheme: &ClassicScheme) -> Solvability {
    match scheme {
        ClassicScheme::S2 => Solvability::Obstruction,
        ClassicScheme::SigmaAvoidPrefix(_) | ClassicScheme::SigmaTotalBudget(_) => panic!(
            "Theorem III.8 only characterizes schemes without double omission;              decide {} with the bounded model checker instead",
            scheme.name()
        ),
        _ => decide_gamma(scheme),
    }
}

/// Returns the member of a special pair with the larger (eventual) index —
/// the safe `A_w` parameter (see the witness-hygiene note in
/// [`crate::algorithm`]).
pub fn upper_member(u: &Scenario, u2: &Scenario) -> Scenario {
    // Once the indexes diverge they keep their order; compare at a round
    // past both representations.
    let r = u.repr_len().max(u2.repr_len()) + u.lasso_cycle().len() * u2.lasso_cycle().len() + 1;
    let iu = ind(&u.prefix_word(r).to_gamma().expect("special pairs live in Γ"));
    let iv = ind(&u2.prefix_word(r).to_gamma().expect("special pairs live in Γ"));
    if iu >= iv {
        u.clone()
    } else {
        u2.clone()
    }
}

/// The smallest `p` with `Γ^p ⊄ Pref(L)`, searched up to `max_p`
/// (Corollary III.14: any consensus algorithm for `L` needs ≥ `p` rounds in
/// the worst case, and the capped `A_w` achieves exactly `p`).
///
/// Returns the pair `(p, w0)` where `w0 ∈ Γ^p \ Pref(L)` is the excluded
/// word, or `None` when `Pref(L) ⊇ Γ^{max_p}` everywhere (round complexity
/// unbounded at this horizon).
pub fn min_excluded_prefix<S: OmissionScheme + ?Sized>(
    scheme: &S,
    max_p: usize,
) -> Option<(usize, GammaWord)> {
    for p in 0..=max_p {
        for w in GammaWord::enumerate_all(p) {
            if !scheme.allows_prefix(&w.to_word()) {
                return Some((p, w));
            }
        }
    }
    None
}

impl GammaScheme for ClassicScheme {
    fn missing_fair_scenario(&self) -> Option<Scenario> {
        let alternating: Scenario = "(wb)".parse().unwrap();
        match self {
            ClassicScheme::S0 | ClassicScheme::C1 | ClassicScheme::S1 => Some(alternating),
            ClassicScheme::T(Role::White) => Some("(b-)".parse().unwrap()),
            ClassicScheme::T(Role::Black) => Some("(w-)".parse().unwrap()),
            // These contain every fair Γ-scenario:
            ClassicScheme::R1 | ClassicScheme::FairGamma | ClassicScheme::AlmostFair(_) => None,
            ClassicScheme::GammaMinus(excluded) => {
                excluded.iter().find(|s| s.is_gamma() && s.is_fair()).cloned()
            }
            ClassicScheme::AvoidPrefix(w0) => {
                // w0 · Full^ω is fair and starts with the forbidden prefix.
                if w0.is_gamma() {
                    Some(Scenario::new(w0.clone(), "-".parse::<Word>().unwrap()))
                } else {
                    // A non-Γ forbidden prefix excludes nothing from Γ^ω.
                    None
                }
            }
            // Any fair scenario with infinitely many losses exceeds every
            // finite budget.
            ClassicScheme::TotalBudget(_) => Some(alternating),
            ClassicScheme::S2
            | ClassicScheme::SigmaAvoidPrefix(_)
            | ClassicScheme::SigmaTotalBudget(_) => {
                unreachable!("not a Γ-scheme; Theorem III.8 does not apply")
            }
        }
    }

    fn missing_special_pair(&self) -> Option<(Scenario, Scenario)> {
        match self {
            // These four already have a missing fair scenario; any special
            // pair avoiding the scheme works — exhibit a canonical one.
            ClassicScheme::S0 => Some(pair("--(b)", "-w(b)")),
            ClassicScheme::T(Role::White) => Some(pair("--(b)", "-w(b)")),
            ClassicScheme::T(Role::Black) => Some(pair("-(w)", "b(w)")),
            ClassicScheme::C1 => Some(pair("wb(w)", "w-(w)")),
            // Both members must use both drop letters to escape S1:
            // ind("b-") = 7 is odd, so the DropWhite tail pairs
            // ( b-(w), bb(w) ).
            ClassicScheme::S1 => Some(pair("b-(w)", "bb(w)")),
            // R1 contains everything; AlmostFair misses only a constant,
            // which has no partner.
            ClassicScheme::R1 | ClassicScheme::AlmostFair(_) => None,
            // FairGamma contains no unfair scenario at all, and both
            // members of any special pair are unfair.
            ClassicScheme::FairGamma => Some(pair("-(w)", "b(w)")),
            ClassicScheme::GammaMinus(excluded) => {
                for (i, a) in excluded.iter().enumerate() {
                    for b in excluded.iter().skip(i + 1) {
                        if is_special_pair(a, b) {
                            return Some((a.clone(), b.clone()));
                        }
                    }
                }
                None
            }
            ClassicScheme::AvoidPrefix(w0) => {
                let g = w0.to_gamma()?;
                Some(missing_pair_for_prefix(&g))
            }
            // Special pairs are unfair on both sides, hence infinitely
            // lossy — outside every finite budget.
            ClassicScheme::TotalBudget(_) => Some(pair("-(w)", "b(w)")),
            ClassicScheme::S2
            | ClassicScheme::SigmaAvoidPrefix(_)
            | ClassicScheme::SigmaTotalBudget(_) => {
                unreachable!("not a Γ-scheme; Theorem III.8 does not apply")
            }
        }
    }
}

fn pair(a: &str, b: &str) -> (Scenario, Scenario) {
    (a.parse().unwrap(), b.parse().unwrap())
}

/// Builds a special pair whose members both start with `w0` — so both avoid
/// the scheme `AvoidPrefix(w0)`.
///
/// Construction: extend `w0` by the two δ-adjacent letters picked by the
/// parity of `ind(w0)` (same-prefix case of Lemma III.4), then ride the
/// parity-matched constant tail.
fn missing_pair_for_prefix(w0: &GammaWord) -> (Scenario, Scenario) {
    let m0_even = crate::index::ind_parity_is_even(w0);
    // Same-prefix adjacent extensions (see Lemma III.4 analysis):
    // even ind(w0): w0·DropWhite (3m) and w0·Full (3m+1) — lower is even,
    //   tail DropBlack keeps them adjacent.
    // odd ind(w0): w0·Full (3m+1, even) and w0·DropWhite (3m+2) — lower
    //   even again, tail DropBlack.
    let (lo, hi) = if m0_even {
        (GammaLetter::DropWhite, GammaLetter::Full)
    } else {
        (GammaLetter::Full, GammaLetter::DropWhite)
    };
    let tail: Word = "b".parse().unwrap();
    let a = Scenario::new(w0.push(lo).to_word(), tail.clone());
    let b = Scenario::new(w0.push(hi).to_word(), tail);
    debug_assert!(is_special_pair(&a, &b), "constructed pair {a}/{b} not special");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::classic;

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    #[test]
    fn seven_environments_verdicts_match_section_iv_a() {
        // Section IV-A: environments 1–5 solvable, 6 and 7 obstructions.
        let expected = [true, true, true, true, true, false, false];
        for (env, exp) in classic::seven_environments().iter().zip(expected) {
            let v = decide_classic(env);
            assert_eq!(v.is_solvable(), exp, "{}", env.name());
        }
    }

    #[test]
    fn witnesses_are_truly_missing() {
        for env in classic::seven_environments() {
            if let Solvability::Solvable { witness, .. } = decide_classic(&env) {
                assert!(!env.contains(&witness), "{}: witness {witness} in L", env.name());
            }
        }
    }

    #[test]
    fn fair_gamma_is_solvable_via_constants() {
        let v = decide_classic(&classic::fair_gamma());
        assert!(v.is_solvable());
        // Fair(Γω) misses no fair scenario but misses both constants; the
        // procedure prefers condition iii.
        assert_eq!(v.condition(), Some(ConditionIII8::MissingConstantWhite));
    }

    #[test]
    fn almost_fair_is_solvable_via_missing_constant() {
        let v = decide_classic(&classic::almost_fair());
        assert!(v.is_solvable());
        assert_eq!(v.condition(), Some(ConditionIII8::MissingConstantBlack));
        assert_eq!(v.witness(), Some(&sc("(b)")));
    }

    #[test]
    fn gamma_minus_pair_is_solvable_via_missing_pair() {
        let l = ClassicScheme::GammaMinus(vec![sc("-(w)"), sc("b(w)")]);
        let v = decide_gamma(&l);
        assert!(v.is_solvable());
        assert_eq!(v.condition(), Some(ConditionIII8::MissingSpecialPair));
        // Upper member: ind("b")=2 > ind("-")=1 ⇒ b(w).
        assert_eq!(v.witness(), Some(&sc("b(w)")));
    }

    #[test]
    fn gamma_minus_singleton_nonconstant_is_obstruction() {
        // Γω \ {-(w)} keeps the partner b(w): every condition fails.
        let l = ClassicScheme::GammaMinus(vec![sc("-(w)")]);
        assert_eq!(decide_gamma(&l), Solvability::Obstruction);
    }

    #[test]
    fn gamma_minus_fair_singleton_is_solvable() {
        let l = ClassicScheme::GammaMinus(vec![sc("(wb)")]);
        let v = decide_gamma(&l);
        assert_eq!(v.condition(), Some(ConditionIII8::MissingFair));
        assert_eq!(v.witness(), Some(&sc("(wb)")));
    }

    #[test]
    fn r1_is_the_canonical_obstruction() {
        assert_eq!(decide_classic(&classic::r1()), Solvability::Obstruction);
    }

    #[test]
    fn avoid_prefix_solvable_with_fair_witness() {
        let l = ClassicScheme::AvoidPrefix("wb".parse().unwrap());
        let v = decide_gamma(&l);
        assert!(v.is_solvable());
        assert_eq!(v.condition(), Some(ConditionIII8::MissingFair));
        let w = v.witness().unwrap();
        assert!(w.is_fair());
        assert!(w.has_prefix(&"wb".parse().unwrap()));
    }

    #[test]
    fn missing_pair_for_prefix_construction_is_special() {
        for w0 in ["ε", "w", "b", "-", "wb", "bw-", "---", "bbw"] {
            let g: GammaWord = w0.parse().unwrap();
            let (a, b) = missing_pair_for_prefix(&g);
            assert!(is_special_pair(&a, &b), "{w0}: {a} / {b}");
            if !g.is_empty() {
                let w0w = g.to_word();
                assert!(a.has_prefix(&w0w), "{a} should start with {w0}");
                assert!(b.has_prefix(&w0w), "{b} should start with {w0}");
            }
        }
    }

    #[test]
    fn upper_member_picks_larger_index() {
        assert_eq!(upper_member(&sc("-(w)"), &sc("b(w)")), sc("b(w)"));
        assert_eq!(upper_member(&sc("b(w)"), &sc("-(w)")), sc("b(w)"));
        assert_eq!(upper_member(&sc("--(b)"), &sc("-w(b)")), sc("-w(b)"));
    }

    #[test]
    fn min_excluded_prefix_matches_paper_round_bounds() {
        // Section IV-A: S0, T solvable in 1 round; C1, S1 in exactly 2.
        let cases = [
            (classic::s0(), Some(1)),
            (classic::t_white(), Some(1)),
            (classic::t_black(), Some(1)),
            (classic::c1(), Some(2)),
            (classic::s1(), Some(2)),
            (classic::r1(), None),
            (classic::fair_gamma(), None),
            (classic::almost_fair(), None),
        ];
        for (scheme, expect) in cases {
            let got = min_excluded_prefix(&scheme, 5).map(|(p, _)| p);
            assert_eq!(got, expect, "{}", scheme.name());
        }
    }

    #[test]
    fn min_excluded_prefix_returns_excluded_word() {
        let (p, w0) = min_excluded_prefix(&classic::s1(), 5).unwrap();
        assert_eq!(p, 2);
        assert!(!classic::s1().allows_prefix(&w0.to_word()));
    }

    #[test]
    fn avoid_prefix_min_excluded_is_prefix_length() {
        let l = ClassicScheme::AvoidPrefix("bwb".parse().unwrap());
        let (p, w0) = min_excluded_prefix(&l, 6).unwrap();
        assert_eq!(p, 3);
        assert_eq!(w0.to_word(), "bwb".parse().unwrap());
    }

    #[test]
    fn total_budget_is_solvable_in_k_plus_one_rounds() {
        // The classic "f losses ⇒ f+1 rounds" bound, recovered through the
        // paper's machinery: p = min excluded prefix length = k + 1.
        for k in 0..=4usize {
            let scheme = classic::total_budget(k);
            let v = decide_classic(&scheme);
            assert!(v.is_solvable(), "budget {k}");
            assert_eq!(v.condition(), Some(ConditionIII8::MissingFair));
            let (p, w0) = min_excluded_prefix(&scheme, 6).expect("bounded");
            assert_eq!(p, k + 1, "budget {k}");
            // The excluded word has exactly k + 1 losses.
            let losses = w0
                .iter()
                .filter(|a| *a != GammaLetter::Full)
                .count();
            assert_eq!(losses, k + 1);
        }
    }

    #[test]
    fn classic_missing_pairs_verified() {
        // Every hand-picked pair in the GammaScheme impl is actually
        // special and actually missing.
        for scheme in [
            classic::s0(),
            classic::t_white(),
            classic::t_black(),
            classic::c1(),
            classic::s1(),
            classic::fair_gamma(),
        ] {
            let (a, b) = scheme.missing_special_pair().expect("pair expected");
            assert!(is_special_pair(&a, &b), "{}: {a}/{b}", scheme.name());
            assert!(!scheme.contains(&a), "{}: {a}", scheme.name());
            assert!(!scheme.contains(&b), "{}: {b}", scheme.name());
        }
    }

    mod random_schemes {
        use super::*;
        use crate::engine::run_two_process;
        use crate::letter::Role;
        use crate::prelude::AwProcess;
        use crate::scenario::enumerate_gamma_lassos;
        use proptest::prelude::*;

        fn universe() -> Vec<Scenario> {
            enumerate_gamma_lassos(2, 2)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Randomized soundness: build Γω \ X for random small X; when
            /// the theorem says solvable, the returned witness must drive
            /// A_w to consensus on random members of the scheme.
            #[test]
            fn prop_gamma_minus_witnesses_are_sound(
                picks in proptest::collection::vec(0usize..60, 1..4),
                member_picks in proptest::collection::vec(0usize..60, 3),
                inputs in proptest::collection::vec(any::<bool>(), 2),
            ) {
                let uni = universe();
                let excluded: Vec<Scenario> = picks
                    .iter()
                    .map(|&i| uni[i % uni.len()].clone())
                    .collect();
                let scheme = ClassicScheme::GammaMinus(excluded);
                let verdict = decide_gamma(&scheme);
                if let Some(w) = verdict.witness() {
                    prop_assert!(!scheme.contains(w));
                    for &m in &member_picks {
                        let s = &uni[m % uni.len()];
                        if !scheme.contains(s) {
                            continue;
                        }
                        let mut white = AwProcess::new(Role::White, inputs[0], w.clone());
                        let mut black = AwProcess::new(Role::Black, inputs[1], w.clone());
                        let out = run_two_process(&mut white, &mut black, s, 400);
                        prop_assert!(
                            out.verdict.is_consensus(),
                            "scheme {} witness {w} member {s}: {:?}",
                            scheme.name(),
                            out.verdict
                        );
                    }
                }
            }

            /// Solvability is inherited downward under inclusion: removing
            /// one more scenario from a solvable Γω \ X keeps it solvable.
            #[test]
            fn prop_solvability_inherited_by_subsets(
                picks in proptest::collection::vec(0usize..60, 2..5),
                extra in 0usize..60,
            ) {
                let uni = universe();
                let excluded: Vec<Scenario> = picks
                    .iter()
                    .map(|&i| uni[i % uni.len()].clone())
                    .collect();
                let big = ClassicScheme::GammaMinus(excluded.clone());
                let mut more = excluded;
                more.push(uni[extra % uni.len()].clone());
                let small = ClassicScheme::GammaMinus(more);
                if decide_gamma(&big).is_solvable() {
                    prop_assert!(
                        decide_gamma(&small).is_solvable(),
                        "solvability must be inherited by subsets"
                    );
                }
            }
        }
    }

    #[test]
    fn classic_missing_fairs_verified() {
        for scheme in [
            classic::s0(),
            classic::t_white(),
            classic::t_black(),
            classic::c1(),
            classic::s1(),
        ] {
            let f = scheme.missing_fair_scenario().expect("fair expected");
            assert!(f.is_fair(), "{}", scheme.name());
            assert!(!scheme.contains(&f), "{}: {f}", scheme.name());
        }
        for scheme in [classic::r1(), classic::fair_gamma(), classic::almost_fair()] {
            assert!(scheme.missing_fair_scenario().is_none(), "{}", scheme.name());
        }
    }
}
