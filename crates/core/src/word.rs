//! Finite words over `Σ` and `Γ` (partial scenarios, Definition II.3).
//!
//! A [`Word`] is a finite sequence of [`Letter`]s; a [`GammaWord`] restricts
//! letters to `Γ`. Both parse from / print to the compact one-character
//! encoding (`"-wb"` is *deliver all, drop White, drop Black*).

use crate::letter::{GammaLetter, Letter};
use std::fmt;
use std::str::FromStr;

/// A finite word over the full alphabet `Σ` — a partial scenario.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Word(pub Vec<Letter>);

/// A finite word over `Γ` — a partial scenario without double omission.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct GammaWord(pub Vec<GammaLetter>);

/// Error when parsing a word from its character encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWordError {
    offending: char,
}

impl fmt::Display for ParseWordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid letter {:?} in word", self.offending)
    }
}

impl std::error::Error for ParseWordError {}

impl Word {
    /// The empty word `ε`.
    pub fn empty() -> Self {
        Word(Vec::new())
    }

    /// The length `|w|`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The letter at position `r` (0-based), if within bounds.
    pub fn get(&self, r: usize) -> Option<Letter> {
        self.0.get(r).copied()
    }

    /// The prefix of length `r` (clamped to `len()`).
    pub fn prefix(&self, r: usize) -> Word {
        Word(self.0[..r.min(self.0.len())].to_vec())
    }

    /// `true` iff `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Word) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Appends a letter, returning the extended word.
    pub fn push(&self, a: Letter) -> Word {
        let mut v = self.0.clone();
        v.push(a);
        Word(v)
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &Word) -> Word {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Word(v)
    }

    /// The word `a^n`.
    pub fn repeat(a: Letter, n: usize) -> Word {
        Word(vec![a; n])
    }

    /// `true` iff every letter is in `Γ`.
    pub fn is_gamma(&self) -> bool {
        self.0.iter().all(|l| l.is_gamma())
    }

    /// Downcast to a `Γ`-word, or `None` if a double omission occurs.
    pub fn to_gamma(&self) -> Option<GammaWord> {
        self.0
            .iter()
            .map(|l| l.to_gamma())
            .collect::<Option<Vec<_>>>()
            .map(GammaWord)
    }

    /// Iterates over the letters.
    pub fn iter(&self) -> impl Iterator<Item = Letter> + '_ {
        self.0.iter().copied()
    }

    /// Enumerates all `4^r` words of `Σ^r` in lexicographic (base-4) order.
    pub fn enumerate_all(r: usize) -> impl Iterator<Item = Word> {
        LexWords {
            len: r,
            next: Some(vec![0u8; r]),
            radix: 4,
        }
        .map(|digits| Word(digits.into_iter().map(|d| Letter::ALL[d as usize]).collect()))
    }
}

impl GammaWord {
    /// The empty word `ε`.
    pub fn empty() -> Self {
        GammaWord(Vec::new())
    }

    /// The length `|w|`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The letter at position `r` (0-based), if within bounds.
    pub fn get(&self, r: usize) -> Option<GammaLetter> {
        self.0.get(r).copied()
    }

    /// The prefix of length `r` (clamped to `len()`).
    pub fn prefix(&self, r: usize) -> GammaWord {
        GammaWord(self.0[..r.min(self.0.len())].to_vec())
    }

    /// `true` iff `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &GammaWord) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Appends a letter, returning the extended word.
    pub fn push(&self, a: GammaLetter) -> GammaWord {
        let mut v = self.0.clone();
        v.push(a);
        GammaWord(v)
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &GammaWord) -> GammaWord {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        GammaWord(v)
    }

    /// The word `a^n`.
    pub fn repeat(a: GammaLetter, n: usize) -> GammaWord {
        GammaWord(vec![a; n])
    }

    /// Upcast into a `Σ`-word.
    pub fn to_word(&self) -> Word {
        Word(self.0.iter().map(|g| g.to_letter()).collect())
    }

    /// Iterates over the letters.
    pub fn iter(&self) -> impl Iterator<Item = GammaLetter> + '_ {
        self.0.iter().copied()
    }

    /// Enumerates all `3^r` words of `Γ^r` in the order induced by
    /// `GammaLetter::ALL` (lexicographic base 3). This is **not** index
    /// order; use [`crate::index::ind_inv`] to walk in index order.
    pub fn enumerate_all(r: usize) -> impl Iterator<Item = GammaWord> {
        LexWords {
            len: r,
            next: Some(vec![0u8; r]),
            radix: 3,
        }
        .map(|digits| {
            GammaWord(
                digits
                    .into_iter()
                    .map(|d| GammaLetter::ALL[d as usize])
                    .collect(),
            )
        })
    }
}

/// Iterator over fixed-length digit strings in lexicographic order.
struct LexWords {
    len: usize,
    next: Option<Vec<u8>>,
    radix: u8,
}

impl Iterator for LexWords {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        let cur = self.next.take()?;
        // Compute the successor in base-`radix`, most significant digit first.
        let mut succ = cur.clone();
        let mut i = self.len;
        loop {
            if i == 0 {
                // Overflow: `cur` was the last word.
                self.next = None;
                break;
            }
            i -= 1;
            if succ[i] + 1 < self.radix {
                succ[i] += 1;
                for d in succ[i + 1..].iter_mut() {
                    *d = 0;
                }
                self.next = Some(succ);
                break;
            }
        }
        Some(cur)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("ε");
        }
        for l in &self.0 {
            write!(f, "{}", l.to_char())?;
        }
        Ok(())
    }
}

impl fmt::Display for GammaWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("ε");
        }
        for l in &self.0 {
            write!(f, "{}", l.to_char())?;
        }
        Ok(())
    }
}

impl FromStr for Word {
    type Err = ParseWordError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "ε" {
            return Ok(Word::empty());
        }
        s.chars()
            .map(|c| Letter::from_char(c).ok_or(ParseWordError { offending: c }))
            .collect::<Result<Vec<_>, _>>()
            .map(Word)
    }
}

impl FromStr for GammaWord {
    type Err = ParseWordError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "ε" {
            return Ok(GammaWord::empty());
        }
        s.chars()
            .map(|c| GammaLetter::from_char(c).ok_or(ParseWordError { offending: c }))
            .collect::<Result<Vec<_>, _>>()
            .map(GammaWord)
    }
}

impl FromIterator<Letter> for Word {
    fn from_iter<T: IntoIterator<Item = Letter>>(iter: T) -> Self {
        Word(iter.into_iter().collect())
    }
}

impl FromIterator<GammaLetter> for GammaWord {
    fn from_iter<T: IntoIterator<Item = GammaLetter>>(iter: T) -> Self {
        GammaWord(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gw(s: &str) -> GammaWord {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["-", "w", "b", "-wb", "wwbb--", "ε"] {
            let w: GammaWord = s.parse().unwrap();
            assert_eq!(w.to_string(), if s == "ε" { "ε".into() } else { s.to_string() });
        }
        let w: Word = "-wbx".parse().unwrap();
        assert_eq!(w.to_string(), "-wbx");
        assert!("z".parse::<Word>().is_err());
        assert!("x".parse::<GammaWord>().is_err());
    }

    #[test]
    fn dot_alias_for_full() {
        assert_eq!("..".parse::<GammaWord>().unwrap(), gw("--"));
    }

    #[test]
    fn prefix_relation() {
        let w = gw("-wb");
        assert!(gw("").is_prefix_of(&w));
        assert!(gw("-").is_prefix_of(&w));
        assert!(gw("-w").is_prefix_of(&w));
        assert!(gw("-wb").is_prefix_of(&w));
        assert!(!gw("w").is_prefix_of(&w));
        assert!(!gw("-wbb").is_prefix_of(&w));
        assert_eq!(w.prefix(2), gw("-w"));
        assert_eq!(w.prefix(10), w);
    }

    #[test]
    fn concat_and_push() {
        assert_eq!(gw("-w").concat(&gw("b")), gw("-wb"));
        assert_eq!(gw("-w").push(GammaLetter::DropBlack), gw("-wb"));
        assert_eq!(
            GammaWord::repeat(GammaLetter::DropWhite, 3),
            gw("www")
        );
    }

    #[test]
    fn gamma_upcast_downcast() {
        let w: Word = "-wb".parse().unwrap();
        assert!(w.is_gamma());
        assert_eq!(w.to_gamma().unwrap().to_word(), w);
        let dbl: Word = "-x".parse().unwrap();
        assert!(!dbl.is_gamma());
        assert_eq!(dbl.to_gamma(), None);
    }

    #[test]
    fn enumerate_gamma_counts_and_uniqueness() {
        for r in 0..6 {
            let all: Vec<_> = GammaWord::enumerate_all(r).collect();
            assert_eq!(all.len(), 3usize.pow(r as u32));
            let set: std::collections::HashSet<_> = all.iter().cloned().collect();
            assert_eq!(set.len(), all.len());
            assert!(all.iter().all(|w| w.len() == r));
        }
    }

    #[test]
    fn enumerate_sigma_counts() {
        for r in 0..5 {
            assert_eq!(Word::enumerate_all(r).count(), 4usize.pow(r as u32));
        }
    }

    #[test]
    fn enumerate_zero_length_is_epsilon_only() {
        let all: Vec<_> = GammaWord::enumerate_all(0).collect();
        assert_eq!(all, vec![GammaWord::empty()]);
    }

    proptest! {
        #[test]
        fn prop_parse_display_roundtrip(s in "[-wb]{0,32}") {
            let w: GammaWord = s.parse().unwrap();
            if !s.is_empty() {
                prop_assert_eq!(w.to_string(), s);
            }
        }

        #[test]
        fn prop_prefix_of_concat(a in "[-wb]{0,16}", b in "[-wb]{0,16}") {
            let wa: GammaWord = a.parse().unwrap();
            let wb: GammaWord = b.parse().unwrap();
            let cat = wa.concat(&wb);
            prop_assert!(wa.is_prefix_of(&cat));
            prop_assert_eq!(cat.len(), wa.len() + wb.len());
            prop_assert_eq!(cat.prefix(wa.len()), wa);
        }
    }
}
