//! Communication scenarios: ultimately periodic ω-words `u·v^ω`.
//!
//! The paper quantifies over arbitrary infinite words; every concrete
//! scenario this library manipulates — witnesses of Theorem III.8, members
//! of special pairs, adversary scripts — is *ultimately periodic* (a
//! "lasso"). This is lossless for every decision the paper needs: an
//! ω-regular scheme is nonempty iff it contains a lasso, and fairness,
//! membership, and the special-pair relation are all decidable on lassos.
//!
//! Textual form: `"prefix(cycle)"`, e.g. `"wb(-)"` is
//! `DropWhite·DropBlack·Full^ω` and `"(b)"` is `DropBlack^ω`.

use crate::letter::{GammaLetter, Letter, Role};
use crate::word::{GammaWord, Word};
use std::fmt;
use std::str::FromStr;

/// An ultimately periodic infinite word `prefix · cycle^ω` over `Σ`.
///
/// Invariant: `cycle` is nonempty. Equality is *semantic*: two lassos are
/// equal iff they denote the same ω-word, regardless of representation.
#[derive(Debug, Clone)]
pub struct Scenario {
    prefix: Word,
    cycle: Word,
}

/// Error when parsing a scenario literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseScenarioError {
    /// A character outside the letter encoding or the `(`/`)` delimiters.
    BadSyntax,
    /// The periodic part was empty (`"w()"` or `"w"`).
    EmptyCycle,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseScenarioError::BadSyntax => f.write_str("expected \"prefix(cycle)\""),
            ParseScenarioError::EmptyCycle => f.write_str("scenario cycle must be nonempty"),
        }
    }
}

impl std::error::Error for ParseScenarioError {}

impl Scenario {
    /// Builds `prefix · cycle^ω`.
    ///
    /// # Panics
    /// Panics when `cycle` is empty — a lasso must loop.
    pub fn new(prefix: Word, cycle: Word) -> Scenario {
        assert!(!cycle.is_empty(), "scenario cycle must be nonempty");
        Scenario { prefix, cycle }
    }

    /// The purely periodic scenario `cycle^ω`.
    pub fn periodic(cycle: Word) -> Scenario {
        Scenario::new(Word::empty(), cycle)
    }

    /// The constant scenario `a^ω`.
    pub fn constant(a: Letter) -> Scenario {
        Scenario::periodic(Word(vec![a]))
    }

    /// The constant `Γ` scenario `a^ω`.
    pub fn constant_gamma(a: GammaLetter) -> Scenario {
        Scenario::constant(a.to_letter())
    }

    /// `u · w` — the scenario `w` with `u` prepended.
    pub fn prepend(&self, u: &Word) -> Scenario {
        Scenario::new(u.concat(&self.prefix), self.cycle.clone())
    }

    /// The lasso's transient part (not canonicalized).
    pub fn lasso_prefix(&self) -> &Word {
        &self.prefix
    }

    /// The lasso's periodic part (not canonicalized).
    pub fn lasso_cycle(&self) -> &Word {
        &self.cycle
    }

    /// The letter at round `r` (0-based).
    pub fn letter_at(&self, r: usize) -> Letter {
        if r < self.prefix.len() {
            self.prefix.get(r).unwrap()
        } else {
            let i = (r - self.prefix.len()) % self.cycle.len();
            self.cycle.get(i).unwrap()
        }
    }

    /// The prefix `w_r` of length `r` (Definition II.3 notation).
    pub fn prefix_word(&self, r: usize) -> Word {
        (0..r).map(|i| self.letter_at(i)).collect()
    }

    /// `true` iff `u` is a prefix of this scenario.
    pub fn has_prefix(&self, u: &Word) -> bool {
        u.iter().enumerate().all(|(i, a)| self.letter_at(i) == a)
    }

    /// `true` iff every letter (transient and periodic) lies in `Γ`.
    pub fn is_gamma(&self) -> bool {
        self.prefix.is_gamma() && self.cycle.is_gamma()
    }

    /// The suffix scenario starting at round `r` (drops the first `r`
    /// letters).
    pub fn suffix(&self, r: usize) -> Scenario {
        if r <= self.prefix.len() {
            Scenario::new(Word(self.prefix.0[r..].to_vec()), self.cycle.clone())
        } else {
            let shift = (r - self.prefix.len()) % self.cycle.len();
            let mut rotated = self.cycle.0[shift..].to_vec();
            rotated.extend_from_slice(&self.cycle.0[..shift]);
            Scenario::periodic(Word(rotated))
        }
    }

    /// Unfairness (Definition III.6): from some round on, *every* letter
    /// kills White's message, or from some round on every letter kills
    /// Black's.
    ///
    /// A message system is fair when infinitely many sent messages get
    /// through in each direction; a lasso is unfair iff its cycle is
    /// uniformly lossy in one direction.
    pub fn is_unfair(&self) -> bool {
        self.eventually_always_drops(Role::White) || self.eventually_always_drops(Role::Black)
    }

    /// `true` iff the scenario is fair (Example II.8).
    pub fn is_fair(&self) -> bool {
        !self.is_unfair()
    }

    /// `true` iff from some round on, every letter drops `role`'s message.
    pub fn eventually_always_drops(&self, role: Role) -> bool {
        self.cycle.iter().all(|a| a.drops_from(role))
    }

    /// Number of letters in the canonical transient + periodic parts; a
    /// bound `B` such that two scenarios with representation size ≤ `B`
    /// agreeing on their first `B + B` letters are equal.
    pub fn repr_len(&self) -> usize {
        self.prefix.len() + self.cycle.len()
    }

    /// Canonical form: the shortest prefix and a primitive (aperiodic)
    /// cycle. Two equal scenarios have identical canonical forms.
    pub fn canonicalize(&self) -> Scenario {
        // 1. Reduce the cycle to its primitive root.
        let cyc = &self.cycle.0;
        let n = cyc.len();
        let mut prim = n;
        for d in 1..n {
            if n.is_multiple_of(d) && (0..n).all(|i| cyc[i] == cyc[i % d]) {
                prim = d;
                break;
            }
        }
        let mut cycle: Vec<Letter> = cyc[..prim].to_vec();
        let mut prefix: Vec<Letter> = self.prefix.0.clone();
        // 2. Absorb the prefix tail into the cycle: while the last prefix
        //    letter equals the last cycle letter, rotate the cycle right.
        while let Some(&last) = prefix.last() {
            if last == *cycle.last().unwrap() {
                prefix.pop();
                cycle.rotate_right(1);
            } else {
                break;
            }
        }
        Scenario {
            prefix: Word(prefix),
            cycle: Word(cycle),
        }
    }

    /// Iterator over the first `n` letters.
    pub fn letters(&self, n: usize) -> impl Iterator<Item = Letter> + '_ {
        (0..n).map(|i| self.letter_at(i))
    }
}

impl PartialEq for Scenario {
    fn eq(&self, other: &Self) -> bool {
        // Two ultimately periodic words are equal iff they agree on a
        // prefix of length max(|u|,|u'|) + lcm(|v|,|v'|).
        let horizon = self.prefix.len().max(other.prefix.len())
            + lcm(self.cycle.len(), other.cycle.len());
        (0..horizon).all(|i| self.letter_at(i) == other.letter_at(i))
    }
}

impl Eq for Scenario {}

impl std::hash::Hash for Scenario {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let c = self.canonicalize();
        c.prefix.hash(state);
        c.cycle.hash(state);
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.prefix.0 {
            write!(f, "{}", l.to_char())?;
        }
        f.write_str("(")?;
        for l in &self.cycle.0 {
            write!(f, "{}", l.to_char())?;
        }
        f.write_str(")")
    }
}

impl FromStr for Scenario {
    type Err = ParseScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let open = s.find('(').ok_or(ParseScenarioError::BadSyntax)?;
        if !s.ends_with(')') {
            return Err(ParseScenarioError::BadSyntax);
        }
        let prefix_s = &s[..open];
        let cycle_s = &s[open + 1..s.len() - 1];
        if cycle_s.is_empty() {
            return Err(ParseScenarioError::EmptyCycle);
        }
        let prefix: Word = prefix_s.parse().map_err(|_| ParseScenarioError::BadSyntax)?;
        let cycle: Word = cycle_s.parse().map_err(|_| ParseScenarioError::BadSyntax)?;
        Ok(Scenario::new(prefix, cycle))
    }
}

/// Enumerates all `Γ`-lassos with `|prefix| ≤ max_prefix` and
/// `1 ≤ |cycle| ≤ max_cycle`, deduplicated semantically.
pub fn enumerate_gamma_lassos(max_prefix: usize, max_cycle: usize) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for pl in 0..=max_prefix {
        for prefix in GammaWord::enumerate_all(pl) {
            for cl in 1..=max_cycle {
                for cycle in GammaWord::enumerate_all(cl) {
                    let s = Scenario::new(prefix.to_word(), cycle.to_word());
                    let canon = s.canonicalize();
                    let key = (canon.prefix.clone(), canon.cycle.clone());
                    if seen.insert(key) {
                        out.push(canon);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["(-)", "w(b)", "wb(-w)", "(wxb)"] {
            assert_eq!(sc(s).to_string(), s);
        }
        assert!("".parse::<Scenario>().is_err());
        assert!("w()".parse::<Scenario>().is_err());
        assert!("w".parse::<Scenario>().is_err());
        assert!("w(z)".parse::<Scenario>().is_err());
    }

    #[test]
    fn letter_at_walks_prefix_then_cycle() {
        let s = sc("wb(-w)");
        let got: String = s.letters(8).map(|l| l.to_char()).collect();
        assert_eq!(got, "wb-w-w-w");
    }

    #[test]
    fn prefix_word_matches_letters() {
        let s = sc("b(w-)");
        assert_eq!(s.prefix_word(5).to_string(), "bw-w-");
        assert_eq!(s.prefix_word(0), Word::empty());
        assert!(s.has_prefix(&"bw-".parse().unwrap()));
        assert!(!s.has_prefix(&"bb".parse().unwrap()));
    }

    #[test]
    fn semantic_equality_ignores_representation() {
        assert_eq!(sc("(w)"), sc("w(ww)"));
        assert_eq!(sc("(-w)"), sc("-w(-w-w)"));
        assert_eq!(sc("-(b)"), sc("-(bb)"));
        assert_ne!(sc("(w)"), sc("(b)"));
        assert_ne!(sc("w(-)"), sc("(-)"));
    }

    #[test]
    fn canonicalize_produces_primitive_cycle_and_minimal_prefix() {
        let c = sc("www(ww)").canonicalize();
        assert_eq!(c.lasso_prefix().len(), 0);
        assert_eq!(c.lasso_cycle().to_string(), "w");

        let c = sc("-w(bwbw)").canonicalize();
        assert_eq!(c.lasso_cycle().len(), 2);
        assert_eq!(sc("-w(bwbw)"), c);

        // Prefix tail folding: w(bw) = (wb).
        let c = sc("w(bw)").canonicalize();
        assert_eq!(c.lasso_prefix().len(), 0);
        assert_eq!(sc("w(bw)"), sc("(wb)"));
    }

    #[test]
    fn hash_respects_semantic_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: &Scenario| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&sc("(w)")), h(&sc("w(ww)")));
        assert_eq!(h(&sc("w(bw)")), h(&sc("(wb)")));
    }

    #[test]
    fn fairness_classification() {
        assert!(sc("(-)").is_fair());
        assert!(sc("(wb)").is_fair(), "alternating loss is fair");
        assert!(sc("wwww(b-)").is_fair());
        assert!(!sc("(w)").is_fair(), "White silenced forever");
        assert!(!sc("(b)").is_fair());
        assert!(!sc("-b-b(w)").is_fair());
        assert!(!sc("(x)").is_fair(), "total silence is unfair");
    }

    #[test]
    fn unfair_direction() {
        assert!(sc("(w)").eventually_always_drops(Role::White));
        assert!(!sc("(w)").eventually_always_drops(Role::Black));
        // Double omission drops both directions.
        assert!(sc("(x)").eventually_always_drops(Role::White));
        assert!(sc("(x)").eventually_always_drops(Role::Black));
    }

    #[test]
    fn suffix_shifts_correctly() {
        let s = sc("wb(-w)");
        assert_eq!(s.suffix(0), s);
        assert_eq!(s.suffix(1), sc("b(-w)"));
        assert_eq!(s.suffix(2), sc("(-w)"));
        assert_eq!(s.suffix(3), sc("(w-)"));
        assert_eq!(s.suffix(4), sc("(-w)"));
    }

    #[test]
    fn gamma_check() {
        assert!(sc("wb(-)").is_gamma());
        assert!(!sc("x(-)").is_gamma());
        assert!(!sc("-(x)").is_gamma());
    }

    #[test]
    fn enumerate_lassos_dedups() {
        let lassos = enumerate_gamma_lassos(1, 2);
        // All are canonical and pairwise distinct.
        for (i, a) in lassos.iter().enumerate() {
            for b in &lassos[i + 1..] {
                assert_ne!(a, b, "{a} vs {b}");
            }
        }
        // Contains the three constants.
        for c in ["(-)", "(w)", "(b)"] {
            assert!(lassos.contains(&sc(c)));
        }
    }

    #[test]
    fn prepend_shifts_rounds() {
        let s = sc("(b)").prepend(&"w-".parse().unwrap());
        assert_eq!(s, sc("w-(b)"));
        assert_eq!(s.letter_at(0), Letter::DropWhite);
        assert_eq!(s.letter_at(2), Letter::DropBlack);
    }

    fn arb_scenario() -> impl Strategy<Value = Scenario> {
        ("[-wbx]{0,6}", "[-wbx]{1,5}").prop_map(|(p, c)| {
            Scenario::new(p.parse().unwrap(), c.parse().unwrap())
        })
    }

    proptest! {
        #[test]
        fn prop_canonicalize_preserves_meaning(s in arb_scenario()) {
            let c = s.canonicalize();
            prop_assert_eq!(&c, &s);
            for r in 0..24 {
                prop_assert_eq!(c.letter_at(r), s.letter_at(r));
            }
        }

        #[test]
        fn prop_equality_iff_letterwise(a in arb_scenario(), b in arb_scenario()) {
            let horizon = a.repr_len().max(b.repr_len()) * 2 + 4;
            let same = (0..horizon).all(|r| a.letter_at(r) == b.letter_at(r));
            prop_assert_eq!(a == b, same);
        }

        #[test]
        fn prop_suffix_consistent(s in arb_scenario(), r in 0usize..12) {
            let suf = s.suffix(r);
            for i in 0..16 {
                prop_assert_eq!(suf.letter_at(i), s.letter_at(r + i));
            }
        }

        #[test]
        fn prop_parse_display_roundtrip(s in arb_scenario()) {
            let text = s.to_string();
            let back: Scenario = text.parse().unwrap();
            prop_assert_eq!(back, s);
        }
    }
}
