//! # minobs-core — omission schemes for the Coordinated Attack Problem
//!
//! An executable rendition of Fevat & Godard, *"Minimal Obstructions for the
//! Coordinated Attack Problem and Beyond"* (IPPS 2011).
//!
//! Two synchronous processes, **White** (`◻`) and **Black** (`◼`), exchange
//! one message each per round. The *environment* decides, per round, which
//! of the two messages are lost. The paper's central objects:
//!
//! * a per-round fault pattern is a [`Letter`] from the four-letter alphabet
//!   `Σ`; the sub-alphabet `Γ` ([`GammaLetter`]) excludes the simultaneous
//!   double omission;
//! * an infinite sequence of letters is a *communication scenario*
//!   ([`Scenario`] — represented as an ultimately periodic lasso `u·v^ω`);
//! * an arbitrary set of scenarios is an *omission scheme*
//!   ([`scheme::OmissionScheme`]); the paper's catalog of classic schemes
//!   (Examples II.5–II.11) lives in [`scheme::classic`];
//! * a scheme is *solvable* when some algorithm solves Uniform Consensus for
//!   two processes against every scenario of the scheme, and an
//!   *obstruction* otherwise.
//!
//! The headline results reproduced here:
//!
//! * the scenario index calculus `ind : Γ* → [0, 3^r-1]`
//!   ([`index`], Definition III.1, Lemmas III.2/III.4);
//! * *special pairs* of unfair scenarios ([`spair`], Definition III.7);
//! * the full characterization of solvable schemes without double omission
//!   ([`theorem`], Theorem III.8), with witness extraction;
//! * the explicit consensus algorithm `A_w` ([`algorithm`], Algorithm 1),
//!   its early-stopping variant (Proposition III.15) and the intuitive
//!   algorithm for the almost-fair scheme (Corollary IV.1);
//! * a synchronous two-process execution engine ([`engine`]) that runs any
//!   protocol against any scenario and audits the consensus properties;
//! * minimal-obstruction analysis ([`minimal`], Section IV-C).
//!
//! ## Quick start
//!
//! ```
//! use minobs_core::prelude::*;
//!
//! // "At most one of the two processes ever loses messages" —
//! // environment 5 of Section II-A2. Solvable per Theorem III.8.
//! let s1 = classic::s1();
//! let verdict = decide_classic(&s1);
//! assert!(verdict.is_solvable());
//!
//! // Run the paper's algorithm A_w against a scenario of S1 and check
//! // agreement + validity.
//! let w = verdict.witness().expect("solvable schemes carry a witness");
//! let scenario: Scenario = "ww(-)".parse().unwrap(); // two White losses, then clean
//! let outcome = run_two_process(
//!     &mut AwProcess::new(Role::White, true, w.clone()),
//!     &mut AwProcess::new(Role::Black, false, w.clone()),
//!     &scenario,
//!     64,
//! );
//! outcome.verdict.expect_consensus();
//! ```

pub mod algorithm;
pub mod engine;
pub mod index;
pub mod letter;
pub mod minimal;
pub mod scenario;
pub mod scheme;
pub mod spair;
pub mod theorem;
pub mod valency;
pub mod word;

pub mod prelude {
    //! Convenience re-exports of the most commonly used items.
    pub use crate::algorithm::{AwProcess, EarlyStoppingAw, IntuitiveAlmostFair};
    pub use crate::engine::{run_two_process, Outcome, TwoProcessProtocol, Verdict};
    pub use crate::index::{ind, ind_inv, IndexTracker};
    pub use crate::letter::{GammaLetter, Letter, Role};
    pub use crate::scenario::Scenario;
    pub use crate::scheme::{classic, ClassicScheme, GammaScheme, OmissionScheme};
    pub use crate::spair::{is_special_pair, special_partner};
    pub use crate::theorem::{decide_classic, decide_gamma, Solvability};
    pub use crate::word::{GammaWord, Word};
}

pub use prelude::*;
