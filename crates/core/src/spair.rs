//! Special pairs of scenarios (Definition III.7).
//!
//! `(w, w') ∈ SPair(Γ^ω)` iff `w ≠ w'` and `|ind(w_r) - ind(w'_r)| ≤ 1`
//! for every round `r` — the two scenarios stay *index-adjacent forever*.
//! Special pairs are the fault lines of the impossibility proof: along a
//! special pair, at every round one of the two processes cannot tell the
//! scenarios apart (Corollary III.5), so an algorithm that must decide on
//! both members of the pair can be driven to disagreement.
//!
//! ## The decision procedure
//!
//! The index difference `d_r = ind(w_r) - ind(w'_r)` evolves as
//! `d_{r+1} = 3·d_r + s - s'` with `s, s' ∈ {-1, 0, 1}`, so
//!
//! * once `|d_r| ≥ 2`, `|d_{r+1}| ≥ 3·2 - 2 = 4` — divergence is
//!   permanent: the pair is not special;
//! * once `d_r ≠ 0`, `|d_{r+1}| ≥ 3·1 - 2 = 1` — the words can never
//!   re-converge, so `w ≠ w'` iff some `d_r ≠ 0`.
//!
//! On ultimately periodic inputs the tuple
//! (position in `w`'s lasso, position in `w'`'s lasso, `d`, parity of
//! `ind(w_r)`, parity of `ind(w'_r)`) lives in a finite space and evolves
//! deterministically, so the run is eventually periodic and the decision
//! terminates within `|state space|` steps.

use crate::letter::GammaLetter;
use crate::scenario::Scenario;
use crate::word::GammaWord;
use crate::{index, letter::Role};
use minobs_bigint::UBig;
use std::collections::HashSet;

/// Outcome of the special-pair decision, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SPairVerdict {
    /// The pair is special: the words differ yet their indexes stay
    /// adjacent forever. `first_divergence` is the first round with
    /// `d ≠ 0`.
    Special { first_divergence: usize },
    /// The words are equal (a pair requires `w ≠ w'`).
    EqualWords,
    /// Indexes drift at round `r` (`|d| ≥ 2` from round `r` on).
    Diverges { round: usize },
    /// One of the scenarios uses a double omission (outside `Γ^ω`).
    NotGamma,
}

impl SPairVerdict {
    /// `true` iff the verdict is [`SPairVerdict::Special`].
    pub fn is_special(&self) -> bool {
        matches!(self, SPairVerdict::Special { .. })
    }
}

/// Decides `(w, w') ∈ SPair(Γ^ω)` with a reasoned verdict.
pub fn classify_pair(w: &Scenario, w2: &Scenario) -> SPairVerdict {
    if !w.is_gamma() || !w2.is_gamma() {
        return SPairVerdict::NotGamma;
    }
    // State: positions in both lassos, d ∈ {-1,0,1}, both index parities.
    let mut d: i8 = 0;
    let mut even1 = true;
    let mut even2 = true;
    let mut first_divergence: Option<usize> = None;
    let mut seen: HashSet<(usize, usize, i8, bool, bool)> = HashSet::new();

    let pos = |s: &Scenario, r: usize| -> usize {
        let p = s.lasso_prefix().len();
        if r < p {
            r
        } else {
            p + (r - p) % s.lasso_cycle().len()
        }
    };

    let mut r = 0usize;
    loop {
        let state = (pos(w, r), pos(w2, r), d, even1, even2);
        if !seen.insert(state) {
            // The run is periodic from here; nothing new can happen.
            return match first_divergence {
                Some(first_divergence) => SPairVerdict::Special { first_divergence },
                None => SPairVerdict::EqualWords,
            };
        }
        let a = w.letter_at(r).to_gamma().expect("checked gamma");
        let b = w2.letter_at(r).to_gamma().expect("checked gamma");
        let s = if even1 { a.delta() } else { -a.delta() };
        let s2 = if even2 { b.delta() } else { -b.delta() };
        let next = 3 * (d as i16) + (s as i16) - (s2 as i16);
        if next.abs() >= 2 {
            return SPairVerdict::Diverges { round: r };
        }
        d = next as i8;
        if d != 0 && first_divergence.is_none() {
            first_divergence = Some(r);
        }
        // Parity flips exactly on Full letters.
        if a == GammaLetter::Full {
            even1 = !even1;
        }
        if b == GammaLetter::Full {
            even2 = !even2;
        }
        r += 1;
    }
}

/// `(w, w') ∈ SPair(Γ^ω)`?
pub fn is_special_pair(w: &Scenario, w2: &Scenario) -> bool {
    classify_pair(w, w2).is_special()
}

/// The special partners of an *unfair* `Γ`-scenario `w = u·drop(x)^ω`.
///
/// Searches alignments `len = 0, 1, …, max_prefix_len`: the candidate
/// partner at alignment `len` is `ind⁻¹(ind(w_len) ± 1) · drop(x)^ω`
/// (the construction inside Lemma III.11). Every returned scenario is
/// verified special by [`classify_pair`] and deduplicated.
///
/// Returns an empty vector when `w` is fair (fair scenarios have no special
/// partner: their index wanders).
pub fn special_partners(w: &Scenario, max_prefix_len: usize) -> Vec<Scenario> {
    if !w.is_gamma() || !w.is_unfair() {
        return Vec::new();
    }
    let tail_role = if w.eventually_always_drops(Role::White) {
        Role::White
    } else {
        Role::Black
    };
    let tail = GammaLetter::dropping(tail_role);

    let mut out: Vec<Scenario> = Vec::new();
    let mut tracker = index::IndexTracker::new();
    for len in 0..=max_prefix_len {
        for neighbour in neighbour_values(tracker.value()) {
            if let Some(prefix) = index::ind_inv(len, &neighbour) {
                let cand = Scenario::new(prefix.to_word(), GammaWord(vec![tail]).to_word());
                if is_special_pair(w, &cand) && !out.contains(&cand) {
                    out.push(cand);
                }
            }
        }
        if len < max_prefix_len {
            tracker.push(w.letter_at(len).to_gamma().expect("checked gamma"));
        }
    }
    out
}

/// The canonical single special partner used by the impossibility proof
/// (Lemma III.11), if any exists within the alignment bound.
pub fn special_partner(w: &Scenario) -> Option<Scenario> {
    let bound = w.repr_len() + 2;
    special_partners(w, bound).into_iter().next()
}

fn neighbour_values(v: &UBig) -> Vec<UBig> {
    let mut out = vec![v.succ()];
    if let Some(p) = v.pred() {
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ind;
    use minobs_bigint::UBig;

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    /// Brute-force special-pair check over the first `horizon` rounds.
    fn adjacent_up_to(w: &Scenario, w2: &Scenario, horizon: usize) -> bool {
        (0..=horizon).all(|r| {
            let a = ind(&w.prefix_word(r).to_gamma().unwrap());
            let b = ind(&w2.prefix_word(r).to_gamma().unwrap());
            a.abs_diff(&b) <= UBig::one()
        })
    }

    #[test]
    fn equal_words_are_not_special() {
        assert_eq!(classify_pair(&sc("(w)"), &sc("w(ww)")), SPairVerdict::EqualWords);
        assert_eq!(classify_pair(&sc("(-)"), &sc("(-)")), SPairVerdict::EqualWords);
    }

    #[test]
    fn double_omission_rejected() {
        assert_eq!(classify_pair(&sc("(x)"), &sc("(w)")), SPairVerdict::NotGamma);
    }

    #[test]
    fn canonical_special_pair_white_tail() {
        // ind("-") = 1 is odd, so the DropWhite tail keeps the pair
        // ( -(w) , b(w) ) index-adjacent forever: 1/2, 5/6, 17/18, …
        let w = sc("-(w)");
        let w2 = sc("b(w)");
        assert!(is_special_pair(&w, &w2), "{:?}", classify_pair(&w, &w2));
        assert!(adjacent_up_to(&w, &w2, 30));
    }

    #[test]
    fn canonical_special_pair_black_tail() {
        // ind("--") = 4 is even, so the DropBlack tail keeps the pair
        // ( --(b) , -w(b) ) adjacent forever (Lemma III.11's construction).
        let w = sc("--(b)");
        let w2 = sc("-w(b)");
        assert!(is_special_pair(&w, &w2), "{:?}", classify_pair(&w, &w2));
        assert!(adjacent_up_to(&w, &w2, 30));
    }

    #[test]
    fn constants_have_no_special_partner() {
        // The two constant unfair scenarios sit at the extreme indexes
        // (0 and 3^r - 1) with the wrong parity on the inside: no word can
        // stay adjacent to them. This is exactly why Theorem III.8 carries
        // the separate conditions III.8.iii and III.8.iv for them.
        assert!(special_partners(&sc("(w)"), 8).is_empty());
        assert!(special_partners(&sc("(b)"), 8).is_empty());
        // Wrong-parity prefixes with the same tail diverge:
        assert!(!is_special_pair(&sc("(w)"), &sc("-(w)")));
        assert!(!is_special_pair(&sc("(b)"), &sc("-(b)")));
    }

    #[test]
    fn special_is_symmetric() {
        let w = sc("-(w)");
        let w2 = sc("b(w)");
        assert_eq!(is_special_pair(&w, &w2), is_special_pair(&w2, &w));
        assert!(is_special_pair(&w, &w2));
    }

    #[test]
    fn fair_scenarios_have_no_partner() {
        assert!(special_partners(&sc("(-)"), 8).is_empty());
        assert!(special_partners(&sc("(wb)"), 8).is_empty());
    }

    #[test]
    fn different_tails_diverge() {
        let v = classify_pair(&sc("(w)"), &sc("(b)"));
        assert!(matches!(v, SPairVerdict::Diverges { .. }), "{v:?}");
    }

    #[test]
    fn verdict_matches_bruteforce_on_lasso_pairs() {
        let lassos = crate::scenario::enumerate_gamma_lassos(2, 2);
        for a in &lassos {
            for b in &lassos {
                let verdict = classify_pair(a, b);
                // Brute-force horizon: beyond the state-space bound the
                // verdict is settled; 40 rounds is ample for these sizes.
                let adjacent = adjacent_up_to(a, b, 40);
                match &verdict {
                    SPairVerdict::Special { .. } => {
                        assert!(adjacent, "{a} {b}");
                        assert_ne!(a, b);
                    }
                    SPairVerdict::EqualWords => assert_eq!(a, b, "{a} {b}"),
                    SPairVerdict::Diverges { .. } => {
                        assert!(!adjacent || a == b, "{a} {b} {verdict:?}");
                        assert!(!adjacent, "{a} {b}");
                    }
                    SPairVerdict::NotGamma => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn partners_are_verified_and_unfair() {
        let partners = special_partners(&sc("-(w)"), 4);
        assert!(!partners.is_empty());
        for p in &partners {
            assert!(is_special_pair(&sc("-(w)"), p), "{p}");
            assert!(p.is_unfair(), "partners of unfair scenarios are unfair: {p}");
        }
    }

    #[test]
    fn canonical_partner_exists_for_nonconstant_unfair() {
        // Every unfair Γ-scenario except the two constants has a special
        // partner: the parity of the settled index picks the `+1` or `-1`
        // neighbour, and exactly one of the two is always available.
        for s in ["-(w)", "--(b)", "wb(w)", "b-(b)", "w-(w)", "-w(b)", "bbb-(b)"] {
            let w = sc(s);
            let p = special_partner(&w);
            assert!(p.is_some(), "no partner for {s}");
            assert!(is_special_pair(&w, &p.unwrap()));
        }
    }

    #[test]
    fn nonconstant_unfair_lassos_all_have_partners() {
        // Exhaustive over the small lasso universe: unfair and not (w)^ω or
        // (b)^ω implies a partner exists.
        for w in crate::scenario::enumerate_gamma_lassos(2, 2) {
            if !w.is_unfair() || w == sc("(w)") || w == sc("(b)") {
                continue;
            }
            assert!(
                special_partner(&w).is_some(),
                "unfair non-constant {w} should have a partner"
            );
        }
    }

    #[test]
    fn special_pairs_are_unfair_in_both_components() {
        // Theory check: if (w,w') is special then both members are unfair.
        // (A fair member would drive the index difference apart — the proof
        // of Lemma III.13.) Validated over the small lasso universe.
        let lassos = crate::scenario::enumerate_gamma_lassos(2, 2);
        for a in &lassos {
            for b in &lassos {
                if is_special_pair(a, b) {
                    assert!(a.is_unfair(), "{a} of special pair ({a},{b}) must be unfair");
                    assert!(b.is_unfair(), "{b} of special pair ({a},{b}) must be unfair");
                }
            }
        }
    }

    #[test]
    fn first_divergence_is_reported() {
        match classify_pair(&sc("-(w)"), &sc("b(w)")) {
            SPairVerdict::Special { first_divergence } => assert_eq!(first_divergence, 0),
            v => panic!("expected special, got {v:?}"),
        }
    }
}
