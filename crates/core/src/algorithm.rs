//! The consensus algorithm `A_w` (Algorithm 1 of the paper) and friends.
//!
//! `A_w` is a *meta*-algorithm: it is parameterized by one scenario
//! `w ∈ Γ^ω \ L` that the fault environment `L` can never produce.
//! Each process maintains a "phantom index" that tracks, via the exchanged
//! messages, the index of the actual scenario being played
//! (Proposition III.12: the two phantom indexes always frame `ind(v_r)` —
//! the smaller of the two *is* `ind(v_r)`, and they differ by exactly 1).
//! A process halts as soon as its phantom index drifts at distance ≥ 2 from
//! `ind(w_r)`: from that moment the actual scenario is pinned to one side
//! of the forbidden `w`, both phantom indexes are on the same side, and the
//! side determines who imposes its initial value.
//!
//! Concretely (our δ orientation):
//! * White starts with phantom index 1, Black with 0;
//! * on receiving the peer's index `j`, a process updates `i ← 2j + i`;
//!   on receiving `null`, `i ← 3i`;
//! * on halting, White outputs its own `init` iff its index ended
//!   *strictly above* `ind(w_r)`, Black iff its index ended *at or below*;
//!   otherwise the process outputs the last initial value it received from
//!   its peer.
//!
//! The asymmetric tie rule only matters for the early-stopping variant
//! (Proposition III.15), where a process may stop exactly on `ind(w_r)`;
//! ties always belong to the larger phantom index, so they resolve to the
//! below side. Exhaustive executions in this module's tests check the rule.
//!
//! **Witness hygiene.** When the environment `L` misses a special pair,
//! `A_w` must be parameterized with the *upper* member of the pair (the one
//! whose index-adjacent partner sits below it). With the lower member, a
//! process that halts first leaves its peer receiving `null` forever while
//! the peer's phantom index tracks the partner-above chain at distance 1 —
//! it never crosses the halting threshold, violating Termination. The
//! selection in [`crate::theorem`] always returns the upper member.

use crate::engine::TwoProcessProtocol;
use crate::index::IndexTracker;
use crate::letter::Role;
use crate::scenario::Scenario;
use minobs_bigint::UBig;

/// The message exchanged by [`AwProcess`]: the sender's initial value and
/// current phantom index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AwMessage {
    /// The sender's initial value.
    pub init: bool,
    /// The sender's phantom index.
    pub ind: UBig,
}

/// One process of the paper's Algorithm 1, parameterized by the forbidden
/// scenario `w`.
#[derive(Debug, Clone)]
pub struct AwProcess {
    role: Role,
    init: bool,
    init_other: Option<bool>,
    /// This process's phantom index.
    ind: UBig,
    /// Tracks `ind(w_r)` for the parameter scenario `w`.
    w: Scenario,
    w_tracker: IndexTracker,
    round: usize,
    decision: Option<bool>,
    /// Round bound for the early-stopping variant; `None` = unbounded.
    round_cap: Option<usize>,
    /// Set when the process had to decide without ever hearing its peer
    /// *and* the decision rule asked for the peer's value — cannot happen
    /// when `w ∉ L` (see the Validity argument in Section III-E); recorded
    /// rather than panicking so experiments can probe misuse.
    pub decided_blind: bool,
}

impl AwProcess {
    /// Builds a process of `A_w`.
    ///
    /// # Panics
    /// Panics when `w` is not a `Γ`-scenario — Algorithm 1 is only defined
    /// for parameters in `Γ^ω`.
    pub fn new(role: Role, init: bool, w: Scenario) -> Self {
        assert!(w.is_gamma(), "A_w requires a parameter scenario in Γ^ω");
        AwProcess {
            role,
            init,
            init_other: None,
            ind: match role {
                Role::White => UBig::one(),
                Role::Black => UBig::zero(),
            },
            w,
            w_tracker: IndexTracker::new(),
            round: 0,
            decision: None,
            round_cap: None,
            decided_blind: false,
        }
    }

    /// The early-stopping variant of Proposition III.15: additionally halts
    /// and decides at round `p` (for schemes whose prefixes exclude some
    /// word of `Γ^p`).
    pub fn with_round_cap(mut self, p: usize) -> Self {
        self.round_cap = Some(p);
        self
    }

    /// The current phantom index (exposed for invariant checks).
    pub fn phantom_index(&self) -> &UBig {
        &self.ind
    }

    /// The number of completed rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    fn decide(&mut self) {
        // ind(w_r) at the current round, maintained incrementally.
        //
        // Side rule: the run ended either above or below the forbidden
        // index trajectory; above, White imposes its value, below, Black
        // does. Ties (phantom == ind(w_r)) arise only in the early-stopping
        // variant, always at the *larger* phantom (the smaller one equals
        // ind(v_p) ≠ ind(w_p) by bijectivity of the index), and the actual
        // scenario then sits below w — so ties resolve to the below side.
        let ind_w = self.w_tracker.value();
        let own_side = match self.role {
            Role::White => self.ind > *ind_w,
            Role::Black => self.ind <= *ind_w,
        };
        self.decision = Some(if own_side {
            self.init
        } else {
            match self.init_other {
                Some(v) => v,
                None => {
                    self.decided_blind = true;
                    self.init
                }
            }
        });
    }
}

impl TwoProcessProtocol for AwProcess {
    type Msg = AwMessage;

    fn role(&self) -> Role {
        self.role
    }

    fn input(&self) -> bool {
        self.init
    }

    fn outgoing(&self) -> Option<AwMessage> {
        Some(AwMessage {
            init: self.init,
            ind: self.ind.clone(),
        })
    }

    fn advance(&mut self, incoming: Option<AwMessage>) {
        match incoming {
            Some(msg) => {
                // ind ← 2·msg.ind + ind.
                self.ind = msg.ind.mul_small(2).add_ref(&self.ind);
                self.init_other = Some(msg.init);
            }
            None => {
                // Message was lost: ind ← 3·ind.
                self.ind = self.ind.mul_small(3);
            }
        }
        let a = self
            .w
            .letter_at(self.round)
            .to_gamma()
            .expect("parameter checked in new()");
        self.w_tracker.push(a);
        self.round += 1;

        // While-loop guard of Algorithm 1: continue while
        // |ind - ind(w_r)| ≤ 1 (and, for the early-stopping variant,
        // r < p).
        let dist = self.ind.abs_diff(self.w_tracker.value());
        let drifted = dist > UBig::one();
        let capped = self.round_cap.is_some_and(|p| self.round >= p);
        if drifted || capped {
            self.decide();
        }
    }

    fn decision(&self) -> Option<bool> {
        self.decision
    }

    fn halted(&self) -> bool {
        self.decision.is_some()
    }
}

/// The early-stopping `A_w` of Proposition III.15 (an [`AwProcess`] with a
/// round cap `p`).
pub type EarlyStoppingAw = AwProcess;

/// The intuitive algorithm of Corollary IV.1 for the almost-fair scheme
/// `F' = Γ^ω \ {DropBlack^ω}`:
///
/// * White sends its initial value until it *receives* a message from
///   Black, then halts and outputs **Black's** initial value;
/// * Black sends its initial value until it receives `null`, then halts
///   and outputs **its own** initial value.
///
/// Corollary IV.1 observes this is exactly `A_w` for `w = DropBlack^ω`.
#[derive(Debug, Clone)]
pub struct IntuitiveAlmostFair {
    role: Role,
    init: bool,
    decision: Option<bool>,
}

impl IntuitiveAlmostFair {
    /// Builds a process of the intuitive almost-fair algorithm.
    pub fn new(role: Role, init: bool) -> Self {
        IntuitiveAlmostFair {
            role,
            init,
            decision: None,
        }
    }
}

impl TwoProcessProtocol for IntuitiveAlmostFair {
    type Msg = bool;

    fn role(&self) -> Role {
        self.role
    }

    fn input(&self) -> bool {
        self.init
    }

    fn outgoing(&self) -> Option<bool> {
        Some(self.init)
    }

    fn advance(&mut self, incoming: Option<bool>) {
        match (self.role, incoming) {
            (Role::White, Some(peer_init)) => self.decision = Some(peer_init),
            (Role::White, None) => {}
            (Role::Black, Some(_)) => {}
            (Role::Black, None) => self.decision = Some(self.init),
        }
    }

    fn decision(&self) -> Option<bool> {
        self.decision
    }

    fn halted(&self) -> bool {
        self.decision.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_two_process, Verdict};
    use crate::index::ind;
    use crate::scenario::Scenario;
    use crate::word::GammaWord;

    fn sc(s: &str) -> Scenario {
        s.parse().unwrap()
    }

    /// Runs A_w with both processes and all four input combinations under
    /// `scenario`; asserts consensus within `budget` rounds.
    fn assert_aw_consensus(w: &Scenario, scenario: &Scenario, budget: usize) {
        for wi in [false, true] {
            for bi in [false, true] {
                let mut white = AwProcess::new(Role::White, wi, w.clone());
                let mut black = AwProcess::new(Role::Black, bi, w.clone());
                let out = run_two_process(&mut white, &mut black, scenario, budget);
                assert!(
                    out.verdict.is_consensus(),
                    "A_{w} under {scenario} inputs ({wi},{bi}): {:?}",
                    out.verdict
                );
                assert!(!white.decided_blind && !black.decided_blind);
            }
        }
    }

    #[test]
    fn aw_rejects_non_gamma_parameter() {
        let res = std::panic::catch_unwind(|| {
            AwProcess::new(Role::White, true, sc("(x)"))
        });
        assert!(res.is_err());
    }

    #[test]
    fn aw_solves_s0_with_any_forbidden_word() {
        // S0 = {Full^ω}; the witness w = DropWhite^ω works.
        assert_aw_consensus(&sc("(w)"), &sc("(-)"), 16);
    }

    #[test]
    fn aw_solves_almost_fair_scenarios() {
        // w = DropBlack^ω forbidden; every other Γ-scenario must reach
        // consensus (Corollary IV.1).
        let w = sc("(b)");
        for s in ["(-)", "(w)", "(wb)", "b(w)", "bb(-)", "-(b)", "w(b)", "bw(b)"] {
            assert_aw_consensus(&w, &sc(s), 64);
        }
    }

    #[test]
    fn aw_exhaustive_over_short_lassos() {
        // For each forbidden fair witness w, run A_w over every lasso
        // scenario (≠ w and not forming a trapped unfair pair) — here w is
        // fair so every unfair-or-different scenario terminates.
        let w = sc("(-)"); // forbidden: the all-delivery scenario
        for s in crate::scenario::enumerate_gamma_lassos(2, 2) {
            if s == w {
                continue;
            }
            assert_aw_consensus(&w, &s, 96);
        }
    }

    #[test]
    fn aw_does_not_terminate_on_the_forbidden_scenario() {
        // Running A_w on w itself must never halt (the index difference
        // stays ≤ 1 forever) — that is the point: w ∉ L.
        let w = sc("(b)");
        let mut white = AwProcess::new(Role::White, true, w.clone());
        let mut black = AwProcess::new(Role::Black, false, w.clone());
        let out = run_two_process(&mut white, &mut black, &w, 200);
        assert_eq!(out.verdict, Verdict::Undecided);
        assert_eq!(out.rounds, 200);
    }

    #[test]
    fn phantom_indexes_satisfy_proposition_iii_12() {
        // While no process has halted: |ind_w - ind_b| = 1 and
        // min(ind_w, ind_b) = ind(v_r).
        let w = sc("(b)"); // forbidden word, keeps the run long on fair v
        let v = sc("(wb-)");
        let mut white = AwProcess::new(Role::White, false, w.clone());
        let mut black = AwProcess::new(Role::Black, true, w.clone());
        let mut v_tracker = IndexTracker::new();
        for r in 0..12 {
            if white.halted() || black.halted() {
                break;
            }
            let letter = v.letter_at(r);
            let from_white = white.outgoing();
            let from_black = black.outgoing();
            let to_white = from_black.filter(|_| letter.delivers_from(Role::Black));
            let to_black = from_white.filter(|_| letter.delivers_from(Role::White));
            white.advance(to_white);
            black.advance(to_black);
            v_tracker.push(letter.to_gamma().unwrap());

            let iw = white.phantom_index();
            let ib = black.phantom_index();
            assert_eq!(iw.abs_diff(ib), UBig::one(), "round {r}");
            let min = if iw < ib { iw } else { ib };
            assert_eq!(min, v_tracker.value(), "round {r}");
        }
    }

    #[test]
    fn early_stopping_matches_round_bound() {
        // S1 has p = 2 (Γ² ⊄ Pref(S1)): cap A_w at 2 rounds; every S1
        // scenario must reach consensus in exactly ≤ 2 rounds.
        // Forbidden word w0·(anything): w0 = "wb" ∉ Pref(S1), extended
        // arbitrarily — use wb(b).
        let w = sc("wb(b)");
        let s1_scenarios = ["(-)", "(w)", "(b)", "w(-)", "b(-)", "-(w)", "-(b)", "ww(-)", "bb(b)"];
        for s in s1_scenarios {
            for wi in [false, true] {
                for bi in [false, true] {
                    let mut white = AwProcess::new(Role::White, wi, w.clone()).with_round_cap(2);
                    let mut black = AwProcess::new(Role::Black, bi, w.clone()).with_round_cap(2);
                    let out = run_two_process(&mut white, &mut black, &sc(s), 16);
                    assert!(
                        out.verdict.is_consensus(),
                        "early A_w under {s} inputs ({wi},{bi}): {:?}",
                        out.verdict
                    );
                    assert!(out.rounds <= 2, "halts within p=2 rounds, got {}", out.rounds);
                }
            }
        }
    }

    #[test]
    fn early_stopping_exhaustive_c1() {
        // C1 (crash model): p = 2 as well ("wb" is not a crash prefix).
        // All crash scenarios with crash point ≤ 3 decide in ≤ 2 rounds.
        let w = sc("wb(b)");
        for s in ["(-)", "(w)", "(b)", "-(w)", "-(b)", "--(w)", "--(b)"] {
            for wi in [false, true] {
                for bi in [false, true] {
                    let mut white = AwProcess::new(Role::White, wi, w.clone()).with_round_cap(2);
                    let mut black = AwProcess::new(Role::Black, bi, w.clone()).with_round_cap(2);
                    let out = run_two_process(&mut white, &mut black, &sc(s), 16);
                    assert!(out.verdict.is_consensus(), "{s} ({wi},{bi}): {:?}", out.verdict);
                }
            }
        }
    }

    #[test]
    fn intuitive_almost_fair_agrees_with_aw() {
        // Corollary IV.1: the intuitive algorithm solves Γ^ω \ {(b)^ω}; on
        // every scenario it must reach consensus, and its round count
        // matches A_{(b)ω} up to the halting convention.
        for s in crate::scenario::enumerate_gamma_lassos(2, 2) {
            if s == sc("(b)") {
                continue;
            }
            for wi in [false, true] {
                for bi in [false, true] {
                    let mut white = IntuitiveAlmostFair::new(Role::White, wi);
                    let mut black = IntuitiveAlmostFair::new(Role::Black, bi);
                    let out = run_two_process(&mut white, &mut black, &s, 96);
                    assert!(
                        out.verdict.is_consensus(),
                        "intuitive under {s} ({wi},{bi}): {:?}",
                        out.verdict
                    );
                }
            }
        }
    }

    #[test]
    fn corollary_iv_1_intuitive_equals_aw_b_omega() {
        // Corollary IV.1: "A_{▷ω} is exactly what you would propose
        // intuitively" — made precise: on every member of the almost-fair
        // scheme and all input pairs, both algorithms decide the same
        // value (Black's initial value), and their round counts differ by
        // at most one (the intuitive algorithm's halt detection saves at
        // most one round of bookkeeping).
        let w = sc("(b)");
        for s in crate::scenario::enumerate_gamma_lassos(2, 2) {
            if s == w {
                continue;
            }
            for wi in [false, true] {
                for bi in [false, true] {
                    let mut aw_w = AwProcess::new(Role::White, wi, w.clone());
                    let mut aw_b = AwProcess::new(Role::Black, bi, w.clone());
                    let aw_out = run_two_process(&mut aw_w, &mut aw_b, &s, 256);

                    let mut in_w = IntuitiveAlmostFair::new(Role::White, wi);
                    let mut in_b = IntuitiveAlmostFair::new(Role::Black, bi);
                    let in_out = run_two_process(&mut in_w, &mut in_b, &s, 256);

                    assert_eq!(
                        aw_out.verdict, in_out.verdict,
                        "{s} ({wi},{bi})"
                    );
                    assert_eq!(aw_out.verdict, Verdict::Consensus(bi), "{s}: Black dictates");
                    assert!(
                        aw_out.rounds.abs_diff(in_out.rounds) <= 1,
                        "{s} ({wi},{bi}): rounds {} vs {}",
                        aw_out.rounds,
                        in_out.rounds
                    );
                }
            }
        }
    }

    #[test]
    fn intuitive_never_halts_on_excluded_scenario() {
        let mut white = IntuitiveAlmostFair::new(Role::White, true);
        let mut black = IntuitiveAlmostFair::new(Role::Black, false);
        let out = run_two_process(&mut white, &mut black, &sc("(b)"), 128);
        // Black keeps hearing White and never gets null; White never hears
        // Black. Black never halts; White never halts. Undecided forever.
        assert_eq!(out.verdict, Verdict::Undecided);
    }

    #[test]
    fn aw_validity_on_equal_inputs_all_scenarios() {
        let w = sc("(-)");
        for s in crate::scenario::enumerate_gamma_lassos(1, 2) {
            if s == w {
                continue;
            }
            for input in [false, true] {
                let mut white = AwProcess::new(Role::White, input, w.clone());
                let mut black = AwProcess::new(Role::Black, input, w.clone());
                let out = run_two_process(&mut white, &mut black, &s, 96);
                assert_eq!(out.verdict, Verdict::Consensus(input), "{s} input {input}");
            }
        }
    }

    #[test]
    fn aw_round_complexity_tracks_divergence_of_w_and_v() {
        // The processes halt roughly when ind(v_r) and ind(w_r) separate by
        // ≥ 2 (Lemma III.13) — sanity check the mechanism: on v = (-) with
        // w = (b), divergence is immediate (ind(-)=1, ind(b)=2, then
        // 4 vs 8): expect termination within a few rounds.
        let w = sc("(b)");
        let v = sc("(-)");
        let mut white = AwProcess::new(Role::White, true, w.clone());
        let mut black = AwProcess::new(Role::Black, true, w.clone());
        let out = run_two_process(&mut white, &mut black, &v, 32);
        assert!(out.verdict.is_consensus());
        assert!(out.rounds <= 4, "expected fast divergence, took {}", out.rounds);
    }

    #[test]
    fn exhaustive_prefix_executions_respect_agreement() {
        // Drive A_w over *every* Γ-word of length 5 extended periodically;
        // all runs that decide must decide consistently.
        let w = sc("(wb)");
        for prefix in GammaWord::enumerate_all(4) {
            let scenario = Scenario::new(prefix.to_word(), "b-".parse().unwrap());
            // ^ arbitrary fair continuation
            for wi in [false, true] {
                for bi in [false, true] {
                    let mut white = AwProcess::new(Role::White, wi, w.clone());
                    let mut black = AwProcess::new(Role::Black, bi, w.clone());
                    let out = run_two_process(&mut white, &mut black, &scenario, 128);
                    assert!(
                        out.verdict.is_consensus(),
                        "A_w {w} on {scenario} ({wi},{bi}): {:?}",
                        out.verdict
                    );
                }
            }
        }
    }

    #[test]
    fn lower_pair_member_as_witness_traps_the_peer() {
        // Regression for the witness-hygiene rule documented in the module
        // docs: w = -(w) is the LOWER member of the special pair
        // ( -(w), b(w) ). Running A_w with it on v = bw(-) makes White halt
        // spuriously at round 1 while Black's phantom index tracks the
        // partner chain forever: Termination fails.
        let w = sc("-(w)");
        let v = sc("bw(-)");
        let mut white = AwProcess::new(Role::White, true, w.clone());
        let mut black = AwProcess::new(Role::Black, false, w.clone());
        let out = run_two_process(&mut white, &mut black, &v, 200);
        assert_eq!(out.verdict, Verdict::Undecided, "the trap is real");
        // The UPPER member b(w) is a safe witness for the same pair (its
        // partner -(w) is also excluded from L, so we need not run on it):
        let w = sc("b(w)");
        for s in ["bw(-)", "(-)", "(wb)", "w(-)", "bb(w)"] {
            assert_aw_consensus(&w, &sc(s), 200);
        }
    }

    #[test]
    fn upper_witness_solves_gamma_minus_pair_scheme() {
        // L = Γ^ω \ { -(w), b(w) } is solvable (condition III.8.ii); the
        // upper member b(w) parameterizes a correct A_w for every lasso in
        // L from the small universe.
        let w = sc("b(w)");
        let excluded = [sc("-(w)"), sc("b(w)")];
        for s in crate::scenario::enumerate_gamma_lassos(2, 2) {
            if excluded.contains(&s) {
                continue;
            }
            assert_aw_consensus(&w, &s, 300);
        }
    }

    #[test]
    fn corollary_iii_5_confused_process_has_identical_state() {
        // For adjacent-index words v, v' (ind(v') = ind(v) + 1), the
        // process named by confused_process(parity of ind(v)) ends in the
        // same state under both — checked on A_w's actual state (phantom
        // index and received init), exhaustively for r ≤ 4.
        use crate::index::{confused_process, index_successor};
        let w = sc("(b)"); // any Γ parameter; state evolution is what matters
        for r in 1..=4usize {
            for v in GammaWord::enumerate_all(r) {
                let Some(v2) = index_successor(&v) else { continue };
                let even = ind(&v).is_even();
                let confused = confused_process(even);

                let run = |word: &GammaWord| -> (minobs_bigint::UBig, Option<bool>, minobs_bigint::UBig, Option<bool>) {
                    let mut white = AwProcess::new(Role::White, true, w.clone());
                    let mut black = AwProcess::new(Role::Black, false, w.clone());
                    for a in word.iter() {
                        let to_white = a.delivers_from(Role::Black).then(|| {
                            black.outgoing().unwrap()
                        });
                        let to_black = a.delivers_from(Role::White).then(|| {
                            white.outgoing().unwrap()
                        });
                        white.advance(to_white);
                        black.advance(to_black);
                    }
                    (
                        white.phantom_index().clone(),
                        white.init_other,
                        black.phantom_index().clone(),
                        black.init_other,
                    )
                };
                let (w1, wo1, b1, bo1) = run(&v);
                let (w2, wo2, b2, bo2) = run(&v2);
                match confused {
                    Role::White => {
                        assert_eq!(w1, w2, "White state differs on {v}/{v2}");
                        assert_eq!(wo1, wo2, "White init_other differs on {v}/{v2}");
                    }
                    Role::Black => {
                        assert_eq!(b1, b2, "Black state differs on {v}/{v2}");
                        assert_eq!(bo1, bo2, "Black init_other differs on {v}/{v2}");
                    }
                }
            }
        }
    }

    #[test]
    fn broken_tie_rule_is_caught_by_the_auditor() {
        // Failure injection: a subtly wrong variant of A_w (White's tie
        // rule flipped to ≥) disagrees on a concrete early-stopping run —
        // and the engine's audit catches it. This guards the exact
        // asymmetry documented in the module docs.
        #[derive(Debug, Clone)]
        struct WrongTieAw(AwProcess);
        impl TwoProcessProtocol for WrongTieAw {
            type Msg = AwMessage;
            fn role(&self) -> Role {
                self.0.role()
            }
            fn input(&self) -> bool {
                self.0.input()
            }
            fn outgoing(&self) -> Option<AwMessage> {
                self.0.outgoing()
            }
            fn advance(&mut self, incoming: Option<AwMessage>) {
                let before = self.0.halted();
                self.0.advance(incoming);
                // Sabotage: on the deciding step, recompute White's side
                // with the non-strict comparison.
                if !before && self.0.halted() && self.0.role() == Role::White {
                    let ind_w = self.0.w_tracker.value().clone();
                    if *self.0.phantom_index() == ind_w {
                        // The tie: the wrong rule outputs init instead of
                        // initother.
                        self.0.decision = Some(self.0.input());
                    }
                }
            }
            fn decision(&self) -> Option<bool> {
                self.0.decision()
            }
            fn halted(&self) -> bool {
                self.0.halted()
            }
        }

        // Find a capped configuration where the tie actually occurs and
        // inputs differ; the correct A_w agrees everywhere, the sabotaged
        // one must disagree somewhere.
        let mut saw_disagreement = false;
        for w0 in GammaWord::enumerate_all(2) {
            let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
            for s in crate::scenario::enumerate_gamma_lassos(2, 1) {
                if s.prefix_word(2).to_gamma() == Some(w0.clone()) {
                    continue; // scenario must avoid the forbidden prefix
                }
                let mut white = WrongTieAw(
                    AwProcess::new(Role::White, true, w.clone()).with_round_cap(2),
                );
                let mut black = AwProcess::new(Role::Black, false, w.clone()).with_round_cap(2);
                let out = run_two_process(&mut white, &mut black, &s, 16);
                if matches!(out.verdict, Verdict::Disagreement { .. }) {
                    saw_disagreement = true;
                }
            }
        }
        assert!(
            saw_disagreement,
            "the flipped tie rule must be observably wrong somewhere"
        );
    }

    #[test]
    fn index_tracker_agrees_with_ind_inside_aw() {
        let w = sc("w-b(wb)");
        let mut p = AwProcess::new(Role::White, true, w.clone());
        for r in 0..10 {
            p.advance(None);
            let expect = ind(&w.prefix_word(r + 1).to_gamma().unwrap());
            assert_eq!(*p.w_tracker.value(), expect, "round {r}");
            if p.halted() {
                break;
            }
        }
    }
}
