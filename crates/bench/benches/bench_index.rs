//! BENCH-IND — index calculus throughput, with the incremental-tracker
//! ablation (DESIGN.md ablation 1): batch `ind` recomputation vs
//! `IndexTracker`'s amortized push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minobs_core::index::{ind, ind_inv, IndexTracker};
use minobs_core::letter::GammaLetter;
use minobs_core::word::GammaWord;
use std::hint::black_box;

fn word_of_len(r: usize) -> GammaWord {
    (0..r).map(|i| GammaLetter::ALL[i % 3]).collect()
}

fn bench_ind(c: &mut Criterion) {
    let mut group = c.benchmark_group("ind");
    for r in [16usize, 64, 256, 1024] {
        let w = word_of_len(r);
        group.bench_with_input(BenchmarkId::new("batch", r), &w, |b, w| {
            b.iter(|| ind(black_box(w)))
        });
    }
    group.finish();
}

fn bench_ind_inv(c: &mut Criterion) {
    let mut group = c.benchmark_group("ind_inv");
    for r in [16usize, 64, 256] {
        let w = word_of_len(r);
        let v = ind(&w);
        group.bench_with_input(BenchmarkId::new("inverse", r), &v, |b, v| {
            b.iter(|| ind_inv(r, black_box(v)))
        });
    }
    group.finish();
}

/// Ablation: maintaining the index of a growing word.
/// `tracker` pushes letters incrementally (one multiply-add each);
/// `recompute` calls batch `ind` on every prefix (quadratic).
fn bench_incremental_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_ablation");
    for r in [32usize, 128] {
        let w = word_of_len(r);
        group.bench_with_input(BenchmarkId::new("tracker", r), &w, |b, w| {
            b.iter(|| {
                let mut t = IndexTracker::new();
                for a in w.iter() {
                    t.push(a);
                }
                black_box(t.into_value())
            })
        });
        group.bench_with_input(BenchmarkId::new("recompute", r), &w, |b, w| {
            b.iter(|| {
                let mut last = None;
                for i in 1..=w.len() {
                    last = Some(ind(&w.prefix(i)));
                }
                black_box(last)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ind, bench_ind_inv, bench_incremental_ablation);
criterion_main!(benches);
