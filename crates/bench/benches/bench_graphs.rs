//! BENCH-CUT — edge connectivity scaling (Dinic max-flow), with the
//! brute-force oracle ablation on small instances (DESIGN.md ablation 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minobs_graphs::connectivity::edge_connectivity_bruteforce;
use minobs_graphs::{edge_connectivity, generators, min_edge_cut};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_connectivity_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_connectivity");
    for n in [8usize, 16, 32, 64] {
        let g = generators::torus(3, n.max(9) / 3);
        group.bench_with_input(BenchmarkId::new("torus", g.vertex_count()), &g, |b, g| {
            b.iter(|| black_box(edge_connectivity(g)))
        });
    }
    for d in [3u32, 4, 5, 6] {
        let g = generators::hypercube(d);
        group.bench_with_input(BenchmarkId::new("hypercube", 1usize << d), &g, |b, g| {
            b.iter(|| black_box(edge_connectivity(g)))
        });
    }
    for n in [10usize, 20, 40] {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::gnp_connected(n, 0.3, &mut rng);
        group.bench_with_input(BenchmarkId::new("gnp_0.3", n), &g, |b, g| {
            b.iter(|| black_box(edge_connectivity(g)))
        });
    }
    group.finish();
}

fn bench_flow_vs_bruteforce(c: &mut Criterion) {
    // Ablation: Dinic-based connectivity vs exhaustive subset cut on the
    // largest size the oracle can stomach.
    let mut group = c.benchmark_group("connectivity_ablation");
    for n in [8usize, 12, 16] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = generators::gnp_connected(n, 0.4, &mut rng);
        group.bench_with_input(BenchmarkId::new("dinic", n), &g, |b, g| {
            b.iter(|| black_box(edge_connectivity(g)))
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", n), &g, |b, g| {
            b.iter(|| black_box(edge_connectivity_bruteforce(g)))
        });
    }
    group.finish();
}

fn bench_min_cut_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_cut");
    for m in [4usize, 8, 12] {
        let g = generators::barbell(m, 2);
        group.bench_with_input(BenchmarkId::new("barbell", 2 * m), &g, |b, g| {
            b.iter(|| black_box(min_edge_cut(g)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_connectivity_scaling,
    bench_flow_vs_bruteforce,
    bench_min_cut_extraction
);
criterion_main!(benches);
