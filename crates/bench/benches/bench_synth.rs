//! BENCH-SYNTH — model checker horizon scaling: the frontier grows like
//! `3^k`, and view interning keeps the per-execution work constant.
//! Also measures the Theorem III.8 automata decision procedure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minobs_core::prelude::*;
use minobs_omega::schemes as rs;
use minobs_synth::checker::{gamma_alphabet, solvable_by};
use std::hint::black_box;

fn bench_checker_horizons(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    group.sample_size(20);
    let gamma = gamma_alphabet();
    for k in [4usize, 6, 8, 9] {
        group.bench_with_input(BenchmarkId::new("r1_full_gamma", k), &k, |b, &k| {
            b.iter(|| black_box(solvable_by(&classic::r1(), k, &gamma)))
        });
    }
    for k in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("s1_pruned", k), &k, |b, &k| {
            b.iter(|| black_box(solvable_by(&classic::s1(), k, &gamma)))
        });
    }
    group.finish();
}

fn bench_theorem_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_decision");
    group.bench_function("classic_catalog", |b| {
        b.iter(|| {
            for scheme in classic::seven_environments() {
                black_box(decide_classic(&scheme));
            }
        })
    });
    group.bench_function("regular_catalog", |b| {
        b.iter(|| {
            for scheme in [
                rs::regular_s0(),
                rs::regular_s1(),
                rs::regular_c1(),
                rs::regular_r1(),
                rs::regular_fair(),
                rs::regular_almost_fair(),
            ] {
                black_box(rs::decide_regular(&scheme));
            }
        })
    });
    group.finish();
}

fn bench_spair_decision(c: &mut Criterion) {
    use minobs_core::spair::classify_pair;
    let mut group = c.benchmark_group("spair");
    let pairs: Vec<(Scenario, Scenario)> = vec![
        ("-(w)".parse().unwrap(), "b(w)".parse().unwrap()),
        ("(wb)".parse().unwrap(), "(bw)".parse().unwrap()),
        ("--(b)".parse().unwrap(), "-w(b)".parse().unwrap()),
    ];
    group.bench_function("classify_small_pairs", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(classify_pair(x, y));
            }
        })
    });
    group.finish();
}

/// Checker ablation (DESIGN.md ablation 2): sequential vs rayon-parallel
/// prefix-viability. The automata-backed scheme makes each viability test
/// an ω-emptiness query, which is where the parallel fan-out pays.
fn bench_checker_parallel_ablation(c: &mut Criterion) {
    use minobs_synth::checker::solvable_by_par;
    let mut group = c.benchmark_group("checker_parallel_ablation");
    group.sample_size(10);
    let gamma = gamma_alphabet();
    let regular = rs::regular_s1();
    for k in [5usize, 7] {
        group.bench_with_input(BenchmarkId::new("sequential_regular", k), &k, |b, &k| {
            b.iter(|| black_box(solvable_by(&regular, k, &gamma)))
        });
        group.bench_with_input(BenchmarkId::new("parallel_regular", k), &k, |b, &k| {
            b.iter(|| black_box(solvable_by_par(&regular, k, &gamma)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_checker_horizons,
    bench_theorem_engines,
    bench_spair_decision,
    bench_checker_parallel_ablation
);
criterion_main!(benches);
