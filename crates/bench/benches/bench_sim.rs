//! BENCH-SIM — engine throughput: two-process `A_w` rounds, and network
//! rounds/sec vs graph size and loss budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minobs_core::prelude::*;
use minobs_graphs::generators;
use minobs_net::{DecisionRule, FloodConsensus};
use minobs_sim::adversary::{NoFault, RandomOmissions};
use minobs_sim::network::run_network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_two_process(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_process_aw");
    // Long-running A_w: witness (b), scenario that diverges slowly.
    let w: Scenario = "(b)".parse().unwrap();
    for rounds in [32usize, 128, 512] {
        group.bench_with_input(BenchmarkId::new("against_clean", rounds), &rounds, |b, &r| {
            b.iter(|| {
                // Run on the forbidden scenario itself: never decides, so
                // the round budget controls the measured work exactly.
                let mut white = AwProcess::new(Role::White, true, w.clone());
                let mut black = AwProcess::new(Role::Black, false, w.clone());
                black_box(run_two_process(
                    &mut white,
                    &mut black,
                    &w,
                    r,
                ))
            })
        });
    }
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_flood");
    for n in [8usize, 16, 32, 64] {
        let g = generators::cycle(n);
        let inputs: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::new("cycle_no_fault", n), &n, |b, &n| {
            b.iter(|| {
                let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
                black_box(run_network(&g, nodes, &mut NoFault, 2 * n))
            })
        });
    }
    for n in [8usize, 16, 32] {
        let g = generators::torus(3, n / 2);
        let inputs: Vec<u64> = (0..g.vertex_count() as u64).collect();
        group.bench_with_input(BenchmarkId::new("torus_random_f3", n), &n, |b, _| {
            b.iter(|| {
                let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
                let mut adv = RandomOmissions::new(3, StdRng::seed_from_u64(1));
                black_box(run_network(&g, nodes, &mut adv, 2 * g.vertex_count()))
            })
        });
    }
    group.finish();
}

/// Engine ablation (DESIGN.md ablation 4): sequential Vec-bus engine vs
/// the crossbeam chunked-parallel engine, on a graph large enough for the
/// per-round fan-out to matter.
fn bench_engine_ablation(c: &mut Criterion) {
    use minobs_sim::parallel::run_network_parallel;
    let mut group = c.benchmark_group("engine_ablation");
    group.sample_size(10);
    for n in [64usize, 128] {
        let g = generators::cycle(n);
        let inputs: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| {
                let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
                black_box(run_network(&g, nodes, &mut NoFault, 2 * n))
            })
        });
        for threads in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(&format!("parallel_t{threads}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let nodes =
                            FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
                        black_box(run_network_parallel(&g, nodes, &mut NoFault, 2 * n, threads))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_two_process, bench_network, bench_engine_ablation);
criterion_main!(benches);
