//! BENCH-OBS — the observability tax.
//!
//! Three variants of the acceptance workload (hypercube(4) flooding to
//! consensus under no faults, the ISSUE's reference case):
//!
//! * `baseline` — the pre-instrumentation entry point `run_network`,
//!   which now wraps `run_network_with_recorder(&mut NullRecorder)`;
//! * `null_recorder` — the recorder-threaded path called explicitly;
//! * `memory_recorder` — full event capture, to show what the gated
//!   work costs when actually enabled.
//!
//! The first two must be indistinguishable (within noise, <2%): with
//! `NullRecorder`, `enabled()` is a constant `false`, so timers, decision
//! scans, and per-message event construction never run, and the inlined
//! no-op hooks fold away. `memory_recorder` is expected to be visibly
//! slower — that gap is the work the gate keeps off the default path.

use criterion::{criterion_group, criterion_main, Criterion};
use minobs_graphs::generators;
use minobs_net::{DecisionRule, FloodConsensus};
use minobs_obs::{MemoryRecorder, NullRecorder};
use minobs_sim::adversary::NoFault;
use minobs_sim::network::{run_network, run_network_with_recorder};
use std::hint::black_box;

fn bench_null_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    let g = generators::hypercube(4);
    let n = g.vertex_count();
    let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

    group.bench_function("hypercube4_flood/baseline", |b| {
        b.iter(|| {
            let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
            black_box(run_network(&g, nodes, &mut NoFault, 2 * n))
        })
    });

    group.bench_function("hypercube4_flood/null_recorder", |b| {
        b.iter(|| {
            let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
            black_box(run_network_with_recorder(
                &g,
                nodes,
                &mut NoFault,
                2 * n,
                &mut NullRecorder,
            ))
        })
    });

    group.bench_function("hypercube4_flood/memory_recorder", |b| {
        b.iter(|| {
            let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
            let mut recorder = MemoryRecorder::new();
            let out = run_network_with_recorder(&g, nodes, &mut NoFault, 2 * n, &mut recorder);
            black_box((out, recorder.into_events()))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_null_recorder_overhead);
criterion_main!(benches);
