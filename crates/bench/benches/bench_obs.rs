//! BENCH-OBS — the observability tax.
//!
//! Three variants of the acceptance workload (hypercube(4) flooding to
//! consensus under no faults, the ISSUE's reference case):
//!
//! * `baseline` — the pre-instrumentation entry point `run_network`,
//!   which now wraps `run_network_with_recorder(&mut NullRecorder)`;
//! * `null_recorder` — the recorder-threaded path called explicitly;
//! * `memory_recorder` — full event capture, to show what the gated
//!   work costs when actually enabled.
//!
//! The first two must be indistinguishable (within noise, <2%): with
//! `NullRecorder`, `enabled()` is a constant `false`, so timers, decision
//! scans, span guards, and per-message event construction never run, and
//! the inlined no-op hooks fold away. `memory_recorder` is expected to be
//! visibly slower — that gap is the work the gate keeps off the default
//! path.
//!
//! The `span_guard` group isolates the cost of the span instrumentation
//! itself, and `bench_span_overhead_gate` *asserts* the acceptance bound:
//! the span-instrumented engine under `NullRecorder` stays within 2% of
//! the baseline on the reference workload (minimum of warmed, interleaved
//! trials, so scheduler noise does not fail the gate spuriously).

use criterion::{criterion_group, criterion_main, Criterion};
use minobs_graphs::generators;
use minobs_net::{DecisionRule, FloodConsensus};
use minobs_obs::{MemoryRecorder, NullRecorder, SpanGuard, SpanIds};
use minobs_sim::adversary::NoFault;
use minobs_sim::network::{run_network, run_network_with_recorder};
use std::hint::black_box;
use std::time::Instant;

fn bench_null_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    let g = generators::hypercube(4);
    let n = g.vertex_count();
    let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();

    group.bench_function("hypercube4_flood/baseline", |b| {
        b.iter(|| {
            let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
            black_box(run_network(&g, nodes, &mut NoFault, 2 * n))
        })
    });

    group.bench_function("hypercube4_flood/null_recorder", |b| {
        b.iter(|| {
            let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
            black_box(run_network_with_recorder(
                &g,
                nodes,
                &mut NoFault,
                2 * n,
                &mut NullRecorder,
            ))
        })
    });

    group.bench_function("hypercube4_flood/memory_recorder", |b| {
        b.iter(|| {
            let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
            let mut recorder = MemoryRecorder::new();
            let out = run_network_with_recorder(&g, nodes, &mut NoFault, 2 * n, &mut recorder);
            black_box((out, recorder.into_events()))
        })
    });

    group.finish();
}

fn bench_span_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_guard");

    // The disabled path: one `enabled()` check, no id, no clock.
    group.bench_function("begin_end/null_recorder", |b| {
        let mut ids = SpanIds::new();
        b.iter(|| {
            let guard = SpanGuard::begin(&mut NullRecorder, &mut ids, 0, None, "bench");
            if let Some(guard) = guard {
                guard.end(&mut NullRecorder);
            }
            black_box(())
        })
    });

    // The enabled path: id allocation, two events, two clock reads.
    group.bench_function("begin_end/memory_recorder", |b| {
        b.iter(|| {
            let mut recorder = MemoryRecorder::new();
            let mut ids = SpanIds::new();
            let guard = SpanGuard::begin(&mut recorder, &mut ids, 0, None, "bench");
            if let Some(guard) = guard {
                guard.end(&mut recorder);
            }
            black_box(recorder.into_events())
        })
    });

    group.finish();
}

/// The acceptance gate: span instrumentation under `NullRecorder` costs
/// <2% on hypercube(4) flooding. Both sides run the span-instrumented
/// engine (`run_network` wraps the recorder-threaded path), so the gate
/// measures the guards' disabled-path cost directly. Comparing the
/// *minimum* of repeated interleaved trials estimates the true cost with
/// the scheduler noise stripped, so a loaded CI host cannot fail the
/// gate spuriously.
fn bench_span_overhead_gate(_c: &mut Criterion) {
    let g = generators::hypercube(4);
    let n = g.vertex_count();
    let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    const TRIALS: usize = 21;
    const REPS: usize = 120;

    // Warm caches and let frequency scaling settle before timing anything.
    for _ in 0..REPS {
        let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
        black_box(run_network(&g, nodes, &mut NoFault, 2 * n));
    }

    let mut baseline_ns: Vec<u64> = Vec::with_capacity(TRIALS);
    let mut instrumented_ns: Vec<u64> = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..REPS {
            let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
            black_box(run_network(&g, nodes, &mut NoFault, 2 * n));
        }
        baseline_ns.push(start.elapsed().as_nanos() as u64);

        let start = Instant::now();
        for _ in 0..REPS {
            let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
            black_box(run_network_with_recorder(
                &g,
                nodes,
                &mut NoFault,
                2 * n,
                &mut NullRecorder,
            ));
        }
        instrumented_ns.push(start.elapsed().as_nanos() as u64);
    }
    let baseline = baseline_ns.iter().copied().min().unwrap_or(1);
    let instrumented = instrumented_ns.iter().copied().min().unwrap_or(1);
    let overhead = instrumented as f64 / baseline.max(1) as f64 - 1.0;
    println!(
        "span_guard/overhead_gate: baseline {} ns, instrumented {} ns, overhead {:+.2}%",
        baseline,
        instrumented,
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "span instrumentation under NullRecorder costs {:.2}% (> 2%) on hypercube(4) flooding",
        overhead * 100.0
    );
}

criterion_group!(
    benches,
    bench_null_recorder_overhead,
    bench_span_guard,
    bench_span_overhead_gate
);
criterion_main!(benches);
