//! Shared `--help`/`--version` handling for every workspace binary.
//!
//! One call at the top of `main` gives each binary uniform flag
//! behaviour without a CLI-parser dependency:
//!
//! ```no_run
//! let args = minobs_bench::cli::handle_common_flags(
//!     "exp_fig1",
//!     "regenerates Figure 1's index table",
//!     "exp_fig1",
//! );
//! ```

use std::path::PathBuf;

/// The workspace version, baked at compile time (every crate shares the
/// workspace version number).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Scans the command line for `--help`/`-h` and `--version`/`-V`; prints
/// the corresponding text and exits 0 when found. Otherwise returns the
/// remaining arguments (without the binary name) for the caller to parse.
pub fn handle_common_flags(name: &str, about: &str, usage: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for arg in &args {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{name} — {about}\n\nusage:\n  {usage}");
                println!("\noptions:\n  -h, --help     print this help\n  -V, --version  print the version");
                std::process::exit(0);
            }
            "--version" | "-V" => {
                println!("{name} {VERSION}");
                std::process::exit(0);
            }
            _ => {}
        }
    }
    args
}

/// Unwraps an experiment artifact path, treating a failed write
/// ([`crate::Report::finish`] returning `None`) as fatal: the experiment
/// printed its table but the machine-readable artifact is missing, so
/// the run must not report success.
pub fn require_artifact(path: Option<PathBuf>) -> PathBuf {
    match path {
        Some(path) => path,
        None => {
            eprintln!("minobs-bench: experiment artifact was not written; failing the run");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_is_the_workspace_version() {
        assert_eq!(VERSION, "0.1.0");
    }

    #[test]
    fn plain_args_pass_through() {
        // No -h/-V in the test harness's own args beyond the filter
        // position; handle_common_flags only exits on exact matches.
        let args = handle_common_flags("t", "about", "t");
        assert!(args.iter().all(|a| a != "--help" && a != "--version"));
    }
}
