//! # minobs-bench — experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's experiment index), each
//! printing the regenerated rows and appending machine-readable JSON to
//! `$MINOBS_EXP_DIR/<id>.json` (default `target/experiments`). Criterion
//! benches measure the substrate itself (index calculus, engines,
//! connectivity, model checker) including the ablations DESIGN.md calls
//! out. Structured JSONL tracing for any experiment binary is switched on
//! with `MINOBS_TRACE` (see docs/OBSERVABILITY.md).

pub mod cli;
pub mod lint;

use minobs_obs::{trace_path_from_env, JsonlSink};
use serde_json::{Map, Value};
use std::fmt::Display;
use std::fs::{self, File};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// The artifact directory: `$MINOBS_EXP_DIR`, or `target/experiments`.
pub fn experiment_dir() -> PathBuf {
    match std::env::var("MINOBS_EXP_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("target/experiments"),
    }
}

/// Opens the JSONL trace sink requested via `MINOBS_TRACE` for the
/// experiment binary `id`, defaulting to `<experiment_dir>/<id>.trace.jsonl`.
/// Returns the sink with the path it writes to, or `None` when tracing is
/// off. Failures to open the file are reported to stderr and treated as
/// tracing-off rather than aborting the experiment.
pub fn trace_sink_for(id: &str) -> Option<(JsonlSink<BufWriter<File>>, PathBuf)> {
    let default = experiment_dir().join(format!("{id}.trace.jsonl"));
    let path = trace_path_from_env(&default)?;
    match JsonlSink::create(&path) {
        Ok(sink) => Some((sink, path)),
        Err(err) => {
            eprintln!(
                "minobs-bench: cannot open trace file {}: {err}",
                path.display()
            );
            None
        }
    }
}

/// Writes a metrics snapshot next to the experiment's report, as
/// `<experiment_dir>/<id>.metrics.json`. Returns the path on success;
/// failures are reported to stderr and swallowed so a full disk never
/// sinks the run that produced the numbers.
pub fn write_metrics_snapshot(id: &str, snapshot: &Value) -> Option<PathBuf> {
    let dir = experiment_dir();
    if let Err(err) = fs::create_dir_all(&dir) {
        eprintln!(
            "minobs-bench: cannot create artifact dir {}: {err}",
            dir.display()
        );
        return None;
    }
    let path = dir.join(format!("{id}.metrics.json"));
    let json = match serde_json::to_string_pretty(snapshot) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("minobs-bench: metrics serialisation failed: {err}");
            return None;
        }
    };
    if let Err(err) = fs::write(&path, json) {
        eprintln!(
            "minobs-bench: cannot write metrics snapshot {}: {err}",
            path.display()
        );
        return None;
    }
    println!("[metrics snapshot {}]", path.display());
    Some(path)
}

/// A rendered experiment table plus its JSON sink.
pub struct Report {
    id: String,
    header: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
    trace: Option<PathBuf>,
}

impl Report {
    /// Starts a report for experiment `id` with column names.
    pub fn new(id: &str, header: &[&str]) -> Report {
        Report {
            id: id.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            widths: header.iter().map(|s| s.len()).collect(),
            rows: Vec::new(),
            trace: None,
        }
    }

    /// Records the JSONL trace file this experiment streamed to, so the
    /// artifact points at it.
    pub fn note_trace(&mut self, path: &Path) {
        self.trace = Some(path.to_path_buf());
    }

    /// Adds a row (already stringified).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Prints the table and writes the JSON artifact. Returns the JSON
    /// path when the write succeeded; failures are reported to stderr.
    pub fn finish(self) -> Option<PathBuf> {
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header, &self.widths));
        println!("{}", "-".repeat(self.widths.iter().sum::<usize>() + 2 * self.widths.len()));
        for row in &self.rows {
            println!("{}", line(row, &self.widths));
        }

        let mut artifact = Map::new();
        artifact.insert("id", Value::from(self.id.as_str()));
        artifact.insert("meta", run_metadata(self.trace.as_deref()));
        artifact.insert(
            "header",
            Value::from(self.header.iter().map(String::as_str).collect::<Vec<_>>()),
        );
        artifact.insert(
            "rows",
            Value::Array(
                self.rows
                    .iter()
                    .map(|row| Value::from(row.iter().map(String::as_str).collect::<Vec<_>>()))
                    .collect(),
            ),
        );

        let dir = experiment_dir();
        if let Err(err) = fs::create_dir_all(&dir) {
            eprintln!(
                "minobs-bench: cannot create artifact dir {}: {err}",
                dir.display()
            );
            return None;
        }
        let path = dir.join(format!("{}.json", self.id));
        let json = match serde_json::to_string_pretty(&Value::Object(artifact)) {
            Ok(json) => json,
            Err(err) => {
                eprintln!("minobs-bench: artifact serialisation failed: {err}");
                return None;
            }
        };
        if let Err(err) = fs::write(&path, json) {
            eprintln!(
                "minobs-bench: cannot write artifact {}: {err}",
                path.display()
            );
            return None;
        }
        println!("\n[written {}]", path.display());
        Some(path)
    }
}

/// The provenance block embedded in every artifact: wall-clock timestamp,
/// toolchain version, host name, machine parallelism, stable node
/// identity (`MINOBS_NODE_ID`, default `"local"`), and (when tracing
/// was on) the JSONL trace the run produced.
pub fn artifact_meta(trace: Option<&Path>) -> Value {
    let mut meta = Map::new();
    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    meta.insert("unix_secs", Value::from(unix_secs));
    meta.insert("timestamp", Value::from(iso8601_utc(unix_secs)));
    meta.insert("rustc", Value::from(rustc_version()));
    meta.insert("host", Value::from(host_name()));
    meta.insert(
        "threads",
        Value::from(
            std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        ),
    );
    meta.insert(
        "trace",
        match trace {
            Some(path) => Value::from(path.display().to_string()),
            None => Value::Null,
        },
    );
    // Stable node identity, so multi-node artifacts group the same way
    // multi-node traces do (`MINOBS_NODE_ID`; `"local"` off-cluster).
    meta.insert(
        "node_id",
        Value::from(minobs_obs::node_id_from_env("local")),
    );
    // When the run was traced under tail sampling, stamp the sampling
    // config so a bench number can be matched to the trace policy that
    // was active when it was produced.
    if let Some(sampling) = sampling_meta(
        std::env::var("MINOBS_TRACE_SAMPLE").ok().as_deref(),
        std::env::var("MINOBS_TRACE_SLOW_MS").ok().as_deref(),
    ) {
        meta.insert("sampling", sampling);
    }
    Value::Object(meta)
}

/// Builds the `meta.sampling` block from the raw
/// `MINOBS_TRACE_SAMPLE`/`MINOBS_TRACE_SLOW_MS` values, or `None` when
/// neither is set (the artifact then omits the key entirely, keeping
/// untraced runs byte-identical to pre-sampling artifacts).
fn sampling_meta(sample: Option<&str>, slow_ms: Option<&str>) -> Option<Value> {
    let sample = sample.and_then(|s| s.trim().parse::<f64>().ok().filter(|v| v.is_finite()));
    let slow_ms = slow_ms.and_then(|s| s.trim().parse::<u64>().ok());
    if sample.is_none() && slow_ms.is_none() {
        return None;
    }
    let mut block = Map::new();
    block.insert("sample", Value::from(sample.map_or(1.0, |v| v.clamp(0.0, 1.0))));
    if let Some(ms) = slow_ms {
        block.insert("slow_ms", Value::from(ms));
    }
    Some(Value::Object(block))
}

fn run_metadata(trace: Option<&Path>) -> Value {
    artifact_meta(trace)
}

fn host_name() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .or_else(|| {
            Command::new("hostname")
                .output()
                .ok()
                .filter(|out| out.status.success())
                .and_then(|out| String::from_utf8(out.stdout).ok())
                .map(|s| s.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Writes a `minobs/bench/v1` artifact: stamps `schema`, `id`, and the
/// provenance `meta` block onto `body`, validates the result against
/// [`minobs_obs::validate_bench_artifact`], and writes it to `out` (or
/// `<experiment_dir>/<id>.json` when `out` is `None`). Returns the path
/// on success; schema violations and i/o failures go to stderr.
pub fn write_bench_artifact(out: Option<&Path>, id: &str, body: Map) -> Option<PathBuf> {
    let mut artifact = Map::new();
    artifact.insert("schema", Value::from(minobs_obs::BENCH_SCHEMA));
    artifact.insert("id", Value::from(id));
    artifact.insert("meta", artifact_meta(None));
    for (key, value) in body.iter() {
        if key != "schema" && key != "id" && key != "meta" {
            artifact.insert(key.clone(), value.clone());
        }
    }
    let artifact = Value::Object(artifact);
    if let Err(err) = minobs_obs::validate_bench_artifact(&artifact) {
        eprintln!("minobs-bench: refusing to write invalid bench artifact: {err}");
        return None;
    }
    let path = match out {
        Some(path) => path.to_path_buf(),
        None => {
            let dir = experiment_dir();
            if let Err(err) = fs::create_dir_all(&dir) {
                eprintln!(
                    "minobs-bench: cannot create artifact dir {}: {err}",
                    dir.display()
                );
                return None;
            }
            dir.join(format!("{id}.json"))
        }
    };
    let json = match serde_json::to_string_pretty(&artifact) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("minobs-bench: bench artifact serialisation failed: {err}");
            return None;
        }
    };
    if let Err(err) = fs::write(&path, json) {
        eprintln!(
            "minobs-bench: cannot write bench artifact {}: {err}",
            path.display()
        );
        return None;
    }
    println!("[bench artifact {}]", path.display());
    Some(path)
}

fn rustc_version() -> String {
    Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `YYYY-MM-DDThh:mm:ssZ` from seconds since the Unix epoch (UTC).
fn iso8601_utc(unix_secs: u64) -> String {
    let days = unix_secs / 86_400;
    let secs_of_day = unix_secs % 86_400;
    // Civil-from-days (Howard Hinnant's algorithm), valid from 1970 on.
    let z = days as i64 + 719_468;
    let era = z / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        secs_of_day / 3_600,
        (secs_of_day / 60) % 60,
        secs_of_day % 60
    )
}

/// Formats a boolean as the check glyphs used across experiment tables.
pub fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_writes() {
        let mut r = Report::new("selftest", &["a", "bbb"]);
        r.row(&[&1, &"x"]);
        r.row(&[&22, &"yy"]);
        let path = r.finish().expect("artifact written");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("selftest"));
        assert!(text.contains("yy"));
        let value: Value = serde_json::from_str(&text).unwrap();
        let meta = value.get("meta").expect("meta block");
        assert!(meta.get("unix_secs").and_then(Value::as_u64).is_some());
        assert!(meta.get("timestamp").and_then(Value::as_str).is_some());
        assert!(meta.get("rustc").and_then(Value::as_str).is_some());
        assert!(meta.get("threads").and_then(Value::as_u64).unwrap_or(0) >= 1);
        assert!(meta.get("trace").map(Value::is_null).unwrap_or(false));
    }

    #[test]
    fn noted_trace_lands_in_meta() {
        let mut r = Report::new("selftest_trace", &["a"]);
        r.note_trace(Path::new("target/experiments/selftest.trace.jsonl"));
        r.row(&[&1]);
        let path = r.finish().expect("artifact written");
        let value: Value = serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(
            value
                .get("meta")
                .and_then(|m| m.get("trace"))
                .and_then(Value::as_str),
            Some("target/experiments/selftest.trace.jsonl")
        );
    }

    #[test]
    fn metrics_snapshot_lands_next_to_the_report() {
        let mut counters = Map::new();
        counters.insert("x", Value::from(1u64));
        let mut root = Map::new();
        root.insert("counters", Value::Object(counters));
        let snapshot = Value::Object(root);
        let path = write_metrics_snapshot("selftest_metrics", &snapshot).expect("written");
        assert!(path.ends_with("selftest_metrics.metrics.json"));
        let read: Value = serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(read, snapshot);
    }

    #[test]
    fn bench_artifact_is_stamped_validated_and_refused_when_invalid() {
        let mut latency = Map::new();
        latency.insert("count", Value::from(5u64));
        latency.insert("p50", Value::from(1u64));
        latency.insert("p95", Value::from(2u64));
        latency.insert("p99", Value::from(3u64));
        latency.insert("max", Value::from(4u64));
        let mut body = Map::new();
        body.insert("kind", Value::from("checker"));
        body.insert("achieved_qps", Value::from(10.0));
        body.insert("latency_ns", Value::Object(latency));
        let path = write_bench_artifact(None, "selftest_bench", body).expect("written");
        let value: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        minobs_obs::validate_bench_artifact(&value).unwrap();
        assert_eq!(
            value.get("schema").and_then(Value::as_str),
            Some(minobs_obs::BENCH_SCHEMA)
        );
        let meta = value.get("meta").expect("meta block");
        assert!(meta.get("host").and_then(Value::as_str).is_some());
        assert!(meta.get("rustc").and_then(Value::as_str).is_some());

        // A body that violates the schema is refused, not written.
        let mut bad = Map::new();
        bad.insert("kind", Value::from("checker"));
        assert!(write_bench_artifact(None, "selftest_bench_bad", bad).is_none());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = Report::new("x", &["a", "b"]);
        r.row(&[&1]);
    }

    #[test]
    fn sampling_meta_reflects_env_shapes() {
        // Neither variable set: no block at all.
        assert!(sampling_meta(None, None).is_none());
        // Sample alone: stamped, clamped into [0, 1].
        let block = sampling_meta(Some("0.01"), None).unwrap();
        assert_eq!(block.get("sample").and_then(Value::as_f64), Some(0.01));
        assert!(block.get("slow_ms").is_none());
        let clamped = sampling_meta(Some("7.5"), None).unwrap();
        assert_eq!(clamped.get("sample").and_then(Value::as_f64), Some(1.0));
        // Slow threshold alone: sample defaults to keep-everything.
        let block = sampling_meta(None, Some("0")).unwrap();
        assert_eq!(block.get("sample").and_then(Value::as_f64), Some(1.0));
        assert_eq!(block.get("slow_ms").and_then(Value::as_u64), Some(0));
        // Garbage values behave like unset.
        assert!(sampling_meta(Some("nope"), Some("fast")).is_none());
    }

    #[test]
    fn iso8601_matches_known_instants() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(iso8601_utc(1_754_352_000), "2025-08-05T00:00:00Z");
    }
}
