//! # minobs-bench — experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's experiment index), each
//! printing the regenerated rows and appending machine-readable JSON to
//! `target/experiments/<id>.json`. Criterion benches measure the
//! substrate itself (index calculus, engines, connectivity, model
//! checker) including the ablations DESIGN.md calls out.

use serde::Serialize;
use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// A rendered experiment table plus its JSON sink.
pub struct Report {
    id: String,
    header: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report for experiment `id` with column names.
    pub fn new(id: &str, header: &[&str]) -> Report {
        Report {
            id: id.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            widths: header.iter().map(|s| s.len()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (already stringified).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Prints the table and writes the JSON artifact. Returns the JSON
    /// path when the write succeeded.
    pub fn finish(self) -> Option<PathBuf> {
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header, &self.widths));
        println!("{}", "-".repeat(self.widths.iter().sum::<usize>() + 2 * self.widths.len()));
        for row in &self.rows {
            println!("{}", line(row, &self.widths));
        }

        #[derive(Serialize)]
        struct Artifact<'a> {
            id: &'a str,
            header: &'a [String],
            rows: &'a [Vec<String>],
        }
        let artifact = Artifact {
            id: &self.id,
            header: &self.header,
            rows: &self.rows,
        };
        let dir = PathBuf::from("target/experiments");
        fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(&artifact).ok()?;
        fs::write(&path, json).ok()?;
        println!("\n[written {}]", path.display());
        Some(path)
    }
}

/// Formats a boolean as the check glyphs used across experiment tables.
pub fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_writes() {
        let mut r = Report::new("selftest", &["a", "bbb"]);
        r.row(&[&1, &"x"]);
        r.row(&[&22, &"yy"]);
        let path = r.finish().expect("artifact written");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("selftest"));
        assert!(text.contains("yy"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = Report::new("x", &["a", "b"]);
        r.row(&[&1]);
    }
}
