//! FIG1 — regenerates Figure 1: the index table for words of length ≤ 2,
//! plus the bijectivity audit for longer lengths (Lemma III.2).

use minobs_bench::Report;
use minobs_bigint::pow3;
use minobs_core::index::{ind, ind_inv};
use minobs_core::word::GammaWord;

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_fig1",
        "Figure 1 index table and bijectivity audit",
        "exp_fig1",
    );
    println!("== FIG1: ind(w) for all w ∈ Γ^r, r ≤ 2 (paper Figure 1) ==\n");
    let mut report = Report::new("fig1", &["word", "length", "ind"]);
    for r in 1..=2usize {
        let mut rows: Vec<(String, u64)> = GammaWord::enumerate_all(r)
            .map(|w| (w.to_string(), ind(&w).to_u64().unwrap()))
            .collect();
        rows.sort_by_key(|(_, v)| *v);
        for (word, value) in rows {
            report.row(&[&word, &r, &value]);
        }
    }
    minobs_bench::cli::require_artifact(report.finish());

    println!("\nBijectivity audit (Lemma III.2): ind is a bijection Γ^r → [0, 3^r - 1]");
    let mut audit = Report::new("fig1_bijectivity", &["r", "words", "distinct indexes", "max index", "3^r - 1", "roundtrip ok"]);
    for r in 0..=9usize {
        let mut seen = std::collections::BTreeSet::new();
        let mut max = 0u64;
        let mut roundtrip = true;
        let mut count = 0usize;
        for w in GammaWord::enumerate_all(r) {
            let v = ind(&w);
            let v64 = v.to_u64().unwrap();
            seen.insert(v64);
            max = max.max(v64);
            roundtrip &= ind_inv(r, &v) == Some(w);
            count += 1;
        }
        let expect = pow3(r as u32).pred().map(|p| p.to_u64().unwrap()).unwrap_or(0);
        audit.row(&[&r, &count, &seen.len(), &max, &expect, &roundtrip]);
        assert_eq!(seen.len(), count, "injective");
        assert_eq!(max, expect, "surjective onto the range");
        assert!(roundtrip);
    }
    minobs_bench::cli::require_artifact(audit.finish());
}
