//! TAB-III8 — Theorem III.8 condition-by-condition over a catalog of
//! schemes, decided twice: by the exact classic procedure and by the
//! ω-automata engine. The two must agree everywhere.

use minobs_bench::{mark, Report};
use minobs_core::prelude::*;
use minobs_core::scheme::GammaScheme;
use minobs_omega::schemes as rs;

fn describe(v: &Solvability) -> String {
    match v {
        Solvability::Solvable { condition, witness } => format!("{condition:?} ({witness})"),
        Solvability::Obstruction => "— obstruction".into(),
    }
}

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_theorem_iii8",
        "Theorem III.8 verdict table",
        "exp_theorem_iii8",
    );
    println!("== TAB-III8: the four conditions of Theorem III.8, scheme by scheme ==\n");
    let mut report = Report::new(
        "theorem_iii8",
        &[
            "scheme",
            "missing fair?",
            "(w)ω ∉ L?",
            "(b)ω ∉ L?",
            "missing pair?",
            "verdict (classic)",
            "automata agrees",
        ],
    );

    let catalog: Vec<(ClassicScheme, Option<rs::RegularScheme>)> = vec![
        (classic::s0(), Some(rs::regular_s0())),
        (classic::t_white(), Some(rs::regular_t(Role::White))),
        (classic::t_black(), Some(rs::regular_t(Role::Black))),
        (classic::c1(), Some(rs::regular_c1())),
        (classic::s1(), Some(rs::regular_s1())),
        (classic::r1(), Some(rs::regular_r1())),
        (classic::fair_gamma(), Some(rs::regular_fair())),
        (classic::almost_fair(), Some(rs::regular_almost_fair())),
        (
            ClassicScheme::GammaMinus(vec!["-(w)".parse().unwrap(), "b(w)".parse().unwrap()]),
            Some(rs::regular_gamma_minus(&[
                "-(w)".parse().unwrap(),
                "b(w)".parse().unwrap(),
            ])),
        ),
        (
            ClassicScheme::GammaMinus(vec!["-(w)".parse().unwrap()]),
            Some(rs::regular_gamma_minus(&["-(w)".parse().unwrap()])),
        ),
        (
            ClassicScheme::AvoidPrefix("wb".parse().unwrap()),
            Some(rs::regular_avoid_prefix(&"wb".parse().unwrap())),
        ),
    ];

    for (cls, reg) in catalog {
        let missing_fair = cls.missing_fair_scenario();
        let missing_w = !cls.contains_constant_drop(Role::White);
        let missing_b = !cls.contains_constant_drop(Role::Black);
        let missing_pair = cls.missing_special_pair();
        let verdict = decide_gamma(&cls);

        let agrees = reg
            .map(|r| {
                let rv = rs::decide_regular(&r);
                rv.is_solvable() == verdict.is_solvable()
            })
            .unwrap_or(true);
        assert!(agrees, "{}: engines disagree", cls.name());

        report.row(&[
            &cls.name(),
            &missing_fair.map(|f| f.to_string()).unwrap_or_else(|| "none".into()),
            &mark(missing_w),
            &mark(missing_b),
            &missing_pair
                .map(|(a, b)| format!("({a}, {b})"))
                .unwrap_or_else(|| "none".into()),
            &describe(&verdict),
            &mark(agrees),
        ]);
    }
    minobs_bench::cli::require_artifact(report.finish());
    println!("\nSolvable ⇔ at least one condition holds; both engines agree on every row.");
}
