//! Validates a minobs JSONL trace file.
//!
//! Usage: `trace_lint <trace.jsonl>`. Checks that
//!
//! 1. every line parses as JSON and carries the stable fields `schema`
//!    (matching the current version), `event`, and `round`;
//! 2. within each run (`run_start` .. `run_end`), per-message `dropped`
//!    events and per-round `round_end.dropped` counts both sum to the
//!    `run_end` total — the trace-level face of the engines' message
//!    conservation invariant;
//! 3. the same holds for `sent` and `delivered`;
//! 4. service events pair up: every `svc_response` answers exactly one
//!    earlier `svc_request` with the same `seq` and `method`, carries a
//!    known cache disposition, and no request is left unanswered at the
//!    end of the trace (the daemon drains before exiting). Service
//!    events live outside runs — the daemon trace carries only them;
//! 5. profiling spans are well formed: every `span_start` is closed by a
//!    `span_end` with the same id and name, span ids are unique within
//!    their run (each engine run restarts its `SpanIds` at 0; runless
//!    daemon traces get one stream-wide scope), spans bracket properly
//!    (a `span_end` always closes the innermost open span, and a
//!    declared `parent` is exactly that enclosing span), and nothing is
//!    left open at end of file;
//! 6. distributed-trace fields are well formed: a `span_start`
//!    `trace_id` is 32 lowercase hex digits and nonzero, `ctx_parent`
//!    only appears alongside a `trace_id` (a remote parent is
//!    meaningless without the trace it belongs to), a line-level
//!    `node_id` is a non-empty string and consistent across the whole
//!    stream (one file is one node's trace), and `health` events carry a
//!    known status (`ok`/`degraded`) with boolean `ready`/`live` probes;
//! 7. flight-recorder and sampling meta lines are well formed: a
//!    `flight_dump` header carries a non-empty trigger `reason`, numeric
//!    `events`/`dropped`/`truncated` counts, and a boolean `sampled`
//!    flag; a `trace_sampled` marker carries a keep probability
//!    `sample` inside `[0, 1]` and a numeric `slow_ms` threshold.
//!
//! When handed a file that parses as a single JSON object under the
//! `minobs/bench/v1` schema instead of a JSONL trace, it validates the
//! bench artifact (required fields present, quantiles monotone
//! `p50 ≤ p95 ≤ p99 ≤ max`, `achieved ≤ offered`) via
//! `minobs_obs::validate_bench_artifact`.
//!
//! Exits non-zero with a description of the first violation. CI runs this
//! over the trace emitted by `exp_network` under `MINOBS_TRACE=1`, over
//! the daemon trace from the `svc` job, over flight-recorder dumps pulled
//! with `svc dump`, and over the bench artifacts the `perf` job produces.
//!
//! The checks themselves live in [`minobs_bench::lint`] so test suites
//! can assert lint-cleanliness in-process.

use minobs_bench::lint::{lint, lint_bench};
use minobs_obs::BENCH_SCHEMA;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "trace_lint",
        "validates a minobs JSONL trace file or a minobs/bench/v1 artifact",
        "trace_lint <trace.jsonl | bench.json>",
    );
    let Some(path) = args.first().cloned() else {
        eprintln!("usage: trace_lint <trace.jsonl | bench.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace_lint: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    if text.is_empty() {
        eprintln!("trace_lint: {path} is empty — was MINOBS_TRACE set?");
        return ExitCode::FAILURE;
    }
    if let Some(outcome) = lint_bench(&text) {
        return match outcome {
            Ok(()) => {
                println!("trace_lint: {path}: valid {BENCH_SCHEMA} artifact");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("trace_lint: {path}: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match lint(&text) {
        Ok((lines, runs)) => {
            println!("trace_lint: {path}: {lines} lines, {runs} runs, all invariants hold");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("trace_lint: {path}: {message}");
            ExitCode::FAILURE
        }
    }
}
