//! TAB-BIVAL — the mechanical face of the Section III-C impossibility
//! proof: for obstruction schemes, the full-information checker produces a
//! bivalency chain at every horizon; for solvable schemes, the chain
//! disappears exactly at the predicted horizon.

use minobs_bench::{mark, Report};
use minobs_core::minimal::CanonicalMinimalObstruction;
use minobs_core::prelude::*;
use minobs_core::scheme::OmissionScheme;
use minobs_synth::checker::{gamma_alphabet, sigma_alphabet, solvable_by, CheckResult};

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_bivalency",
        "bivalency chains for unsolvable schemes",
        "exp_bivalency",
    );
    println!("== TAB-BIVAL: bivalency chains from the model checker ==\n");
    let mut report = Report::new(
        "bivalency",
        &["scheme", "horizon k", "solvable by k", "chain length", "views"],
    );

    let gamma = gamma_alphabet();
    let schemes: Vec<(&str, Box<dyn OmissionScheme>)> = vec![
        ("R1 = Γω", Box::new(classic::r1())),
        ("canonical minimal obstruction", Box::new(CanonicalMinimalObstruction)),
        ("Γω \\ {-(w)}", Box::new(ClassicScheme::GammaMinus(vec!["-(w)".parse().unwrap()]))),
        ("S1", Box::new(classic::s1())),
        ("C1", Box::new(classic::c1())),
        ("S0", Box::new(classic::s0())),
    ];

    for (name, scheme) in &schemes {
        for k in 0..=5usize {
            let result = solvable_by(scheme.as_ref(), k, &gamma);
            let (chain_len, views) = match &result {
                CheckResult::Unsolvable { chain } => (chain.len().to_string(), "—".into()),
                CheckResult::Solvable { views, .. } => ("—".to_string(), views.to_string()),
                CheckResult::Empty => ("—".to_string(), "0".into()),
                // unbudgeted solvable_by never runs out of budget
                CheckResult::BudgetExhausted { .. } => unreachable!(),
            };
            report.row(&[name, &k, &mark(result.is_solvable()), &chain_len, &views]);
        }
    }

    // S2 needs the Σ alphabet.
    for k in 0..=4usize {
        let result = solvable_by(&classic::s2(), k, &sigma_alphabet());
        let chain_len = match &result {
            CheckResult::Unsolvable { chain } => chain.len().to_string(),
            _ => "—".into(),
        };
        report.row(&[&"S2 = Σω", &k, &mark(result.is_solvable()), &chain_len, &"—"]);
    }
    minobs_bench::cli::require_artifact(report.finish());

    // Show one concrete chain — the machine-found analogue of Gray's
    // infinite regress of acknowledgments.
    println!("\nA concrete bivalency chain for Γω at horizon 2:");
    if let CheckResult::Unsolvable { chain } = solvable_by(&classic::r1(), 2, &gamma) {
        for (i, step) in chain.iter().enumerate() {
            println!(
                "  {:>2}. prefix {}  inputs (White={}, Black={})",
                i,
                step.prefix,
                step.white_input as u8,
                step.black_input as u8
            );
        }
        println!(
            "\nConsecutive executions are indistinguishable to one process; the ends are\n\
             pinned to different decisions by Validity — no algorithm can cut the chain."
        );
    }
}
