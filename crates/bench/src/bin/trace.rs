//! Offline analytics over minobs JSONL traces.
//!
//! ```text
//! trace profile <trace.jsonl> [--flamegraph OUT.folded] [--sampled]
//! trace summary <trace.jsonl>
//! trace diff <a.jsonl> <b.jsonl> [--threshold PCT]
//! trace stitch <a.jsonl> <b.jsonl> ... [--flamegraph OUT.folded] [--strict]
//! ```
//!
//! `profile` aggregates `span_start`/`span_end` pairs into per-name
//! self/total times, reports what fraction of the trace's wall-clock
//! (run and request durations) the root spans cover, and optionally
//! writes collapsed flamegraph lines (`a;b;c <self-nanos>`) for
//! `flamegraph.pl`-style renderers. It exits non-zero when the trace
//! has no spans at all, or when root spans cover less than 90% of the
//! wall-clock anchor, so CI can assert instrumented binaries stay
//! instrumented end to end. The coverage gate is skipped for streams
//! that are incomplete by design: tail-sampled daemon traces (detected
//! via their `trace_sampled` marker), flight-recorder dumps whose
//! `flight_dump` header says `sampled:true`, or any stream passed with
//! an explicit `--sampled` flag.
//!
//! `summary` counts events by kind, rounds, and messages by status.
//!
//! `diff` compares two profiles per span name; with `--threshold PCT`
//! it exits non-zero when any span's total time regressed by more than
//! that percentage — or when a baseline span name is entirely absent
//! from the candidate (a silently vanished instrumentation point is a
//! worse regression than a slow one) — making it usable as a CI perf
//! gate.
//!
//! `stitch` merges trace files from several nodes by `trace_id` and
//! reconstructs each distributed request's cross-node span tree: a
//! client call parents the serving daemon's `rpc.*` span, which parents
//! the `gossip.exchange` that replicated its verdict, which parents the
//! receiving daemon's `rpc.gossip` span. Spans are keyed by
//! `(node_id, span_id)` — ids are only unique per node — and cross-node
//! edges come from the `ctx_parent` field stamped on ctx-carrying root
//! spans. Per trace it prints the tree and the critical path (the
//! heaviest root-to-leaf chain), and `--flamegraph` writes collapsed
//! `name@node` lines aggregated over every stitched trace. Orphan
//! `ctx_parent` references are linted; `--strict` turns them (or an
//! input with no traced spans) into a non-zero exit for CI.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace profile <trace.jsonl> [--flamegraph OUT.folded] [--sampled]\n  trace summary <trace.jsonl>\n  trace diff <a.jsonl> <b.jsonl> [--threshold PCT]\n  trace stitch <a.jsonl> <b.jsonl> ... [--flamegraph OUT.folded] [--strict]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "trace",
        "span profiling, summaries, and regression diffs over JSONL traces",
        "trace profile daemon.trace.jsonl",
    );
    match args.first().map(String::as_str) {
        Some("profile") => profile_cmd(&args[1..]),
        Some("summary") => summary_cmd(&args[1..]),
        Some("diff") => diff_cmd(&args[1..]),
        Some("stitch") => stitch_cmd(&args[1..]),
        _ => usage(),
    }
}

fn read_events(path: &str) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    text.lines()
        .enumerate()
        .map(|(idx, line)| {
            serde_json::from_str(line)
                .map_err(|err| format!("{path} line {}: not valid JSON: {err}", idx + 1))
        })
        .collect()
}

/// Per-span-name aggregate over one trace.
#[derive(Debug, Default, Clone)]
struct SpanStat {
    count: u64,
    /// Sum of span durations, children included.
    total_ns: u64,
    /// Sum of span durations minus time spent in child spans.
    self_ns: u64,
}

/// The profile of one trace: per-name stats, collapsed flamegraph paths
/// keyed by `a;b;c` with self-time values, and the wall-clock anchors.
#[derive(Debug, Default)]
struct Profile {
    by_name: BTreeMap<String, SpanStat>,
    folded: BTreeMap<String, u64>,
    /// Total duration of root spans (spans with nothing open above them).
    root_ns: u64,
    /// Wall-clock anchor: run durations plus request durations.
    wall_ns: u64,
    spans: u64,
}

fn profile(events: &[Value]) -> Result<Profile, String> {
    struct Open {
        span_id: u64,
        name: String,
        nanos_in_children: u64,
    }
    let mut out = Profile::default();
    let mut stack: Vec<Open> = Vec::new();
    for (idx, event) in events.iter().enumerate() {
        let line_no = idx + 1;
        match event.get("event").and_then(Value::as_str) {
            Some("span_start") => {
                let span_id = event
                    .get("span_id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_start without span_id"))?;
                let name = event
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: span_start without name"))?;
                stack.push(Open {
                    span_id,
                    name: name.to_string(),
                    nanos_in_children: 0,
                });
            }
            Some("span_end") => {
                let span_id = event
                    .get("span_id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_end without span_id"))?;
                let nanos = event
                    .get("nanos")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_end without nanos"))?;
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("line {line_no}: span_end without span_start"))?;
                if open.span_id != span_id {
                    return Err(format!(
                        "line {line_no}: span_end {span_id} crosses open span {} — run trace_lint",
                        open.span_id
                    ));
                }
                let self_ns = nanos.saturating_sub(open.nanos_in_children);
                let stat = out.by_name.entry(open.name.clone()).or_default();
                stat.count += 1;
                stat.total_ns += nanos;
                stat.self_ns += self_ns;
                out.spans += 1;
                let path = stack
                    .iter()
                    .map(|o| o.name.as_str())
                    .chain([open.name.as_str()])
                    .collect::<Vec<_>>()
                    .join(";");
                *out.folded.entry(path).or_default() += self_ns;
                match stack.last_mut() {
                    Some(parent) => parent.nanos_in_children += nanos,
                    None => out.root_ns += nanos,
                }
            }
            Some("run_end") | Some("svc_response") => {
                out.wall_ns += event.get("nanos").and_then(Value::as_u64).unwrap_or(0);
            }
            _ => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!(
            "{} span(s) still open at end of trace (innermost: {} {:?}) — run trace_lint",
            stack.len(),
            open.span_id,
            open.name
        ));
    }
    Ok(out)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

/// Root spans must cover at least this much of the wall-clock anchor for
/// an unsampled stream to pass `trace profile` — below it, instrumented
/// request paths ran without emitting their spans.
const MIN_ROOT_COVERAGE_PCT: f64 = 90.0;

/// True when the stream declares itself incomplete by design: it carries
/// a `trace_sampled` marker (tail-sampled daemon trace) or a
/// `flight_dump` header with `sampled:true` (dump of a sampled node).
fn stream_sampled(events: &[Value]) -> bool {
    events
        .iter()
        .any(|event| match event.get("event").and_then(Value::as_str) {
            Some("trace_sampled") => true,
            Some("flight_dump") => event.get("sampled").and_then(Value::as_bool) == Some(true),
            _ => false,
        })
}

/// Root-span coverage of the wall clock as a percentage, or `None` when
/// the trace has no timed run/request anchor to compare against.
fn root_coverage_pct(prof: &Profile) -> Option<f64> {
    (prof.wall_ns > 0).then(|| prof.root_ns as f64 / prof.wall_ns as f64 * 100.0)
}

fn profile_cmd(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut flamegraph = None;
    let mut sampled_flag = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--flamegraph" => match it.next() {
                Some(out) => flamegraph = Some(out.clone()),
                None => return usage(),
            },
            "--sampled" => sampled_flag = true,
            text if path.is_none() => path = Some(text.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let events = match read_events(&path) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("trace profile: {err}");
            return ExitCode::FAILURE;
        }
    };
    let prof = match profile(&events) {
        Ok(prof) => prof,
        Err(err) => {
            eprintln!("trace profile: {err}");
            return ExitCode::FAILURE;
        }
    };
    if prof.spans == 0 {
        eprintln!(
            "trace profile: {path} has no spans — instrumented code paths never ran (or spans were stripped)"
        );
        return ExitCode::FAILURE;
    }

    println!("trace profile: {path} ({} spans)", prof.spans);
    println!(
        "  {:<24} {:>8} {:>12} {:>12} {:>7}",
        "span", "count", "total ms", "self ms", "total%"
    );
    let mut rows: Vec<(&String, &SpanStat)> = prof.by_name.iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_ns));
    let span_total: u64 = prof.by_name.values().map(|s| s.self_ns).sum();
    for (name, stat) in rows {
        println!(
            "  {:<24} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
            name,
            stat.count,
            ms(stat.total_ns),
            ms(stat.self_ns),
            stat.total_ns as f64 / prof.root_ns.max(1) as f64 * 100.0
        );
    }
    if let Some(coverage) = root_coverage_pct(&prof) {
        println!(
            "  wall-clock {:.3} ms, root spans cover {coverage:.1}%",
            ms(prof.wall_ns)
        );
        if coverage < MIN_ROOT_COVERAGE_PCT {
            if sampled_flag || stream_sampled(&events) {
                println!("  (coverage gate skipped: sampled stream)");
            } else {
                eprintln!(
                    "trace profile: {path}: root spans cover {coverage:.1}% of wall-clock, \
                     need >= {MIN_ROOT_COVERAGE_PCT}% — requests ran without emitting spans \
                     (pass --sampled for tail-sampled streams)"
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "  no wall-clock anchor (no timed run_end/svc_response); span self-time {:.3} ms",
            ms(span_total)
        );
    }

    if let Some(out) = flamegraph {
        let mut lines = String::new();
        for (path, self_ns) in &prof.folded {
            lines.push_str(&format!("{path} {self_ns}\n"));
        }
        if let Err(err) = std::fs::write(&out, lines) {
            eprintln!("trace profile: cannot write {out}: {err}");
            return ExitCode::FAILURE;
        }
        println!("  [collapsed flamegraph written to {out}]");
    }
    ExitCode::SUCCESS
}

fn summary_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let events = match read_events(path) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("trace summary: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut message_status: BTreeMap<String, u64> = BTreeMap::new();
    for event in &events {
        let kind = event
            .get("event")
            .and_then(Value::as_str)
            .unwrap_or("<missing>");
        *kinds.entry(kind.to_string()).or_default() += 1;
        if kind == "message" {
            let status = event
                .get("status")
                .and_then(Value::as_str)
                .unwrap_or("<missing>");
            *message_status.entry(status.to_string()).or_default() += 1;
        }
    }
    println!("trace summary: {path} ({} events)", events.len());
    for (kind, count) in &kinds {
        println!("  {kind:<20} {count}");
    }
    if !message_status.is_empty() {
        println!("  messages by status:");
        for (status, count) in &message_status {
            println!("    {status:<18} {count}");
        }
    }
    ExitCode::SUCCESS
}

fn diff_cmd(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => threshold = Some(pct),
                _ => return usage(),
            },
            text => paths.push(text.to_string()),
        }
    }
    let [a_path, b_path] = paths.as_slice() else {
        return usage();
    };
    let profiles: Result<Vec<Profile>, String> = [a_path, b_path]
        .iter()
        .map(|path| read_events(path).and_then(|events| profile(&events)))
        .collect();
    let [a, b] = match profiles {
        Ok(pair) => <[Profile; 2]>::try_from(pair).expect("two profiles"),
        Err(err) => {
            eprintln!("trace diff: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!("trace diff: {a_path} → {b_path}");
    println!(
        "  {:<24} {:>12} {:>12} {:>9}",
        "span", "a total ms", "b total ms", "delta"
    );
    let mut regressed = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        a.by_name.keys().chain(b.by_name.keys()).collect();
    for name in names {
        match (a.by_name.get(name), b.by_name.get(name)) {
            (Some(sa), Some(sb)) => {
                let delta = (sb.total_ns as f64 - sa.total_ns as f64)
                    / (sa.total_ns.max(1)) as f64
                    * 100.0;
                println!(
                    "  {:<24} {:>12.3} {:>12.3} {:>+8.1}%",
                    name,
                    ms(sa.total_ns),
                    ms(sb.total_ns),
                    delta
                );
                if threshold.map(|t| delta > t).unwrap_or(false) {
                    regressed.push((name.clone(), delta));
                }
            }
            (Some(sa), None) => {
                println!(
                    "  {:<24} {:>12.3} {:>12} {:>9}",
                    name,
                    ms(sa.total_ns),
                    "-",
                    "removed"
                );
                // A vanished instrumentation point is a regression in its
                // own right: under a gate it fails, flagged as infinite.
                if threshold.is_some() {
                    regressed.push((name.clone(), f64::INFINITY));
                }
            }
            (None, Some(sb)) => {
                println!(
                    "  {:<24} {:>12} {:>12.3} {:>9}",
                    name,
                    "-",
                    ms(sb.total_ns),
                    "new"
                );
            }
            (None, None) => unreachable!("name came from one of the profiles"),
        }
    }
    if !regressed.is_empty() {
        let threshold = threshold.unwrap_or(0.0);
        for (name, delta) in &regressed {
            if delta.is_infinite() {
                eprintln!(
                    "trace diff: {name} present in baseline but absent from candidate (threshold {threshold}%)"
                );
            } else {
                eprintln!("trace diff: {name} regressed {delta:+.1}% (threshold {threshold}%)");
            }
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One closed span as seen by `stitch`, with enough identity to resolve
/// parents both locally (`local_parent`, same node) and across nodes
/// (`ctx_parent`, the remote caller's span id carried in the rpc ctx).
#[derive(Debug, Clone)]
struct StitchSpan {
    node: String,
    span_id: u64,
    name: String,
    trace: Option<String>,
    ctx_parent: Option<u64>,
    local_parent: Option<u64>,
    nanos: u64,
}

#[derive(Debug)]
struct StitchedTrace {
    trace_id: String,
    spans: Vec<StitchSpan>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    nodes: Vec<String>,
}

#[derive(Debug, Default)]
struct Stitched {
    traces: Vec<StitchedTrace>,
    untraced: usize,
    orphans: Vec<String>,
}

/// Pair span_start/span_end events from one node's stream into closed
/// spans. Spans without an explicit `trace_id` inherit the trace of the
/// enclosing open span, so helper spans nested under a stamped rpc root
/// stay attached to the distributed trace.
fn collect_spans(fallback_node: &str, events: &[Value]) -> Result<Vec<StitchSpan>, String> {
    struct Open {
        span: StitchSpan,
    }
    let mut out = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    for (idx, event) in events.iter().enumerate() {
        let line_no = idx + 1;
        match event.get("event").and_then(Value::as_str) {
            Some("span_start") => {
                let span_id = event
                    .get("span_id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_start without span_id"))?;
                let name = event
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: span_start without name"))?;
                let node = event
                    .get("node_id")
                    .and_then(Value::as_str)
                    .unwrap_or(fallback_node);
                let trace = event
                    .get("trace_id")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .or_else(|| stack.last().and_then(|open| open.span.trace.clone()));
                stack.push(Open {
                    span: StitchSpan {
                        node: node.to_string(),
                        span_id,
                        name: name.to_string(),
                        trace,
                        ctx_parent: event.get("ctx_parent").and_then(Value::as_u64),
                        local_parent: event.get("parent").and_then(Value::as_u64),
                        nanos: 0,
                    },
                });
            }
            Some("span_end") => {
                let span_id = event
                    .get("span_id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_end without span_id"))?;
                let nanos = event
                    .get("nanos")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_end without nanos"))?;
                let mut open = stack
                    .pop()
                    .ok_or_else(|| format!("line {line_no}: span_end without span_start"))?;
                if open.span.span_id != span_id {
                    return Err(format!(
                        "line {line_no}: span_end {span_id} crosses open span {} — run trace_lint",
                        open.span.span_id
                    ));
                }
                open.span.nanos = nanos;
                out.push(open.span);
            }
            _ => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!(
            "{} span(s) still open at end of trace (innermost: {} {:?}) — run trace_lint",
            stack.len(),
            open.span.span_id,
            open.span.name
        ));
    }
    Ok(out)
}

/// Merge per-node span streams into cross-node trace trees. `files` is
/// one entry per input stream: a fallback node label (used when lines
/// carry no `node_id`) and the stream's parsed events.
fn stitch(files: &[(String, Vec<Value>)]) -> Result<Stitched, String> {
    let mut by_trace: BTreeMap<String, Vec<StitchSpan>> = BTreeMap::new();
    let mut out = Stitched::default();
    for (fallback_node, events) in files {
        for span in collect_spans(fallback_node, events)? {
            match &span.trace {
                Some(trace) => by_trace.entry(trace.clone()).or_default().push(span),
                None => out.untraced += 1,
            }
        }
    }
    for (trace_id, spans) in by_trace {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        let mut nodes: Vec<String> = Vec::new();
        for span in &spans {
            if !nodes.contains(&span.node) {
                nodes.push(span.node.clone());
            }
        }
        for (idx, span) in spans.iter().enumerate() {
            let parent = if let Some(local) = span.local_parent {
                // Local edge: the parent lives in the same node's stream.
                let found = spans
                    .iter()
                    .position(|s| s.node == span.node && s.span_id == local);
                if found.is_none() {
                    out.orphans.push(format!(
                        "trace {trace_id}: span {} ({}) on {} references local parent {local} (not found)",
                        span.span_id, span.name, span.node
                    ));
                }
                found
            } else if let Some(remote) = span.ctx_parent {
                // Cross-node edge: prefer a same-node match (e.g. the
                // gossip.exchange span parented on its own rpc root),
                // then a unique remote match.
                let candidates: Vec<usize> = spans
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| *i != idx && s.span_id == remote)
                    .map(|(i, _)| i)
                    .collect();
                let same_node = candidates
                    .iter()
                    .copied()
                    .find(|&i| spans[i].node == span.node);
                let found = same_node.or_else(|| candidates.first().copied());
                match found {
                    None => out.orphans.push(format!(
                        "trace {trace_id}: span {} ({}) on {} references ctx_parent {remote} (not found)",
                        span.span_id, span.name, span.node
                    )),
                    Some(_) if candidates.len() > 1 && same_node.is_none() => {
                        out.orphans.push(format!(
                            "trace {trace_id}: span {} ({}) on {} has ambiguous ctx_parent {remote} ({} candidates)",
                            span.span_id, span.name, span.node, candidates.len()
                        ));
                    }
                    Some(_) => {}
                }
                found
            } else {
                None
            };
            match parent {
                Some(p) => children[p].push(idx),
                None => roots.push(idx),
            }
        }
        out.traces.push(StitchedTrace {
            trace_id,
            spans,
            children,
            roots,
            nodes,
        });
    }
    Ok(out)
}

impl StitchedTrace {
    /// The heaviest root-to-leaf chain: start from the root with the
    /// largest duration and always descend into the heaviest child.
    fn critical_path(&self) -> Vec<usize> {
        let mut path = Vec::new();
        let heaviest = |indices: &[usize]| -> Option<usize> {
            indices.iter().copied().max_by_key(|&i| self.spans[i].nanos)
        };
        let mut cursor = heaviest(&self.roots);
        while let Some(idx) = cursor {
            if path.contains(&idx) {
                break; // cycle guard: malformed parent refs must not hang us
            }
            path.push(idx);
            cursor = heaviest(&self.children[idx]);
        }
        path
    }

    /// Collapsed flamegraph lines (`name@node;...` → self nanos) for
    /// this trace's tree. Remote children overlap the parent's wall
    /// time just like local ones, so self time saturates at zero.
    fn folded_into(&self, folded: &mut BTreeMap<String, u64>) {
        fn walk(
            trace: &StitchedTrace,
            idx: usize,
            prefix: &str,
            folded: &mut BTreeMap<String, u64>,
        ) {
            let span = &trace.spans[idx];
            let path = if prefix.is_empty() {
                format!("{}@{}", span.name, span.node)
            } else {
                format!("{prefix};{}@{}", span.name, span.node)
            };
            let in_children: u64 = trace.children[idx]
                .iter()
                .map(|&c| trace.spans[c].nanos)
                .sum();
            *folded.entry(path.clone()).or_default() += span.nanos.saturating_sub(in_children);
            for &child in &trace.children[idx] {
                walk(trace, child, &path, folded);
            }
        }
        for &root in &self.roots {
            walk(self, root, "", folded);
        }
    }
}

fn print_tree(trace: &StitchedTrace, idx: usize, depth: usize) {
    let span = &trace.spans[idx];
    println!(
        "  {:indent$}{} [{}] {:.3} ms",
        "",
        span.name,
        span.node,
        ms(span.nanos),
        indent = depth * 2
    );
    for &child in &trace.children[idx] {
        print_tree(trace, child, depth + 1);
    }
}

fn stitch_cmd(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut flamegraph = None;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--flamegraph" => match it.next() {
                Some(out) => flamegraph = Some(out.to_string()),
                None => return usage(),
            },
            "--strict" => strict = true,
            text => paths.push(text.to_string()),
        }
    }
    if paths.is_empty() {
        return usage();
    }
    let mut files = Vec::new();
    for path in &paths {
        let events = match read_events(path) {
            Ok(events) => events,
            Err(err) => {
                eprintln!("trace stitch: {err}");
                return ExitCode::FAILURE;
            }
        };
        // Fall back to the file stem as the node label when the stream
        // predates node_id stamping.
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path.as_str())
            .to_string();
        files.push((stem, events));
    }
    let stitched = match stitch(&files) {
        Ok(stitched) => stitched,
        Err(err) => {
            eprintln!("trace stitch: {err}");
            return ExitCode::FAILURE;
        }
    };

    let traced: usize = stitched.traces.iter().map(|t| t.spans.len()).sum();
    println!(
        "trace stitch: {} file(s), {} trace(s), {} traced span(s), {} untraced span(s) skipped",
        files.len(),
        stitched.traces.len(),
        traced,
        stitched.untraced
    );
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for trace in &stitched.traces {
        println!(
            "trace {} — {} span(s) across {} node(s): {}",
            trace.trace_id,
            trace.spans.len(),
            trace.nodes.len(),
            trace.nodes.join(", ")
        );
        for &root in &trace.roots {
            print_tree(trace, root, 0);
        }
        let path = trace.critical_path();
        if !path.is_empty() {
            let hops: Vec<String> = path
                .iter()
                .map(|&i| {
                    let span = &trace.spans[i];
                    format!("{}@{} ({:.3} ms)", span.name, span.node, ms(span.nanos))
                })
                .collect();
            let crossed: std::collections::BTreeSet<&str> = path
                .iter()
                .map(|&i| trace.spans[i].node.as_str())
                .collect();
            println!(
                "  critical path: {} — {} hop(s), {} node(s)",
                hops.join(" → "),
                path.len(),
                crossed.len()
            );
        }
        trace.folded_into(&mut folded);
    }
    for orphan in &stitched.orphans {
        eprintln!("trace stitch: warning: orphan parent reference: {orphan}");
    }
    if let Some(out) = flamegraph {
        let mut text = String::new();
        for (path, self_ns) in &folded {
            text.push_str(&format!("{path} {self_ns}\n"));
        }
        if let Err(err) = std::fs::write(&out, text) {
            eprintln!("trace stitch: write {out}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote folded flamegraph: {out}");
    }
    if strict && (!stitched.orphans.is_empty() || traced == 0) {
        eprintln!(
            "trace stitch: strict: {} orphan(s), {} traced span(s)",
            stitched.orphans.len(),
            traced
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn profile_attributes_self_and_total_time() {
        let events = vec![
            event(r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"outer"}"#),
            event(r#"{"event":"span_start","round":0,"span_id":1,"parent":0,"name":"inner"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":1,"name":"inner","nanos":300}"#),
            event(r#"{"event":"span_start","round":0,"span_id":2,"parent":0,"name":"inner"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":2,"name":"inner","nanos":200}"#),
            event(r#"{"event":"span_end","round":0,"span_id":0,"name":"outer","nanos":1000}"#),
            event(r#"{"event":"run_end","round":3,"sent":0,"delivered":0,"dropped":0,"misaddressed":0,"nanos":1100}"#),
        ];
        let prof = profile(&events).unwrap();
        assert_eq!(prof.spans, 3);
        let outer = &prof.by_name["outer"];
        assert_eq!((outer.count, outer.total_ns, outer.self_ns), (1, 1000, 500));
        let inner = &prof.by_name["inner"];
        assert_eq!((inner.count, inner.total_ns, inner.self_ns), (2, 500, 500));
        // Only the outer span is a root; the wall anchor is the run_end.
        assert_eq!(prof.root_ns, 1000);
        assert_eq!(prof.wall_ns, 1100);
        assert_eq!(prof.folded["outer"], 500);
        assert_eq!(prof.folded["outer;inner"], 500);
    }

    #[test]
    fn profile_rejects_malformed_spans() {
        let crossed = vec![
            event(r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#),
            event(r#"{"event":"span_start","round":0,"span_id":1,"parent":0,"name":"b"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":0,"name":"a","nanos":1}"#),
        ];
        assert!(profile(&crossed).unwrap_err().contains("crosses"));

        let unclosed = vec![event(
            r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#,
        )];
        assert!(profile(&unclosed).unwrap_err().contains("still open"));
    }

    #[test]
    fn sampled_streams_are_detected_by_their_markers() {
        let plain = vec![event(
            r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#,
        )];
        assert!(!stream_sampled(&plain));
        let tail = vec![event(
            r#"{"event":"trace_sampled","round":0,"sample":0.01,"slow_ms":50}"#,
        )];
        assert!(stream_sampled(&tail));
        let sampled_dump = vec![event(
            r#"{"event":"flight_dump","round":0,"reason":"rpc","events":1,"dropped":0,"truncated":0,"sampled":true}"#,
        )];
        assert!(stream_sampled(&sampled_dump));
        // A dump from an unsampled node records everything: full
        // coverage is still expected of it.
        let full_dump = vec![event(
            r#"{"event":"flight_dump","round":0,"reason":"rpc","events":1,"dropped":0,"truncated":0,"sampled":false}"#,
        )];
        assert!(!stream_sampled(&full_dump));
    }

    #[test]
    fn root_coverage_is_rooted_at_the_wall_anchor() {
        let events = vec![
            event(r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.stats"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":0,"name":"rpc.stats","nanos":100}"#),
            event(
                r#"{"event":"svc_response","round":0,"seq":0,"method":"stats","ok":true,"cache":"none","nanos":1000}"#,
            ),
        ];
        let prof = profile(&events).unwrap();
        assert_eq!(root_coverage_pct(&prof), Some(10.0));
        // No timed anchor → nothing to gate against.
        let prof = profile(&events[..2]).unwrap();
        assert_eq!(root_coverage_pct(&prof), None);
    }

    fn write_temp(tag: &str, body: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("minobs_trace_{tag}_{}.jsonl", std::process::id()));
        std::fs::write(&path, body).unwrap();
        path
    }

    fn exit_of(code: ExitCode) -> String {
        format!("{code:?}")
    }

    #[test]
    fn profile_gates_on_root_coverage_unless_sampled() {
        // Root span covers 10% of the 1000 ns request: fails the gate.
        let low = concat!(
            r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.stats"}"#,
            "\n",
            r#"{"event":"span_end","round":0,"span_id":0,"name":"rpc.stats","nanos":100}"#,
            "\n",
            r#"{"event":"svc_response","round":0,"seq":0,"method":"stats","ok":true,"cache":"none","nanos":1000}"#,
            "\n",
        );
        let bare = write_temp("cov_bare", low);
        assert_eq!(
            exit_of(profile_cmd(&[bare.display().to_string()])),
            exit_of(ExitCode::FAILURE)
        );
        // The --sampled flag waives the gate for the same stream.
        assert_eq!(
            exit_of(profile_cmd(&[bare.display().to_string(), "--sampled".to_string()])),
            exit_of(ExitCode::SUCCESS)
        );
        // So does an in-stream trace_sampled marker.
        let marked = write_temp(
            "cov_marked",
            &format!(
                "{}\n{low}",
                r#"{"event":"trace_sampled","round":0,"sample":0.01,"slow_ms":50}"#
            ),
        );
        assert_eq!(
            exit_of(profile_cmd(&[marked.display().to_string()])),
            exit_of(ExitCode::SUCCESS)
        );
        std::fs::remove_file(&bare).ok();
        std::fs::remove_file(&marked).ok();
    }

    #[test]
    fn diff_fails_under_threshold_when_a_baseline_span_vanishes() {
        let baseline = write_temp(
            "diff_base",
            concat!(
                r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"gone"}"#,
                "\n",
                r#"{"event":"span_end","round":0,"span_id":0,"name":"gone","nanos":100}"#,
                "\n",
            ),
        );
        let candidate = write_temp(
            "diff_cand",
            concat!(
                r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"other"}"#,
                "\n",
                r#"{"event":"span_end","round":0,"span_id":0,"name":"other","nanos":100}"#,
                "\n",
            ),
        );
        let gated = [
            baseline.display().to_string(),
            candidate.display().to_string(),
            "--threshold".to_string(),
            "10".to_string(),
        ];
        assert_eq!(exit_of(diff_cmd(&gated)), exit_of(ExitCode::FAILURE));
        // Without a gate the removal is reported but not fatal.
        let ungated = [baseline.display().to_string(), candidate.display().to_string()];
        assert_eq!(exit_of(diff_cmd(&ungated)), exit_of(ExitCode::SUCCESS));
        std::fs::remove_file(&baseline).ok();
        std::fs::remove_file(&candidate).ok();
    }

    #[test]
    fn svc_responses_anchor_the_wall_clock() {
        let events = vec![
            event(r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.stats"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":0,"name":"rpc.stats","nanos":90}"#),
            event(
                r#"{"event":"svc_response","round":0,"seq":0,"method":"stats","ok":true,"cache":"none","nanos":100}"#,
            ),
        ];
        let prof = profile(&events).unwrap();
        assert_eq!(prof.wall_ns, 100);
        assert_eq!(prof.root_ns, 90);
    }

    /// Two-node fixture mirroring a real replicated request: the client
    /// trace T parents node a's rpc root, node a's gossip.exchange is
    /// ctx-parented on that root, and node b's rpc.gossip is
    /// ctx-parented on the exchange span.
    fn two_node_files() -> Vec<(String, Vec<Value>)> {
        let node_a = vec![
            event(
                r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.check_horizon","trace_id":"000000000000000000000000000000aa","node_id":"a"}"#,
            ),
            event(
                r#"{"event":"span_start","round":0,"span_id":1,"parent":0,"name":"check.eval","node_id":"a"}"#,
            ),
            event(r#"{"event":"span_end","round":0,"span_id":1,"name":"check.eval","nanos":400,"node_id":"a"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":0,"name":"rpc.check_horizon","nanos":1000,"node_id":"a"}"#),
            event(
                r#"{"event":"span_start","round":0,"span_id":1048576,"parent":null,"name":"gossip.exchange","trace_id":"000000000000000000000000000000aa","ctx_parent":0,"node_id":"a"}"#,
            ),
            event(r#"{"event":"span_end","round":0,"span_id":1048576,"name":"gossip.exchange","nanos":800,"node_id":"a"}"#),
        ];
        let node_b = vec![event(
            r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.gossip","trace_id":"000000000000000000000000000000aa","ctx_parent":1048576,"node_id":"b"}"#,
        ), event(
            r#"{"event":"span_end","round":0,"span_id":0,"name":"rpc.gossip","nanos":300,"node_id":"b"}"#,
        )];
        vec![("a".to_string(), node_a), ("b".to_string(), node_b)]
    }

    #[test]
    fn stitch_reconstructs_cross_node_parent_chain() {
        let stitched = stitch(&two_node_files()).unwrap();
        assert_eq!(stitched.untraced, 0);
        assert!(stitched.orphans.is_empty(), "{:?}", stitched.orphans);
        assert_eq!(stitched.traces.len(), 1);
        let trace = &stitched.traces[0];
        assert_eq!(trace.trace_id, "000000000000000000000000000000aa");
        assert_eq!(trace.spans.len(), 4);
        assert_eq!(trace.nodes, vec!["a".to_string(), "b".to_string()]);

        // Single root: node a's rpc span; the rest chain off it.
        assert_eq!(trace.roots.len(), 1);
        let root = trace.roots[0];
        assert_eq!(trace.spans[root].name, "rpc.check_horizon");
        let find = |name: &str| trace.spans.iter().position(|s| s.name == name).unwrap();
        let (eval, exchange, gossip) = (
            find("check.eval"),
            find("gossip.exchange"),
            find("rpc.gossip"),
        );
        // rpc root parents both the nested helper span (local edge) and
        // the gossip.exchange (same-node ctx edge); the exchange parents
        // the remote rpc.gossip (cross-node ctx edge).
        let mut under_root = trace.children[root].clone();
        under_root.sort_unstable();
        let mut expected = vec![eval, exchange];
        expected.sort_unstable();
        assert_eq!(under_root, expected);
        assert_eq!(trace.children[exchange], vec![gossip]);

        // Critical path follows the heaviest chain across both nodes.
        let path = trace.critical_path();
        let names: Vec<&str> = path.iter().map(|&i| trace.spans[i].name.as_str()).collect();
        assert_eq!(names, vec!["rpc.check_horizon", "gossip.exchange", "rpc.gossip"]);
        let nodes: std::collections::BTreeSet<&str> =
            path.iter().map(|&i| trace.spans[i].node.as_str()).collect();
        assert_eq!(nodes.len(), 2);

        // Folded paths carry the node label and saturating self time.
        let mut folded = BTreeMap::new();
        trace.folded_into(&mut folded);
        // Remote child time (800) overlaps the root's 600 ns of local
        // self time, so the saturating subtraction bottoms out at zero.
        assert_eq!(folded["rpc.check_horizon@a"], 0);
        assert_eq!(folded["rpc.check_horizon@a;check.eval@a"], 400);
        assert_eq!(
            folded["rpc.check_horizon@a;gossip.exchange@a;rpc.gossip@b"],
            300
        );
    }

    #[test]
    fn stitch_lints_orphan_parent_refs() {
        let files = vec![(
            "b".to_string(),
            vec![
                event(
                    r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.gossip","trace_id":"000000000000000000000000000000aa","ctx_parent":999,"node_id":"b"}"#,
                ),
                event(
                    r#"{"event":"span_end","round":0,"span_id":0,"name":"rpc.gossip","nanos":300,"node_id":"b"}"#,
                ),
            ],
        )];
        let stitched = stitch(&files).unwrap();
        assert_eq!(stitched.orphans.len(), 1);
        assert!(stitched.orphans[0].contains("ctx_parent 999"));
        // The orphan still renders: it is promoted to a root.
        assert_eq!(stitched.traces[0].roots, vec![0]);
    }

    #[test]
    fn stitch_inherits_trace_from_enclosing_span_and_skips_untraced() {
        let files = vec![(
            "a".to_string(),
            vec![
                event(r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.stats"}"#),
                event(r#"{"event":"span_end","round":0,"span_id":0,"name":"rpc.stats","nanos":10}"#),
                event(
                    r#"{"event":"span_start","round":0,"span_id":5,"parent":null,"name":"rpc.check","trace_id":"000000000000000000000000000000bb"}"#,
                ),
                event(r#"{"event":"span_start","round":0,"span_id":6,"parent":5,"name":"inner"}"#),
                event(r#"{"event":"span_end","round":0,"span_id":6,"name":"inner","nanos":4}"#),
                event(r#"{"event":"span_end","round":0,"span_id":5,"name":"rpc.check","nanos":9}"#),
            ],
        )];
        let stitched = stitch(&files).unwrap();
        // The un-stamped rpc.stats span is not part of any trace.
        assert_eq!(stitched.untraced, 1);
        let trace = &stitched.traces[0];
        // inner inherited trace bb from its enclosing span and hangs off
        // the root via its local parent edge; node fell back to the
        // stream label because no line carried node_id.
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.nodes, vec!["a".to_string()]);
        assert_eq!(trace.roots.len(), 1);
        let root = trace.roots[0];
        assert_eq!(trace.spans[root].name, "rpc.check");
        assert_eq!(trace.children[root].len(), 1);
        assert_eq!(trace.spans[trace.children[root][0]].name, "inner");
    }
}
