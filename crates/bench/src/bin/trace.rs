//! Offline analytics over minobs JSONL traces.
//!
//! ```text
//! trace profile <trace.jsonl> [--flamegraph OUT.folded]
//! trace summary <trace.jsonl>
//! trace diff <a.jsonl> <b.jsonl> [--threshold PCT]
//! ```
//!
//! `profile` aggregates `span_start`/`span_end` pairs into per-name
//! self/total times, reports what fraction of the trace's wall-clock
//! (run and request durations) the root spans cover, and optionally
//! writes collapsed flamegraph lines (`a;b;c <self-nanos>`) for
//! `flamegraph.pl`-style renderers. It exits non-zero when the trace
//! has no spans at all, so CI can assert instrumented binaries stay
//! instrumented.
//!
//! `summary` counts events by kind, rounds, and messages by status.
//!
//! `diff` compares two profiles per span name; with `--threshold PCT`
//! it exits non-zero when any span's total time regressed by more than
//! that percentage, making it usable as a CI perf gate.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace profile <trace.jsonl> [--flamegraph OUT.folded]\n  trace summary <trace.jsonl>\n  trace diff <a.jsonl> <b.jsonl> [--threshold PCT]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "trace",
        "span profiling, summaries, and regression diffs over JSONL traces",
        "trace profile daemon.trace.jsonl",
    );
    match args.first().map(String::as_str) {
        Some("profile") => profile_cmd(&args[1..]),
        Some("summary") => summary_cmd(&args[1..]),
        Some("diff") => diff_cmd(&args[1..]),
        _ => usage(),
    }
}

fn read_events(path: &str) -> Result<Vec<Value>, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    text.lines()
        .enumerate()
        .map(|(idx, line)| {
            serde_json::from_str(line)
                .map_err(|err| format!("{path} line {}: not valid JSON: {err}", idx + 1))
        })
        .collect()
}

/// Per-span-name aggregate over one trace.
#[derive(Debug, Default, Clone)]
struct SpanStat {
    count: u64,
    /// Sum of span durations, children included.
    total_ns: u64,
    /// Sum of span durations minus time spent in child spans.
    self_ns: u64,
}

/// The profile of one trace: per-name stats, collapsed flamegraph paths
/// keyed by `a;b;c` with self-time values, and the wall-clock anchors.
#[derive(Debug, Default)]
struct Profile {
    by_name: BTreeMap<String, SpanStat>,
    folded: BTreeMap<String, u64>,
    /// Total duration of root spans (spans with nothing open above them).
    root_ns: u64,
    /// Wall-clock anchor: run durations plus request durations.
    wall_ns: u64,
    spans: u64,
}

fn profile(events: &[Value]) -> Result<Profile, String> {
    struct Open {
        span_id: u64,
        name: String,
        nanos_in_children: u64,
    }
    let mut out = Profile::default();
    let mut stack: Vec<Open> = Vec::new();
    for (idx, event) in events.iter().enumerate() {
        let line_no = idx + 1;
        match event.get("event").and_then(Value::as_str) {
            Some("span_start") => {
                let span_id = event
                    .get("span_id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_start without span_id"))?;
                let name = event
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: span_start without name"))?;
                stack.push(Open {
                    span_id,
                    name: name.to_string(),
                    nanos_in_children: 0,
                });
            }
            Some("span_end") => {
                let span_id = event
                    .get("span_id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_end without span_id"))?;
                let nanos = event
                    .get("nanos")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {line_no}: span_end without nanos"))?;
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("line {line_no}: span_end without span_start"))?;
                if open.span_id != span_id {
                    return Err(format!(
                        "line {line_no}: span_end {span_id} crosses open span {} — run trace_lint",
                        open.span_id
                    ));
                }
                let self_ns = nanos.saturating_sub(open.nanos_in_children);
                let stat = out.by_name.entry(open.name.clone()).or_default();
                stat.count += 1;
                stat.total_ns += nanos;
                stat.self_ns += self_ns;
                out.spans += 1;
                let path = stack
                    .iter()
                    .map(|o| o.name.as_str())
                    .chain([open.name.as_str()])
                    .collect::<Vec<_>>()
                    .join(";");
                *out.folded.entry(path).or_default() += self_ns;
                match stack.last_mut() {
                    Some(parent) => parent.nanos_in_children += nanos,
                    None => out.root_ns += nanos,
                }
            }
            Some("run_end") | Some("svc_response") => {
                out.wall_ns += event.get("nanos").and_then(Value::as_u64).unwrap_or(0);
            }
            _ => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!(
            "{} span(s) still open at end of trace (innermost: {} {:?}) — run trace_lint",
            stack.len(),
            open.span_id,
            open.name
        ));
    }
    Ok(out)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

fn profile_cmd(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut flamegraph = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--flamegraph" => match it.next() {
                Some(out) => flamegraph = Some(out.clone()),
                None => return usage(),
            },
            text if path.is_none() => path = Some(text.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let events = match read_events(&path) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("trace profile: {err}");
            return ExitCode::FAILURE;
        }
    };
    let prof = match profile(&events) {
        Ok(prof) => prof,
        Err(err) => {
            eprintln!("trace profile: {err}");
            return ExitCode::FAILURE;
        }
    };
    if prof.spans == 0 {
        eprintln!(
            "trace profile: {path} has no spans — instrumented code paths never ran (or spans were stripped)"
        );
        return ExitCode::FAILURE;
    }

    println!("trace profile: {path} ({} spans)", prof.spans);
    println!(
        "  {:<24} {:>8} {:>12} {:>12} {:>7}",
        "span", "count", "total ms", "self ms", "total%"
    );
    let mut rows: Vec<(&String, &SpanStat)> = prof.by_name.iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1.total_ns));
    let span_total: u64 = prof.by_name.values().map(|s| s.self_ns).sum();
    for (name, stat) in rows {
        println!(
            "  {:<24} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
            name,
            stat.count,
            ms(stat.total_ns),
            ms(stat.self_ns),
            stat.total_ns as f64 / prof.root_ns.max(1) as f64 * 100.0
        );
    }
    if prof.wall_ns > 0 {
        println!(
            "  wall-clock {:.3} ms, root spans cover {:.1}%",
            ms(prof.wall_ns),
            prof.root_ns as f64 / prof.wall_ns as f64 * 100.0
        );
    } else {
        println!(
            "  no wall-clock anchor (no timed run_end/svc_response); span self-time {:.3} ms",
            ms(span_total)
        );
    }

    if let Some(out) = flamegraph {
        let mut lines = String::new();
        for (path, self_ns) in &prof.folded {
            lines.push_str(&format!("{path} {self_ns}\n"));
        }
        if let Err(err) = std::fs::write(&out, lines) {
            eprintln!("trace profile: cannot write {out}: {err}");
            return ExitCode::FAILURE;
        }
        println!("  [collapsed flamegraph written to {out}]");
    }
    ExitCode::SUCCESS
}

fn summary_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let events = match read_events(path) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("trace summary: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut message_status: BTreeMap<String, u64> = BTreeMap::new();
    for event in &events {
        let kind = event
            .get("event")
            .and_then(Value::as_str)
            .unwrap_or("<missing>");
        *kinds.entry(kind.to_string()).or_default() += 1;
        if kind == "message" {
            let status = event
                .get("status")
                .and_then(Value::as_str)
                .unwrap_or("<missing>");
            *message_status.entry(status.to_string()).or_default() += 1;
        }
    }
    println!("trace summary: {path} ({} events)", events.len());
    for (kind, count) in &kinds {
        println!("  {kind:<20} {count}");
    }
    if !message_status.is_empty() {
        println!("  messages by status:");
        for (status, count) in &message_status {
            println!("    {status:<18} {count}");
        }
    }
    ExitCode::SUCCESS
}

fn diff_cmd(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => threshold = Some(pct),
                _ => return usage(),
            },
            text => paths.push(text.to_string()),
        }
    }
    let [a_path, b_path] = paths.as_slice() else {
        return usage();
    };
    let profiles: Result<Vec<Profile>, String> = [a_path, b_path]
        .iter()
        .map(|path| read_events(path).and_then(|events| profile(&events)))
        .collect();
    let [a, b] = match profiles {
        Ok(pair) => <[Profile; 2]>::try_from(pair).expect("two profiles"),
        Err(err) => {
            eprintln!("trace diff: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!("trace diff: {a_path} → {b_path}");
    println!(
        "  {:<24} {:>12} {:>12} {:>9}",
        "span", "a total ms", "b total ms", "delta"
    );
    let mut regressed = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        a.by_name.keys().chain(b.by_name.keys()).collect();
    for name in names {
        match (a.by_name.get(name), b.by_name.get(name)) {
            (Some(sa), Some(sb)) => {
                let delta = (sb.total_ns as f64 - sa.total_ns as f64)
                    / (sa.total_ns.max(1)) as f64
                    * 100.0;
                println!(
                    "  {:<24} {:>12.3} {:>12.3} {:>+8.1}%",
                    name,
                    ms(sa.total_ns),
                    ms(sb.total_ns),
                    delta
                );
                if threshold.map(|t| delta > t).unwrap_or(false) {
                    regressed.push((name.clone(), delta));
                }
            }
            (Some(sa), None) => {
                println!(
                    "  {:<24} {:>12.3} {:>12} {:>9}",
                    name,
                    ms(sa.total_ns),
                    "-",
                    "removed"
                );
            }
            (None, Some(sb)) => {
                println!(
                    "  {:<24} {:>12} {:>12.3} {:>9}",
                    name,
                    "-",
                    ms(sb.total_ns),
                    "new"
                );
            }
            (None, None) => unreachable!("name came from one of the profiles"),
        }
    }
    if !regressed.is_empty() {
        let threshold = threshold.unwrap_or(0.0);
        for (name, delta) in &regressed {
            eprintln!("trace diff: {name} regressed {delta:+.1}% (threshold {threshold}%)");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn profile_attributes_self_and_total_time() {
        let events = vec![
            event(r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"outer"}"#),
            event(r#"{"event":"span_start","round":0,"span_id":1,"parent":0,"name":"inner"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":1,"name":"inner","nanos":300}"#),
            event(r#"{"event":"span_start","round":0,"span_id":2,"parent":0,"name":"inner"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":2,"name":"inner","nanos":200}"#),
            event(r#"{"event":"span_end","round":0,"span_id":0,"name":"outer","nanos":1000}"#),
            event(r#"{"event":"run_end","round":3,"sent":0,"delivered":0,"dropped":0,"misaddressed":0,"nanos":1100}"#),
        ];
        let prof = profile(&events).unwrap();
        assert_eq!(prof.spans, 3);
        let outer = &prof.by_name["outer"];
        assert_eq!((outer.count, outer.total_ns, outer.self_ns), (1, 1000, 500));
        let inner = &prof.by_name["inner"];
        assert_eq!((inner.count, inner.total_ns, inner.self_ns), (2, 500, 500));
        // Only the outer span is a root; the wall anchor is the run_end.
        assert_eq!(prof.root_ns, 1000);
        assert_eq!(prof.wall_ns, 1100);
        assert_eq!(prof.folded["outer"], 500);
        assert_eq!(prof.folded["outer;inner"], 500);
    }

    #[test]
    fn profile_rejects_malformed_spans() {
        let crossed = vec![
            event(r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#),
            event(r#"{"event":"span_start","round":0,"span_id":1,"parent":0,"name":"b"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":0,"name":"a","nanos":1}"#),
        ];
        assert!(profile(&crossed).unwrap_err().contains("crosses"));

        let unclosed = vec![event(
            r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#,
        )];
        assert!(profile(&unclosed).unwrap_err().contains("still open"));
    }

    #[test]
    fn svc_responses_anchor_the_wall_clock() {
        let events = vec![
            event(r#"{"event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.stats"}"#),
            event(r#"{"event":"span_end","round":0,"span_id":0,"name":"rpc.stats","nanos":90}"#),
            event(
                r#"{"event":"svc_response","round":0,"seq":0,"method":"stats","ok":true,"cache":"none","nanos":100}"#,
            ),
        ];
        let prof = profile(&events).unwrap();
        assert_eq!(prof.wall_ns, 100);
        assert_eq!(prof.root_ns, 90);
    }
}
