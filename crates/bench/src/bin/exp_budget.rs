//! TAB-BUDGET — the classic total-omission budget `B_k` ("at most `k`
//! messages lost, ever") expressed as an omission scheme and analyzed with
//! the paper's machinery. Reproduces the textbook `f + 1`-round bound
//! three independent ways:
//!
//! * `min_excluded_prefix` (Cor. III.14's `p`) = `k + 1`;
//! * the full-information model checker proves **no** `k`-round algorithm
//!   exists and finds one at `k + 1` — the content of the Aguilera–Toueg
//!   bivalency bound the paper cites as `\[AT99\]`;
//! * the capped `A_w` decides within `k + 1` rounds on every member.

use minobs_bench::{mark, write_metrics_snapshot, Report};
use minobs_core::prelude::*;
use minobs_core::scenario::enumerate_gamma_lassos;
use minobs_core::theorem::min_excluded_prefix;
use minobs_obs::{MetricsRecorder, MetricsRegistry};
use minobs_synth::checker::{gamma_alphabet, solvable_by_with_recorder};
use std::sync::Arc;

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_budget",
        "budgeted checker degradation table",
        "exp_budget",
    );
    println!("== TAB-BUDGET: at most k total losses ⇒ exactly k+1 rounds ==\n");
    let mut report = Report::new(
        "total_budget",
        &[
            "k (budget)",
            "solvable",
            "p = min excluded prefix",
            "checker @ k",
            "checker @ k+1",
            "measured worst rounds",
        ],
    );

    // Checker runs feed a metrics registry (frontier sizes, span
    // durations, progress heartbeats); the snapshot lands next to the
    // report for `trace diff`-style comparisons across revisions.
    let registry = Arc::new(MetricsRegistry::new());
    let mut metrics = MetricsRecorder::new(Arc::clone(&registry));

    let gamma = gamma_alphabet();
    for k in 0..=4usize {
        let scheme = classic::total_budget(k);
        let verdict = decide_classic(&scheme);
        assert!(verdict.is_solvable());
        let (p, w0) = min_excluded_prefix(&scheme, 6).unwrap();
        assert_eq!(p, k + 1);

        let at_k = solvable_by_with_recorder(&scheme, k, &gamma, &mut metrics).is_solvable();
        let at_k1 = solvable_by_with_recorder(&scheme, k + 1, &gamma, &mut metrics).is_solvable();
        assert!(!at_k, "no k-round algorithm for budget k");
        assert!(at_k1, "a (k+1)-round algorithm exists");

        // Measured: capped A_w over the scheme's lasso members.
        let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
        let mut worst = 0usize;
        for s in enumerate_gamma_lassos(3, 1) {
            if !scheme.contains(&s) {
                continue;
            }
            for (wi, bi) in [(false, true), (true, false), (true, true)] {
                let mut white = AwProcess::new(Role::White, wi, w.clone()).with_round_cap(p);
                let mut black = AwProcess::new(Role::Black, bi, w.clone()).with_round_cap(p);
                let out = run_two_process(&mut white, &mut black, &s, p + 8);
                assert!(out.verdict.is_consensus(), "budget {k} on {s}");
                worst = worst.max(out.rounds);
            }
        }
        assert!(worst <= p);
        report.row(&[&k, &mark(true), &p, &mark(at_k), &mark(at_k1), &worst]);
    }
    minobs_bench::cli::require_artifact(report.finish());
    write_metrics_snapshot("exp_budget", &registry.snapshot());
    println!(
        "\nThe classic 'f omissions ⇒ f+1 rounds' result, recovered as a one-line\n\
         corollary of the omission-scheme framework: Γ^(k+1) ⊄ Pref(B_k)."
    );
}
