//! PERF-GATE — the CI regression gate over `minobs/bench/v1` artifacts.
//!
//! Compares a freshly measured bench artifact against the baseline
//! committed in-tree and fails (exit 1) when throughput dropped or p99
//! latency rose beyond the allowed thresholds, printing one line per
//! regression so the CI log names exactly what degraded:
//!
//! ```text
//! perf_gate <current.json> <baseline.json> \
//!           [--max-qps-drop PCT] [--max-p99-rise PCT]
//! ```
//!
//! Defaults: 15% throughput drop, 25% p99 rise (the bounds ISSUE'd for
//! the `perf` CI job). Both artifacts are schema-validated first, so a
//! malformed baseline fails loudly instead of vacuously passing. On
//! failure the CI job follows up with `trace profile` + `trace diff`
//! against the baseline's trace to name the culprit span — this binary
//! only decides *whether* to fail, the trace tools explain *why*.

use minobs_obs::validate_bench_artifact;
use serde_json::Value;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: perf_gate <current.json> <baseline.json> [--max-qps-drop PCT] [--max-p99-rise PCT]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "perf_gate",
        "fail when a bench artifact regresses against a committed baseline",
        "perf_gate BENCH_current.json ci/perf/BENCH_baseline.json",
    );
    let mut paths = Vec::new();
    let mut max_qps_drop = 15.0f64;
    let mut max_p99_rise = 25.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-qps-drop" => match it.next().and_then(|s| s.parse().ok()) {
                Some(p) if p >= 0.0 => max_qps_drop = p,
                _ => return usage(),
            },
            "--max-p99-rise" => match it.next().and_then(|s| s.parse().ok()) {
                Some(p) if p >= 0.0 => max_p99_rise = p,
                _ => return usage(),
            },
            path if !path.starts_with("--") => paths.push(path.to_string()),
            _ => return usage(),
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        return usage();
    };

    let load = |path: &str| -> Result<Value, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path} is not JSON: {e:?}"))
    };
    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    match compare(&current, &baseline, max_qps_drop, max_p99_rise) {
        Ok(regressions) if regressions.is_empty() => {
            println!("perf_gate: PASS ({current_path} vs {baseline_path})");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            for line in &regressions {
                eprintln!("perf_gate: REGRESSION: {line}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates both artifacts and returns the list of threshold
/// violations (empty when the gate passes).
fn compare(
    current: &Value,
    baseline: &Value,
    max_qps_drop: f64,
    max_p99_rise: f64,
) -> Result<Vec<String>, String> {
    validate_bench_artifact(current).map_err(|e| format!("current artifact invalid: {e}"))?;
    validate_bench_artifact(baseline).map_err(|e| format!("baseline artifact invalid: {e}"))?;

    let num = |artifact: &Value, which: &str, path: &[&str]| -> Result<f64, String> {
        let mut cursor = artifact;
        for key in path {
            cursor = cursor
                .get(key)
                .ok_or_else(|| format!("{which} artifact missing {}", path.join(".")))?;
        }
        cursor
            .as_f64()
            .ok_or_else(|| format!("{which} {} is not a number", path.join(".")))
    };

    let mut regressions = Vec::new();

    let base_qps = num(baseline, "baseline", &["achieved_qps"])?;
    let cur_qps = num(current, "current", &["achieved_qps"])?;
    if base_qps > 0.0 {
        let drop_pct = (base_qps - cur_qps) / base_qps * 100.0;
        if drop_pct > max_qps_drop {
            regressions.push(format!(
                "throughput dropped {drop_pct:.1}% ({base_qps:.1} → {cur_qps:.1} qps, allowed {max_qps_drop:.0}%)"
            ));
        }
    }

    let base_p99 = num(baseline, "baseline", &["latency_ns", "p99"])?;
    let cur_p99 = num(current, "current", &["latency_ns", "p99"])?;
    if base_p99 > 0.0 {
        let rise_pct = (cur_p99 - base_p99) / base_p99 * 100.0;
        if rise_pct > max_p99_rise {
            regressions.push(format!(
                "p99 latency rose {rise_pct:.1}% ({:.2} ms → {:.2} ms, allowed {max_p99_rise:.0}%)",
                base_p99 / 1.0e6,
                cur_p99 / 1.0e6,
            ));
        }
    }

    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Map;

    fn artifact(qps: f64, p99: f64) -> Value {
        let mut latency = Map::new();
        latency.insert("count", Value::from(100u64));
        latency.insert("p50", Value::from(p99 / 4.0));
        latency.insert("p95", Value::from(p99 / 2.0));
        latency.insert("p99", Value::from(p99));
        latency.insert("max", Value::from(p99 * 2.0));
        let mut meta = Map::new();
        meta.insert("timestamp", Value::from("2026-08-07T00:00:00Z"));
        meta.insert("rustc", Value::from("rustc"));
        meta.insert("threads", Value::from(1u64));
        let mut map = Map::new();
        map.insert("schema", Value::from(minobs_obs::BENCH_SCHEMA));
        map.insert("id", Value::from("gate_test"));
        map.insert("kind", Value::from("checker"));
        map.insert("meta", Value::Object(meta));
        map.insert("achieved_qps", Value::from(qps));
        map.insert("latency_ns", Value::Object(latency));
        Value::Object(map)
    }

    #[test]
    fn passes_within_thresholds() {
        let baseline = artifact(1000.0, 5.0e6);
        // 10% slower, 20% higher p99: inside 15%/25%.
        let current = artifact(900.0, 6.0e6);
        assert!(compare(&current, &baseline, 15.0, 25.0).unwrap().is_empty());
        // Improvements never trip the gate.
        let faster = artifact(2000.0, 1.0e6);
        assert!(compare(&faster, &baseline, 15.0, 25.0).unwrap().is_empty());
    }

    #[test]
    fn fails_and_names_a_throughput_drop_beyond_threshold() {
        let baseline = artifact(1000.0, 5.0e6);
        let current = artifact(800.0, 5.0e6); // 20% drop > 15%
        let regressions = compare(&current, &baseline, 15.0, 25.0).unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("throughput dropped 20.0%"), "{regressions:?}");
    }

    #[test]
    fn fails_and_names_a_p99_rise_beyond_threshold() {
        let baseline = artifact(1000.0, 5.0e6);
        let current = artifact(1000.0, 7.0e6); // 40% rise > 25%
        let regressions = compare(&current, &baseline, 15.0, 25.0).unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("p99 latency rose 40.0%"), "{regressions:?}");
    }

    #[test]
    fn reports_both_regressions_at_once() {
        let baseline = artifact(1000.0, 5.0e6);
        let current = artifact(500.0, 20.0e6);
        let regressions = compare(&current, &baseline, 15.0, 25.0).unwrap();
        assert_eq!(regressions.len(), 2);
    }

    #[test]
    fn invalid_artifacts_error_instead_of_passing() {
        let baseline = artifact(1000.0, 5.0e6);
        let mut broken = artifact(1000.0, 5.0e6);
        if let Value::Object(map) = &mut broken {
            map.remove("latency_ns");
        }
        let err = compare(&broken, &baseline, 15.0, 25.0).unwrap_err();
        assert!(err.contains("current artifact invalid"), "{err}");
        let err = compare(&baseline, &broken, 15.0, 25.0).unwrap_err();
        assert!(err.contains("baseline artifact invalid"), "{err}");
    }
}
