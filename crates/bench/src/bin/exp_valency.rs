//! TAB-VALENCY — Definitions III.9/III.10 executed: valency maps of short
//! prefixes under the concrete `A_w`, decisive prefixes for bounded
//! schemes, and the obstruction-side dichotomy of Lemma III.11.

use minobs_bench::Report;
use minobs_core::prelude::*;
use minobs_core::theorem::min_excluded_prefix;
use minobs_core::valency::{default_extension_basis, find_decisive_prefix, valency, Valency};
use minobs_core::word::GammaWord;

fn show(v: &Valency) -> String {
    match v {
        Valency::Zero => "0-valent".into(),
        Valency::One => "1-valent".into(),
        Valency::Bivalent { .. } => "BIVALENT".into(),
        Valency::Unknown => "(no extension in L)".into(),
    }
}

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_valency",
        "valency analysis tables",
        "exp_valency",
    );
    println!("== TAB-VALENCY: valency maps under A_w (initial configuration I = (0, 1)) ==\n");
    let basis = default_extension_basis();

    let mut report = Report::new("valency_map", &["scheme", "prefix", "valency"]);
    for scheme in [classic::s1(), classic::c1()] {
        let w = decide_classic(&scheme).witness().unwrap().clone();
        let factory = {
            let w = w.clone();
            move |role, input| AwProcess::new(role, input, w.clone())
        };
        for len in 0..=2usize {
            for prefix in GammaWord::enumerate_all(len) {
                let word = prefix.to_word();
                if !scheme.allows_prefix(&word) {
                    continue;
                }
                let v = valency(&factory, &scheme, &word, &basis, 256);
                report.row(&[&scheme.name(), &word, &show(&v)]);
            }
        }
    }
    minobs_bench::cli::require_artifact(report.finish());

    println!("\nDecisive prefixes (Definition III.10) for bounded schemes, via capped A_w:");
    let mut decisive = Report::new("decisive_prefixes", &["scheme", "p", "decisive prefix"]);
    for scheme in [classic::s0(), classic::t_white(), classic::c1(), classic::s1()] {
        let (p, w0) = min_excluded_prefix(&scheme, 4).unwrap();
        let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
        let factory = {
            let w = w.clone();
            move |role, input| AwProcess::new(role, input, w.clone()).with_round_cap(p)
        };
        let found = find_decisive_prefix(&factory, &scheme, &basis, p + 1, 64);
        decisive.row(&[
            &scheme.name(),
            &p,
            &found
                .map(|v| v.to_string())
                .unwrap_or_else(|| "none within depth".into()),
        ]);
    }
    minobs_bench::cli::require_artifact(decisive.finish());
    println!(
        "\n('none within depth' for the 1-round schemes is correct: their minimal\n\
         excluded word is a constant-drop word, so the witness is a constant-tail\n\
         scenario and A_w degenerates to a value dictatorship — ε is already\n\
         univalent and no bivalent prefix exists at all. The 2-round schemes have\n\
         ε itself as the decisive prefix: bivalent, with all three children\n\
         univalent, exactly the §III-C picture.)"
    );

    println!(
        "\nObstruction side (Lemma III.11's dichotomy): on R1 = Γω, every bivalent\n\
         prefix keeps a bivalent child — the decisive-prefix search never halts:"
    );
    let w: Scenario = "(b)".parse().unwrap();
    let factory = move |role, input| AwProcess::new(role, input, w.clone());
    let r1 = classic::r1();
    for depth in 1..=3 {
        let found = find_decisive_prefix(&factory, &r1, &basis, depth, 128);
        println!("  depth ≤ {depth}: decisive prefix = {found:?}");
        assert_eq!(found, None);
    }
    println!(
        "\nAnd the almost-fair curiosity: A_(b)ω is a Black-value dictatorship\n\
         (see core::valency tests) — ε is univalent for it, which is fine:\n\
         dictatorships satisfy uniform consensus."
    );
}
