//! TAB-ENV — the seven environments of Section II-A2 / Example II.11 /
//! Section IV-A: solvability verdicts and worst-case round complexity,
//! theory vs measurement.
//!
//! Paper's claims: environments 1–5 solvable in 1, 1, 1, 2, 2 rounds;
//! environments 6 (`Γ^ω`) and 7 (`Σ^ω`) are obstructions.

use minobs_bench::{mark, Report};
use minobs_core::prelude::*;
use minobs_core::scenario::enumerate_gamma_lassos;
use minobs_core::theorem::min_excluded_prefix;
use minobs_synth::checker::{first_solvable_horizon, gamma_alphabet, sigma_alphabet};

fn measured_worst_rounds(scheme: &ClassicScheme, p: usize, w0: &GammaWord) -> usize {
    let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
    let universe = enumerate_gamma_lassos(2, 2);
    let mut worst = 0;
    for s in universe.iter().filter(|s| scheme.contains(s)) {
        for (wi, bi) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut white = AwProcess::new(Role::White, wi, w.clone()).with_round_cap(p);
            let mut black = AwProcess::new(Role::Black, bi, w.clone()).with_round_cap(p);
            let out = run_two_process(&mut white, &mut black, s, 64);
            assert!(out.verdict.is_consensus(), "{} on {s}", scheme.name());
            worst = worst.max(out.rounds);
        }
    }
    worst
}

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_environments",
        "solvability across omission environments",
        "exp_environments",
    );
    println!("== TAB-ENV: the seven fault environments (Sections II-A2, IV-A) ==\n");
    let mut report = Report::new(
        "environments",
        &[
            "env",
            "scheme",
            "solvable (Thm III.8)",
            "witness",
            "rounds p (theory)",
            "rounds (measured)",
            "horizon (checker)",
        ],
    );

    // Paper expectations, for the assert trail:
    let expected_solvable = [true, true, true, true, true, false, false];
    let expected_rounds = [Some(1), Some(1), Some(1), Some(2), Some(2), None, None];

    for (i, scheme) in classic::seven_environments().into_iter().enumerate() {
        let verdict = decide_classic(&scheme);
        assert_eq!(verdict.is_solvable(), expected_solvable[i], "{}", scheme.name());

        let witness = verdict
            .witness()
            .map(|w| w.to_string())
            .unwrap_or_else(|| "—".into());

        let (theory, measured) = if scheme == classic::s2() {
            ("∞ (obstruction)".to_string(), "—".to_string())
        } else {
            match min_excluded_prefix(&scheme, 4) {
                Some((p, w0)) => {
                    assert_eq!(Some(p), expected_rounds[i], "{}", scheme.name());
                    let m = measured_worst_rounds(&scheme, p, &w0);
                    assert_eq!(m, p, "{}: measured matches theory", scheme.name());
                    (p.to_string(), m.to_string())
                }
                None => {
                    assert_eq!(expected_rounds[i], None);
                    if verdict.is_solvable() {
                        ("unbounded".to_string(), "unbounded".to_string())
                    } else {
                        ("∞ (obstruction)".to_string(), "—".to_string())
                    }
                }
            }
        };

        let horizon = if scheme == classic::s2() {
            first_solvable_horizon(&scheme, 3, &sigma_alphabet())
        } else {
            first_solvable_horizon(&scheme, 4, &gamma_alphabet())
        };
        let horizon = horizon.map(|h| h.to_string()).unwrap_or_else(|| "> max".into());

        report.row(&[
            &(i + 1),
            &scheme.name(),
            &mark(verdict.is_solvable()),
            &witness,
            &theory,
            &measured,
            &horizon,
        ]);
    }
    minobs_bench::cli::require_artifact(report.finish());

    println!("\nPaper: envs 1-5 solvable (1,1,1,2,2 rounds); envs 6-7 obstructions. All reproduced.");
}
