//! TAB-V1 — Theorem V.1 swept over graph families: for every graph,
//! `c(G)`, `deg(G)`, and the empirical consensus outcome for each loss
//! budget `f` — flooding under random `O_f` adversaries below the
//! threshold, the `Γ_C` cut adversary at it.
//!
//! The shape to reproduce: consensus succeeds for every `f < c(G)`, and
//! the cut adversary wins at `f = c(G)` — including on the families with
//! `c(G) < deg(G)` where \[SW07\] left the question open.

use minobs_bench::{mark, trace_sink_for, write_metrics_snapshot, Report};
use minobs_graphs::{cut_partition, edge_connectivity, generators, min_degree, Graph};
use minobs_net::{DecisionRule, FloodConsensus};
use minobs_obs::{
    MetricsRecorder, MetricsRegistry, NullRecorder, Recorder, RoundCounts, RoundTimer, TeeRecorder,
};
use std::sync::Arc;
use minobs_sim::adversary::{BudgetChecked, CutAdversary, GreedyCutAdversary, RandomOmissions};
use minobs_sim::network::run_network_with_recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families() -> Vec<(String, Graph)> {
    let mut v: Vec<(String, Graph)> = vec![
        ("cycle(8)".into(), generators::cycle(8)),
        ("path(8)".into(), generators::path(8)),
        ("star(8)".into(), generators::star(8)),
        ("complete(6)".into(), generators::complete(6)),
        ("grid(3x4)".into(), generators::grid(3, 4)),
        ("torus(3x3)".into(), generators::torus(3, 3)),
        ("hypercube(3)".into(), generators::hypercube(3)),
        ("hypercube(4)".into(), generators::hypercube(4)),
        ("barbell(4,2)".into(), generators::barbell(4, 2)),
        ("barbell(5,3)".into(), generators::barbell(5, 3)),
        ("theta(3,2)".into(), generators::theta(3, 2)),
        ("petersen".into(), generators::petersen()),
        ("K(3,4)".into(), generators::complete_bipartite(3, 4)),
    ];
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(42 + seed);
        v.push((
            format!("gnp(10,0.4)#{seed}"),
            generators::gnp_connected(10, 0.4, &mut rng),
        ));
    }
    v
}

fn flood_under_random_f(g: &Graph, f: usize, seeds: u64, recorder: &mut dyn Recorder) -> bool {
    let n = g.vertex_count();
    let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    (0..seeds).all(|seed| {
        let nodes = FloodConsensus::fleet(g, &inputs, DecisionRule::ValueOfMinId);
        let mut adv = BudgetChecked::new(RandomOmissions::new(f, StdRng::seed_from_u64(seed)), f);
        run_network_with_recorder(g, nodes, &mut adv, 2 * n, recorder)
            .verdict
            .is_consensus()
    })
}

fn flood_under_cut(g: &Graph, recorder: &mut dyn Recorder) -> (bool, bool) {
    let n = g.vertex_count();
    let inputs: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    let p = cut_partition(g).expect("connected");
    let scripted = {
        let nodes = FloodConsensus::fleet(g, &inputs, DecisionRule::ValueOfMinId);
        let mut adv = CutAdversary::new(&p, "(w)".parse().unwrap());
        run_network_with_recorder(g, nodes, &mut adv, 2 * n, recorder)
            .verdict
            .is_consensus()
    };
    let greedy = {
        let nodes = FloodConsensus::fleet(g, &inputs, DecisionRule::ValueOfMinId);
        let mut adv = GreedyCutAdversary::new(&p);
        run_network_with_recorder(g, nodes, &mut adv, 2 * n, recorder)
            .verdict
            .is_consensus()
    };
    (scripted, greedy)
}

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_network",
        "network consensus under adversaries, with tracing",
        "exp_network",
    );
    println!("== TAB-V1: consensus on G iff f < c(G) (Theorem V.1) ==\n");
    // MINOBS_TRACE=1 (or =<path>) streams every engine run in this binary
    // as JSONL; the artifact's meta block points at the file.
    let mut trace = trace_sink_for("exp_network");
    let trace_path = trace.as_ref().map(|(_, path)| path.clone());
    let mut null = NullRecorder;
    // Every run also feeds a metrics registry (tee'd with the trace sink
    // when tracing is on); the snapshot lands next to the report.
    let registry = Arc::new(MetricsRegistry::new());
    let mut metrics = MetricsRecorder::new(Arc::clone(&registry));

    let mut report = Report::new(
        "network_threshold",
        &[
            "graph",
            "n",
            "c(G)",
            "deg(G)",
            "gap c<deg",
            "consensus @ f=c-1",
            "consensus @ f=c (cut adv)",
            "consensus @ f=c (greedy adv)",
            "theorem shape holds",
        ],
    );

    for (name, g) in families() {
        let n = g.vertex_count();
        let c = edge_connectivity(&g);
        let d = min_degree(&g);
        let sink: &mut dyn Recorder = match trace.as_mut() {
            Some((sink, _)) => sink,
            None => &mut null,
        };
        let mut tee = TeeRecorder::new(&mut metrics, sink);
        let recorder: &mut dyn Recorder = &mut tee;
        // Below the threshold: every f < c must succeed (spot-check f = c-1
        // which dominates; smaller f only get easier).
        let below = if c > 0 {
            flood_under_random_f(&g, c - 1, 5, recorder)
        } else {
            true
        };
        let (cut_ok, greedy_ok) = flood_under_cut(&g, recorder);
        let shape = below && !cut_ok && !greedy_ok;
        assert!(shape, "{name}: threshold shape violated");
        report.row(&[
            &name,
            &n,
            &c,
            &d,
            &mark(c < d),
            &mark(below),
            &mark(cut_ok),
            &mark(greedy_ok),
            &mark(shape),
        ]);
    }
    if let Some(path) = &trace_path {
        report.note_trace(path);
    }
    minobs_bench::cli::require_artifact(report.finish());

    println!(
        "\nEvery family: flooding succeeds for f < c(G) (random O_f, 5 seeds) and both\n\
         cut adversaries defeat it at f = c(G) — the exact Theorem V.1 crossover,\n\
         including the [SW07] open region on the gap families (barbell, theta, path, star)."
    );

    // Round complexity of the possibility side, with the early-deciding
    // ablation: the worst-case bound is n-1, but knowledge completes at
    // the graph's eccentricity under no faults.
    println!("\nPossibility-side round complexity (deadline n-1 vs early deciding):");
    let mut rounds = Report::new(
        "network_rounds",
        &["graph", "n", "deadline rounds", "messages sent", "early decide (min..max round)"],
    );
    for (name, g) in families().into_iter().take(8) {
        let n = g.vertex_count();
        let inputs: Vec<u64> = (0..n as u64).collect();
        let sink: &mut dyn Recorder = match trace.as_mut() {
            Some((sink, _)) => sink,
            None => &mut null,
        };
        let mut tee = TeeRecorder::new(&mut metrics, sink);
        let recorder: &mut dyn Recorder = &mut tee;
        let nodes = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId);
        let out =
            run_network_with_recorder(&g, nodes, &mut minobs_sim::adversary::NoFault, 2 * n, recorder);
        assert!(out.verdict.is_consensus());

        let early: Vec<FloodConsensus> = FloodConsensus::fleet(&g, &inputs, DecisionRule::ValueOfMinId)
            .into_iter()
            .map(|node| node.early_deciding())
            .collect();
        // Manual stepping bypasses run_with_recorder, so frame the rounds
        // ourselves — trace consumers expect run_start .. run_end scoping.
        let mut net = minobs_sim::network::SyncNetwork::new(&g, early);
        let run_timer = RoundTimer::start_if(recorder.enabled());
        recorder.on_run_start("network", n, 1);
        while !net.all_halted() {
            net.step_with_recorder(&mut minobs_sim::adversary::NoFault, recorder);
        }
        let stats = net.stats();
        recorder.on_run_end(
            stats.rounds,
            RoundCounts {
                sent: stats.messages_sent,
                delivered: stats.messages_delivered,
                dropped: stats.messages_dropped,
                misaddressed: stats.misaddressed,
            },
            run_timer.elapsed_nanos(),
        );
        let early_rounds: Vec<usize> = net
            .nodes()
            .iter()
            .map(|node| node.decided_at().unwrap() + 1)
            .collect();
        let span = format!(
            "{}..{}",
            early_rounds.iter().min().unwrap(),
            early_rounds.iter().max().unwrap()
        );
        rounds.row(&[&name, &n, &out.stats.rounds, &out.stats.messages_sent, &span]);
    }
    if let Some(path) = &trace_path {
        rounds.note_trace(path);
    }
    minobs_bench::cli::require_artifact(rounds.finish());
    if let Some((sink, path)) = trace.take() {
        let lines = sink.lines();
        drop(sink);
        println!("[trace {} lines -> {}]", lines, path.display());
    }
    write_metrics_snapshot("exp_network", &registry.snapshot());
    println!(
        "\nEarly deciding fixes the value at knowledge completion (≈ eccentricity)\n\
         while relaying continues to the n-1 deadline — the decisions coincide."
    );
}
