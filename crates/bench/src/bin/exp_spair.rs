//! TAB-SPAIR — the special-pair structure of Section IV-C: the matching
//! over unfair scenarios, exact covers, minimal obstructions, the
//! descending chain, and the distance of Γω from minimality.

use minobs_bench::{mark, Report};
use minobs_core::minimal::{
    build_spair_graph, descending_chain, distance_to_minimality, is_lower_pair_member,
    CanonicalMinimalObstruction,
};
use minobs_core::prelude::*;
use minobs_core::spair::{classify_pair, SPairVerdict};
use minobs_core::theorem::decide_gamma;

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_spair",
        "special-pair tables and Theorem III.8 verdicts",
        "exp_spair",
    );
    println!("== TAB-SPAIR: the bipartite (matching) structure of special pairs ==\n");
    let mut report = Report::new(
        "spair_graph",
        &[
            "transient ≤",
            "unfair lassos",
            "special pairs",
            "matching?",
            "isolated (constants)",
            "lower members",
        ],
    );
    for max_prefix in 0..=4usize {
        let g = build_spair_graph(max_prefix);
        let isolated = (0..g.nodes.len()).filter(|&i| g.degree(i) == 0).count();
        report.row(&[
            &max_prefix,
            &g.nodes.len(),
            &g.edges.len(),
            &mark(g.is_matching()),
            &isolated,
            &distance_to_minimality(max_prefix),
        ]);
        assert!(g.is_matching());
    }
    minobs_bench::cli::require_artifact(report.finish());

    println!("\nPair verdict samples (decision procedure with reasons):");
    let mut verdicts = Report::new("spair_verdicts", &["w", "w'", "verdict"]);
    let samples = [
        ("-(w)", "b(w)"),
        ("--(b)", "-w(b)"),
        ("(w)", "-(w)"),
        ("(w)", "(b)"),
        ("(w)", "w(ww)"),
        ("(wb)", "(bw)"),
    ];
    for (a, b) in samples {
        let va: Scenario = a.parse().unwrap();
        let vb: Scenario = b.parse().unwrap();
        let verdict = classify_pair(&va, &vb);
        let text = match verdict {
            SPairVerdict::Special { first_divergence } => {
                format!("SPECIAL (diverges at round {first_divergence}, stays adjacent)")
            }
            SPairVerdict::EqualWords => "equal words".into(),
            SPairVerdict::Diverges { round } => format!("diverges at round {round}"),
            SPairVerdict::NotGamma => "outside Γω".into(),
        };
        verdicts.row(&[&a, &b, &text]);
    }
    minobs_bench::cli::require_artifact(verdicts.finish());

    println!("\nMinimal obstructions and the descending chain:");
    let mut minimality = Report::new("minimality", &["scheme", "verdict", "note"]);
    let cmo = CanonicalMinimalObstruction;
    minimality.row(&[
        &cmo.name(),
        &format!("{:?}", decide_gamma(&cmo)),
        &"minimal: removing any scenario flips it to solvable",
    ]);
    for (i, l) in descending_chain(3).iter().enumerate() {
        minimality.row(&[
            &l.name(),
            &format!("{:?}", decide_gamma(l)),
            &format!("chain element L_{i}: strictly smaller, still an obstruction"),
        ]);
    }
    minobs_bench::cli::require_artifact(minimality.finish());

    println!("\nLower/upper classification (parity rule) for a few unfair lassos:");
    for s in ["-(w)", "b(w)", "w(b)", "-(b)", "--(b)", "-w(b)", "(w)", "(b)"] {
        let sc: Scenario = s.parse().unwrap();
        let class = match is_lower_pair_member(&sc) {
            Some(true) => "LOWER member of its pair",
            Some(false) => "UPPER member of its pair",
            None => "unmatched (fair or constant)",
        };
        println!("  {s:<8} {class}");
    }
}
