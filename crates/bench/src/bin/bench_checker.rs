//! BENCH-CHECKER — the checker-side perf baseline.
//!
//! Re-runs the pinned `exp_budget` configuration — the classic total
//! budget `B_4` checked at horizons 4 (unsolvable) and 5 (solvable) —
//! a fixed number of iterations, timing every `solvable_by` call into a
//! `minobs_obs::Histogram`, and emits a `minobs/bench/v1` artifact
//! (kind `checker`). One extra instrumented pass per horizon (outside
//! the timed loop) captures the checker's shape gauges — peak frontier
//! size, cumulative frontier entries, distinct interned views, and the
//! resulting dedup ratio — so the artifact records not just how fast
//! the checker is but how much work the view-dedup is saving. Run via
//! `run_experiments.sh` this lands as `BENCH_checker.json` at the repo
//! root: the recorded trajectory that future "10× checker" claims
//! (ROADMAP item 4) must beat.
//!
//! ```text
//! bench_checker [--iters N] [--out PATH]
//! ```

use minobs_core::prelude::*;
use minobs_obs::{Histogram, MemoryRecorder, TraceEvent};
use minobs_synth::checker::{gamma_alphabet, solvable_by, solvable_by_with_recorder};
use serde_json::{Map, Value};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// The pinned horizons: `B_4` is unsolvable at 4 rounds and solvable at
/// 5 (the `f + 1` bound), so the run self-checks while it measures.
const HORIZONS: [usize; 2] = [4, 5];

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "bench_checker",
        "checker perf baseline: pinned exp_budget config, timed",
        "bench_checker --iters 20 --out BENCH_checker.json",
    );
    let mut iters = 20usize;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => iters = n,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    println!("== BENCH-CHECKER: total_budget(4) at horizons {HORIZONS:?}, {iters} iterations ==");
    let gamma = gamma_alphabet();
    let scheme = classic::total_budget(4);

    // One instrumented pass per horizon, outside the timed loop: the
    // frontier trajectory is deterministic for the pinned config, and
    // the recorder must not show up in the latency histogram.
    let mut peak_frontier = 0u64;
    let mut states_explored = 0u64;
    let mut distinct_views = 0u64;
    for k in HORIZONS {
        let mut recorder = MemoryRecorder::new();
        let solvable = solvable_by_with_recorder(&scheme, k, &gamma, &mut recorder).is_solvable();
        assert_eq!(solvable, k == 5, "total_budget(4) at horizon {k} (instrumented)");
        for event in recorder.events() {
            if let TraceEvent::CheckerRound {
                frontier, views, ..
            } = *event
            {
                peak_frontier = peak_frontier.max(frontier as u64);
                states_explored += frontier as u64;
                distinct_views = distinct_views.max(views as u64);
            }
        }
    }
    let dedup_ratio = distinct_views as f64 / states_explored.max(1) as f64;
    println!(
        "  peak frontier {peak_frontier}; {states_explored} frontier entries → \
         {distinct_views} distinct views (dedup ratio {dedup_ratio:.4})"
    );

    let latency = Histogram::new(&Histogram::latency_bounds());
    let mut max_ns = 0u64;
    let started = Instant::now();
    for _ in 0..iters {
        for k in HORIZONS {
            let check_started = Instant::now();
            let solvable = solvable_by(&scheme, k, &gamma).is_solvable();
            let nanos = check_started.elapsed().as_nanos() as u64;
            latency.observe(nanos);
            max_ns = max_ns.max(nanos);
            // The pinned config has a known answer at both horizons; a
            // wrong verdict means the baseline measured a broken checker.
            assert_eq!(solvable, k == 5, "total_budget(4) at horizon {k}");
        }
    }
    let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);
    let checks = latency.count();
    let achieved_qps = checks as f64 / elapsed_s;
    let quantile = |q: f64| {
        latency
            .quantile(q)
            .map(|v| v.min(max_ns as f64))
            .unwrap_or(0.0)
    };
    println!(
        "  {checks} checks in {elapsed_s:.2}s → {achieved_qps:.1} checks/s; \
         latency µs: p50 {:.0} p95 {:.0} p99 {:.0} max {:.0}",
        quantile(0.50) / 1_000.0,
        quantile(0.95) / 1_000.0,
        quantile(0.99) / 1_000.0,
        max_ns as f64 / 1_000.0,
    );

    let mut block = Map::new();
    block.insert("count", Value::from(checks));
    block.insert("p50", Value::from(quantile(0.50)));
    block.insert("p95", Value::from(quantile(0.95)));
    block.insert("p99", Value::from(quantile(0.99)));
    block.insert("max", Value::from(max_ns as f64));

    let mut body = Map::new();
    body.insert("kind", Value::from("checker"));
    body.insert("scheme", Value::from("total_budget(4)"));
    body.insert(
        "horizons",
        Value::from(HORIZONS.iter().map(|k| *k as u64).collect::<Vec<u64>>()),
    );
    body.insert("iters", Value::from(iters));
    body.insert("sent", Value::from(checks));
    body.insert("completed", Value::from(checks));
    body.insert("elapsed_s", Value::from(elapsed_s));
    body.insert("achieved_qps", Value::from(achieved_qps));
    body.insert("latency_ns", Value::Object(block));
    // Shape gauges from the instrumented pass: the memory/dedup face of
    // the ROADMAP item-4 baseline.
    body.insert("peak_frontier", Value::from(peak_frontier));
    body.insert("states_explored", Value::from(states_explored));
    body.insert("distinct_views", Value::from(distinct_views));
    body.insert("dedup_ratio", Value::from(dedup_ratio));

    match minobs_bench::write_bench_artifact(out.as_deref(), "bench_checker", body) {
        Some(_) => ExitCode::SUCCESS,
        None => ExitCode::FAILURE,
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: bench_checker [--iters N] [--out PATH]");
    ExitCode::FAILURE
}
