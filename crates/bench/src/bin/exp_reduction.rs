//! TAB-RED — the Section V-B reduction, measured: the emulation `A'`
//! (Algorithms 2–3) against the real network run through `ρ`, and
//! Algorithm 4 (`A_L`) end-to-end on solvable sub-schemes of `Γ_C^ω`.

use minobs_bench::{mark, Report};
use minobs_core::engine::run_two_process;
use minobs_core::letter::Role;
use minobs_core::scenario::Scenario;
use minobs_graphs::{cut_partition, generators, CutPartition, Graph};
use minobs_net::{AlgorithmL, DecisionRule, EmulatedSide, FloodConsensus};
use minobs_sim::adversary::CutAdversary;
use minobs_sim::network::{run_network, NodeProtocol as _};

fn sc(s: &str) -> Scenario {
    s.parse().unwrap()
}

fn split(
    g: &Graph,
    p: &CutPartition,
    inputs: &[u64],
) -> (Vec<FloodConsensus>, Vec<FloodConsensus>) {
    let fleet = FloodConsensus::fleet(g, inputs, DecisionRule::ValueOfMinId);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (v, node) in fleet.into_iter().enumerate() {
        if p.side_a.contains(&v) {
            a.push(node);
        } else {
            b.push(node);
        }
    }
    (a, b)
}

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_reduction",
        "two-process/network reduction audit",
        "exp_reduction",
    );
    println!("== TAB-RED: emulation equivalence (Algorithms 2-3) ==\n");
    let mut report = Report::new(
        "reduction",
        &["graph", "scenario", "net rounds", "emu rounds", "decisions equal"],
    );

    let graphs = [
        ("barbell(3,2)", generators::barbell(3, 2)),
        ("barbell(4,2)", generators::barbell(4, 2)),
        ("cycle(6)", generators::cycle(6)),
        ("theta(3,2)", generators::theta(3, 2)),
        ("grid(2x3)", generators::grid(2, 3)),
    ];
    for (name, g) in &graphs {
        let p = cut_partition(g).unwrap();
        let inputs: Vec<u64> = (0..g.vertex_count())
            .map(|v| p.side_b.contains(&v) as u64)
            .collect();
        for v in ["(-)", "(w)", "(b)", "(wb)", "w-(b)"] {
            // Network run under ρ⁻¹(v).
            let fleet = FloodConsensus::fleet(g, &inputs, DecisionRule::ValueOfMinId);
            let mut adv = CutAdversary::new(&p, sc(v));
            let net = run_network(g, fleet, &mut adv, 4 * g.vertex_count());

            // Emulated two-process run under v.
            let (side_a, side_b) = split(g, &p, &inputs);
            let mut white = EmulatedSide::new(Role::White, false, g, &p, side_a);
            let mut black = EmulatedSide::new(Role::Black, true, g, &p, side_b);
            let two = run_two_process(&mut white, &mut black, &sc(v), 4 * g.vertex_count());

            let mut emulated = vec![None; g.vertex_count()];
            for &node in &p.side_a {
                emulated[node] = white.node(node).unwrap().decision();
            }
            for &node in &p.side_b {
                emulated[node] = black.node(node).unwrap().decision();
            }
            let equal = net.decisions == emulated;
            assert!(equal, "{name} {v}");
            report.row(&[name, &v, &net.stats.rounds, &two.rounds, &mark(equal)]);
        }
    }
    minobs_bench::cli::require_artifact(report.finish());

    println!("\n== Algorithm 4 (A_L) on solvable sub-schemes of Γ_C^ω ==\n");
    let mut al = Report::new(
        "algorithm_l",
        &["graph", "scenario ρ⁻¹(v)", "verdict", "rounds"],
    );
    for (name, g) in &graphs {
        let p = cut_partition(g).unwrap();
        let inputs: Vec<u64> = (0..g.vertex_count())
            .map(|v| p.side_b.contains(&v) as u64)
            .collect();
        for v in ["(-)", "(w)", "(wb)", "-(b)", "w(b)"] {
            let fleet = AlgorithmL::fleet(g, &p, &sc("(b)"), &inputs);
            let mut adv = CutAdversary::new(&p, sc(v));
            let out = run_network(g, fleet, &mut adv, 256);
            assert!(out.verdict.is_consensus(), "{name} {v}: {:?}", out.verdict);
            al.row(&[name, &v, &format!("{:?}", out.verdict), &out.stats.rounds]);
        }
    }
    minobs_bench::cli::require_artifact(al.finish());
    println!(
        "\nEmulation decisions match the network run on every (graph, scenario);\n\
         A_L reaches consensus on every solvable-sub-scheme scenario."
    );
}
