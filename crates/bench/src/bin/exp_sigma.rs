//! TAB-SIGMA — beyond Theorem III.8: schemes **with double omission**
//! (the paper's Section VI names their characterization as open), mapped
//! empirically with the bounded model checker over the full `Σ` alphabet.
//!
//! Two findings, both machine-verified here and sharpening the contrast
//! with the Γ world:
//!
//! * **excluding one prefix never helps in Σ** — `Σω ∖ w0·Σω` stays
//!   unsolvable at every horizon, for every probed `w0` (with or without
//!   `x` letters). In Γ, excluding any one prefix `w0` makes the scheme
//!   solvable at exactly `|w0|` rounds (Cor. III.14 / Prop. III.15); in Σ
//!   the surviving Γ-chains and the all-silent `x^k` chains keep the
//!   configuration space connected.
//! * **the `f+1` pattern survives double omission** — `ΣB_k` ("at most
//!   `k` lossy rounds, simultaneous losses allowed") is solvable at
//!   exactly `k+1` rounds, like its Γ twin.

use minobs_bench::{mark, Report};
use minobs_core::prelude::*;
use minobs_synth::checker::{sigma_alphabet, solvable_by, CheckResult};

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_sigma",
        "Σ-scheme solvability tables",
        "exp_sigma",
    );
    println!("== TAB-SIGMA: double omission, explored with the model checker ==\n");
    let sigma = sigma_alphabet();

    println!("Σω avoiding one prefix — unsolvable at EVERY horizon (unlike Γ):");
    let mut avoid = Report::new(
        "sigma_avoid_prefix",
        &["forbidden w0", "|w0|", "Γ-twin horizon", "Σ horizons 0..=4", "chain len @ |w0|"],
    );
    for w0 in ["x", "w", "xx", "wx", "-x", "xbx", "wxb"] {
        let word: Word = w0.parse().unwrap();
        let scheme = ClassicScheme::SigmaAvoidPrefix(word.clone());
        let verdicts: Vec<bool> = (0..=4)
            .map(|k| solvable_by(&scheme, k, &sigma).is_solvable())
            .collect();
        assert!(verdicts.iter().all(|&v| !v), "{w0}: must stay unsolvable");
        let chain_len = match solvable_by(&scheme, word.len(), &sigma) {
            CheckResult::Unsolvable { chain } => chain.len(),
            _ => unreachable!(),
        };
        // The Γ twin (when w0 is a Γ-word) IS solvable at |w0|:
        let gamma_twin = word.to_gamma().map(|g| {
            use minobs_synth::checker::{first_solvable_horizon, gamma_alphabet};
            first_solvable_horizon(&ClassicScheme::AvoidPrefix(g.to_word()), 4, &gamma_alphabet())
        });
        let twin_text = match gamma_twin {
            Some(Some(h)) => h.to_string(),
            Some(None) => "> 4".into(),
            None => "n/a (w0 ∉ Γ*)".into(),
        };
        avoid.row(&[
            &w0,
            &word.len(),
            &twin_text,
            &format!("{verdicts:?}"),
            &chain_len,
        ]);
    }
    minobs_bench::cli::require_artifact(avoid.finish());

    println!("\nΣB_k — at most k lossy rounds, double omission allowed:");
    let mut budget = Report::new(
        "sigma_budget",
        &["k", "checker @ k", "checker @ k+1", "f+1 pattern holds"],
    );
    for k in 0..=3usize {
        let scheme = ClassicScheme::SigmaTotalBudget(k);
        let at_k = solvable_by(&scheme, k, &sigma).is_solvable();
        let at_k1 = solvable_by(&scheme, k + 1, &sigma).is_solvable();
        assert!(!at_k && at_k1, "k={k}");
        budget.row(&[&k, &mark(at_k), &mark(at_k1), &mark(!at_k && at_k1)]);
    }
    minobs_bench::cli::require_artifact(budget.finish());

    println!("\nΣω minus finitely many scenarios — never helps at bounded horizons:");
    let mut minus = Report::new("sigma_minus", &["excluded", "horizons 0..=3 all unsolvable"]);
    let exclusions: Vec<Vec<Scenario>> = vec![
        vec!["(x)".parse().unwrap()],
        vec!["(x)".parse().unwrap(), "(w)".parse().unwrap(), "(b)".parse().unwrap()],
        vec!["(-)".parse().unwrap()],
    ];
    for excluded in exclusions {
        // Σω \ X has Pref = Σ*, so the checker behaves like S2 itself —
        // the bounded analogue of "if any messenger may be captured,
        // consensus is impossible".
        struct SigmaMinus(Vec<Scenario>);
        impl OmissionScheme for SigmaMinus {
            fn contains(&self, w: &Scenario) -> bool {
                !self.0.contains(w)
            }
            fn allows_prefix(&self, _u: &Word) -> bool {
                true
            }
            fn name(&self) -> String {
                "Σω minus finite set".into()
            }
        }
        let scheme = SigmaMinus(excluded.clone());
        let all_unsolvable = (0..=3).all(|k| !solvable_by(&scheme, k, &sigma).is_solvable());
        assert!(all_unsolvable);
        let names: Vec<String> = excluded.iter().map(|s| s.to_string()).collect();
        minus.row(&[&names.join(", "), &mark(all_unsolvable)]);
    }
    minobs_bench::cli::require_artifact(minus.finish());

    println!(
        "\nSection VI's open question, bounded: one excluded prefix is enough to cut\n\
         every Γ-chain but never enough in Σ — any future characterization of\n\
         double-omission obstructions must remove *sets* of prefixes large enough\n\
         to cut both the Γ-chains and the all-silent chains simultaneously."
    );
}
