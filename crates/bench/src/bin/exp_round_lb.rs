//! TAB-LB — round-complexity tightness (Corollary III.14 /
//! Proposition III.15): sweep forbidden-prefix schemes with `p = 1..8` and
//! show the three quantities coincide:
//!
//! * the theory bound `p` (smallest length with an excluded prefix);
//! * the model checker's first solvable horizon (lower bound side);
//! * the measured worst-case rounds of the capped `A_w` (upper bound side).

use minobs_bench::Report;
use minobs_core::prelude::*;
use minobs_core::scenario::enumerate_gamma_lassos;
use minobs_core::theorem::min_excluded_prefix;
use minobs_synth::checker::{first_solvable_horizon, gamma_alphabet, solvable_by};

fn main() {
    minobs_bench::cli::handle_common_flags(
        "exp_round_lb",
        "round lower-bound table",
        "exp_round_lb",
    );
    println!("== TAB-LB: tight round complexity for AvoidPrefix schemes ==\n");
    let mut report = Report::new(
        "round_lb",
        &[
            "forbidden w0",
            "p (theory)",
            "checker horizon",
            "solvable at p-1?",
            "measured worst rounds",
        ],
    );

    // One forbidden word per length, lengths 1..=8 (checker horizons kept
    // to ≤ 6 for runtime; beyond that only theory+measurement).
    let words = ["w", "wb", "bw-", "w-b-", "bbwww", "w-b-w-", "bwbwbwb", "w-bw-bw-"];
    for w0_text in words {
        let w0: GammaWord = w0_text.parse().unwrap();
        let scheme = ClassicScheme::AvoidPrefix(w0.to_word());
        let (p, excluded) = min_excluded_prefix(&scheme, 8).expect("bounded");
        assert_eq!(p, w0.len());
        assert_eq!(excluded, w0);

        let (horizon, below) = if p <= 6 {
            let h = first_solvable_horizon(&scheme, p + 1, &gamma_alphabet());
            let below = if p > 0 {
                solvable_by(&scheme, p - 1, &gamma_alphabet()).is_solvable()
            } else {
                false
            };
            assert_eq!(h, Some(p), "checker matches theory for {w0_text}");
            assert!(!below, "no algorithm below p for {w0_text}");
            (p.to_string(), below.to_string())
        } else {
            ("(skipped)".into(), "(skipped)".into())
        };

        // Measured: capped A_w over lasso members.
        let w = Scenario::new(w0.to_word(), "b".parse().unwrap());
        let mut worst = 0usize;
        let mut runs = 0usize;
        for s in enumerate_gamma_lassos(2, 2) {
            if !scheme.contains(&s) {
                continue;
            }
            for (wi, bi) in [(false, true), (true, false), (true, true)] {
                let mut white = AwProcess::new(Role::White, wi, w.clone()).with_round_cap(p);
                let mut black = AwProcess::new(Role::Black, bi, w.clone()).with_round_cap(p);
                let out = run_two_process(&mut white, &mut black, &s, p + 16);
                assert!(out.verdict.is_consensus(), "{w0_text} on {s}");
                worst = worst.max(out.rounds);
                runs += 1;
            }
        }
        assert!(runs > 0);
        assert!(worst <= p, "{w0_text}: capped A_w stays within p");
        report.row(&[&w0_text, &p, &horizon, &below, &worst]);
    }
    minobs_bench::cli::require_artifact(report.finish());
    println!("\np = checker horizon = measured worst rounds, for every swept prefix length.");
}
