//! Trace and bench-artifact validation, shared by the `trace_lint`
//! binary and by test suites that want to assert a generated stream is
//! lint-clean (flight-recorder dumps, daemon traces) without shelling
//! out.
//!
//! See the `trace_lint` binary's documentation for the full invariant
//! list; [`lint`] is the JSONL-trace checker and [`lint_bench`] the
//! `minobs/bench/v1` artifact checker.

use minobs_obs::{validate_bench_artifact, BENCH_SCHEMA, SCHEMA};
use serde_json::Value;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Default)]
struct RunTally {
    message_dropped: u64,
    round_sent: u64,
    round_delivered: u64,
    round_dropped: u64,
    rounds_seen: u64,
}

fn field_u64(value: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing numeric field {key:?}"))
}

/// Validates a `minobs/trace/v1` JSONL stream; returns
/// `(lines_checked, runs_closed)` or the first violation.
pub fn lint(text: &str) -> Result<(usize, usize), String> {
    let mut runs_closed = 0usize;
    let mut lines_checked = 0usize;
    let mut current: Option<RunTally> = None;
    // In-flight service requests: seq → method.
    let mut pending_svc: HashMap<u64, String> = HashMap::new();
    // Open profiling spans, innermost last: (span_id, name).
    let mut span_stack: Vec<(u64, String)> = Vec::new();
    let mut span_ids_seen: HashSet<u64> = HashSet::new();
    // First node_id seen: one trace file is one node's stream.
    let mut node_seen: Option<String> = None;

    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {line_no}: blank line in JSONL stream"));
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|err| format!("line {line_no}: not valid JSON: {err}"))?;
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {line_no}: missing \"schema\""))?;
        if schema != SCHEMA {
            return Err(format!(
                "line {line_no}: schema {schema:?}, expected {SCHEMA:?}"
            ));
        }
        let event = value
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {line_no}: missing \"event\""))?;
        field_u64(&value, "round", line_no)?;
        if let Some(node) = value.get("node_id") {
            let node = node
                .as_str()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("line {line_no}: node_id must be a non-empty string"))?;
            match &node_seen {
                Some(seen) if seen != node => {
                    return Err(format!(
                        "line {line_no}: node_id {node:?} != {seen:?} seen earlier — one trace file is one node's stream"
                    ));
                }
                Some(_) => {}
                None => node_seen = Some(node.to_string()),
            }
        }
        lines_checked += 1;

        match event {
            "run_start" => {
                if current.is_some() {
                    return Err(format!("line {line_no}: run_start inside an open run"));
                }
                // Each engine run constructs a fresh `SpanIds`, so span-id
                // uniqueness is scoped to the run bracket. Only reset the
                // scope when no span is open (a still-open outer span keeps
                // its id reserved).
                if span_stack.is_empty() {
                    span_ids_seen.clear();
                }
                current = Some(RunTally::default());
            }
            "message" => {
                let tally = current
                    .as_mut()
                    .ok_or_else(|| format!("line {line_no}: message outside a run"))?;
                let status = value
                    .get("status")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: message missing \"status\""))?;
                if status == "dropped" {
                    tally.message_dropped += 1;
                }
            }
            "round_end" => {
                let tally = current
                    .as_mut()
                    .ok_or_else(|| format!("line {line_no}: round_end outside a run"))?;
                let sent = field_u64(&value, "sent", line_no)?;
                let delivered = field_u64(&value, "delivered", line_no)?;
                let dropped = field_u64(&value, "dropped", line_no)?;
                if sent != delivered + dropped {
                    return Err(format!(
                        "line {line_no}: round conservation broken: sent {sent} != delivered {delivered} + dropped {dropped}"
                    ));
                }
                tally.round_sent += sent;
                tally.round_delivered += delivered;
                tally.round_dropped += dropped;
                tally.rounds_seen += 1;
            }
            "run_end" => {
                let tally = current
                    .take()
                    .ok_or_else(|| format!("line {line_no}: run_end without run_start"))?;
                let rounds = field_u64(&value, "round", line_no)?;
                let sent = field_u64(&value, "sent", line_no)?;
                let delivered = field_u64(&value, "delivered", line_no)?;
                let dropped = field_u64(&value, "dropped", line_no)?;
                if rounds != tally.rounds_seen {
                    return Err(format!(
                        "line {line_no}: run_end reports {rounds} rounds, trace has {} round_end events",
                        tally.rounds_seen
                    ));
                }
                for (label, total, accumulated) in [
                    ("sent", sent, tally.round_sent),
                    ("delivered", delivered, tally.round_delivered),
                    ("dropped", dropped, tally.round_dropped),
                ] {
                    if total != accumulated {
                        return Err(format!(
                            "line {line_no}: run_end {label} {total} != per-round sum {accumulated}"
                        ));
                    }
                }
                if tally.message_dropped != dropped {
                    return Err(format!(
                        "line {line_no}: {} dropped message events, run_end reports {dropped}",
                        tally.message_dropped
                    ));
                }
                runs_closed += 1;
            }
            "engine_degraded" => {
                // Degradation happens inside a run, during a specific phase.
                if current.is_none() {
                    return Err(format!("line {line_no}: engine_degraded outside a run"));
                }
                let phase = value
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: engine_degraded missing \"phase\""))?;
                if phase != "send" && phase != "advance" {
                    return Err(format!(
                        "line {line_no}: engine_degraded phase {phase:?}, expected \"send\" or \"advance\""
                    ));
                }
                field_u64(&value, "shard", line_no)?;
            }
            "budget_exhausted" => {
                // Emitted by the checker; the frontier at the stop point can
                // never exceed the cumulative states explored.
                let frontier = field_u64(&value, "frontier", line_no)?;
                let states = field_u64(&value, "states", line_no)?;
                if frontier > states {
                    return Err(format!(
                        "line {line_no}: budget_exhausted frontier {frontier} > states explored {states}"
                    ));
                }
            }
            "svc_request" => {
                let seq = field_u64(&value, "seq", line_no)?;
                let method = value
                    .get("method")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: svc_request missing \"method\""))?;
                if pending_svc.insert(seq, method.to_string()).is_some() {
                    return Err(format!("line {line_no}: duplicate svc_request seq {seq}"));
                }
            }
            "svc_response" => {
                let seq = field_u64(&value, "seq", line_no)?;
                let method = value
                    .get("method")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: svc_response missing \"method\""))?;
                let requested = pending_svc.remove(&seq).ok_or_else(|| {
                    format!("line {line_no}: svc_response seq {seq} without a matching svc_request")
                })?;
                if requested != method {
                    return Err(format!(
                        "line {line_no}: svc_response seq {seq} method {method:?} != request method {requested:?}"
                    ));
                }
                value
                    .get("ok")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| format!("line {line_no}: svc_response missing boolean \"ok\""))?;
                let cache = value
                    .get("cache")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: svc_response missing \"cache\""))?;
                if !matches!(cache, "hit" | "miss" | "subsumed" | "none") {
                    return Err(format!(
                        "line {line_no}: svc_response cache {cache:?}, expected hit/miss/subsumed/none"
                    ));
                }
                field_u64(&value, "nanos", line_no)?;
            }
            "span_start" => {
                let span_id = field_u64(&value, "span_id", line_no)?;
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: span_start missing \"name\""))?;
                let trace_id = value.get("trace_id");
                if let Some(trace) = trace_id {
                    let trace = trace.as_str().ok_or_else(|| {
                        format!("line {line_no}: trace_id must be a string")
                    })?;
                    let lower_hex = trace.len() == 32
                        && trace
                            .bytes()
                            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
                    if !lower_hex {
                        return Err(format!(
                            "line {line_no}: trace_id {trace:?} is not 32 lowercase hex digits"
                        ));
                    }
                    if trace.bytes().all(|b| b == b'0') {
                        return Err(format!(
                            "line {line_no}: trace_id is zero — TraceContext::root never mints it"
                        ));
                    }
                }
                if value.get("ctx_parent").is_some() {
                    field_u64(&value, "ctx_parent", line_no)?;
                    if trace_id.is_none() {
                        return Err(format!(
                            "line {line_no}: ctx_parent without trace_id — a remote parent only means something inside a trace"
                        ));
                    }
                }
                if !span_ids_seen.insert(span_id) {
                    return Err(format!(
                        "line {line_no}: span id {span_id} reused (ids must be unique within a run)"
                    ));
                }
                if let Some(parent) = value.get("parent").and_then(Value::as_u64) {
                    match span_stack.last() {
                        Some((open_id, _)) if *open_id == parent => {}
                        Some((open_id, _)) => {
                            return Err(format!(
                                "line {line_no}: span {span_id} declares parent {parent} but the enclosing open span is {open_id}"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "line {line_no}: span {span_id} declares parent {parent} but no span is open"
                            ));
                        }
                    }
                }
                span_stack.push((span_id, name.to_string()));
            }
            "span_end" => {
                let span_id = field_u64(&value, "span_id", line_no)?;
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: span_end missing \"name\""))?;
                field_u64(&value, "nanos", line_no)?;
                let (open_id, open_name) = span_stack.pop().ok_or_else(|| {
                    format!("line {line_no}: span_end {span_id} without an open span")
                })?;
                if open_id != span_id || open_name != name {
                    return Err(format!(
                        "line {line_no}: span_end {span_id} {name:?} does not close the innermost open span {open_id} {open_name:?}"
                    ));
                }
            }
            "wal_append" => {
                let op = value
                    .get("op")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: wal_append missing \"op\""))?;
                if !matches!(op, "horizon" | "theorem" | "snapshot") {
                    return Err(format!(
                        "line {line_no}: wal_append op {op:?}, expected horizon/theorem/snapshot"
                    ));
                }
                value
                    .get("key")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: wal_append missing \"key\""))?;
                field_u64(&value, "bytes", line_no)?;
            }
            "wal_replay" => {
                field_u64(&value, "records", line_no)?;
                field_u64(&value, "bytes", line_no)?;
                value
                    .get("dropped_tail")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| {
                        format!("line {line_no}: wal_replay missing boolean \"dropped_tail\"")
                    })?;
            }
            "wal_degraded" => {
                value
                    .get("error")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: wal_degraded missing \"error\""))?;
            }
            "gossip_round" => {
                value
                    .get("peer")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: gossip_round missing \"peer\""))?;
                field_u64(&value, "sent", line_no)?;
                field_u64(&value, "received", line_no)?;
                field_u64(&value, "nanos", line_no)?;
            }
            "gossip_apply" => {
                value
                    .get("peer")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: gossip_apply missing \"peer\""))?;
                let op = value
                    .get("op")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: gossip_apply missing \"op\""))?;
                if !matches!(op, "horizon" | "theorem") {
                    return Err(format!(
                        "line {line_no}: gossip_apply op {op:?}, expected horizon/theorem \
                         (snapshots never travel over gossip)"
                    ));
                }
                value
                    .get("key")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: gossip_apply missing \"key\""))?;
                value
                    .get("accepted")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| {
                        format!("line {line_no}: gossip_apply missing boolean \"accepted\"")
                    })?;
            }
            "peer_down" => {
                value
                    .get("peer")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: peer_down missing \"peer\""))?;
                field_u64(&value, "failures", line_no)?;
            }
            "health" => {
                let status = value
                    .get("status")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: health missing \"status\""))?;
                if !matches!(status, "ok" | "degraded") {
                    return Err(format!(
                        "line {line_no}: health status {status:?}, expected ok/degraded"
                    ));
                }
                for probe in ["ready", "live"] {
                    value.get(probe).and_then(Value::as_bool).ok_or_else(|| {
                        format!("line {line_no}: health missing boolean {probe:?}")
                    })?;
                }
            }
            "flight_dump" => {
                // The meta line heading a flight-recorder dump: trigger
                // reason, kept/dropped/truncated counts, sampling flag.
                let reason = value
                    .get("reason")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {line_no}: flight_dump missing \"reason\""))?;
                if reason.is_empty() {
                    return Err(format!(
                        "line {line_no}: flight_dump reason must be non-empty"
                    ));
                }
                field_u64(&value, "events", line_no)?;
                field_u64(&value, "dropped", line_no)?;
                field_u64(&value, "truncated", line_no)?;
                value.get("sampled").and_then(Value::as_bool).ok_or_else(|| {
                    format!("line {line_no}: flight_dump missing boolean \"sampled\"")
                })?;
            }
            "trace_sampled" => {
                // The tail-sampling marker a daemon writes at sink start:
                // keep probability must be a real probability.
                let sample = value
                    .get("sample")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| {
                        format!("line {line_no}: trace_sampled missing numeric \"sample\"")
                    })?;
                if !(0.0..=1.0).contains(&sample) {
                    return Err(format!(
                        "line {line_no}: trace_sampled sample {sample} outside [0, 1]"
                    ));
                }
                field_u64(&value, "slow_ms", line_no)?;
            }
            // decision/span/checker_round/checker_progress/horizon need no
            // cross-checks here.
            _ => {}
        }
    }
    if current.is_some() {
        return Err("trace ends inside an open run (no final run_end)".to_string());
    }
    if let Some((span_id, name)) = span_stack.last() {
        return Err(format!(
            "{} span(s) never closed at end of file (innermost: {span_id} {name:?})",
            span_stack.len()
        ));
    }
    if !pending_svc.is_empty() {
        let mut seqs: Vec<u64> = pending_svc.keys().copied().collect();
        seqs.sort_unstable();
        return Err(format!(
            "{} svc_request(s) never answered (seqs {seqs:?}) — the daemon drains before exiting",
            seqs.len()
        ));
    }
    Ok((lines_checked, runs_closed))
}

/// Detects a `minobs/bench/v1` artifact: the whole file is one JSON
/// object carrying that schema tag. Returns its validation outcome, or
/// `None` when the file is something else (a JSONL trace).
pub fn lint_bench(text: &str) -> Option<Result<(), String>> {
    let value: Value = serde_json::from_str(text.trim()).ok()?;
    if value.get("schema").and_then(Value::as_str) != Some(BENCH_SCHEMA) {
        return None;
    }
    Some(validate_bench_artifact(&value))
}

#[cfg(test)]
mod tests {
    use super::{lint, lint_bench};

    fn line(s: &str) -> String {
        s.replace("SCHEMA", minobs_obs::SCHEMA)
    }

    fn bench_text(p99: &str, achieved: &str) -> String {
        format!(
            r#"{{"schema":"{}","id":"t","kind":"svc_open_loop","meta":{{"timestamp":"2026-08-07T00:00:00Z","rustc":"rustc","threads":1}},"offered_qps":100.0,"achieved_qps":{achieved},"latency_ns":{{"count":10,"p50":100,"p95":200,"p99":{p99},"max":5000}}}}"#,
            minobs_obs::BENCH_SCHEMA
        )
    }

    #[test]
    fn bench_artifacts_are_detected_and_validated() {
        // A valid artifact passes the bench path.
        assert_eq!(lint_bench(&bench_text("300", "90.0")), Some(Ok(())));
        // Non-monotone quantiles are a violation (p99 < p95).
        let err = lint_bench(&bench_text("150", "90.0")).unwrap().unwrap_err();
        assert!(err.contains("monotone"), "{err}");
        // achieved above offered is a violation.
        let err = lint_bench(&bench_text("300", "120.0")).unwrap().unwrap_err();
        assert!(err.contains("exceeds offered"), "{err}");
        // A JSONL trace line is NOT a bench artifact: falls through.
        assert!(lint_bench(&line(
            r#"{"schema":"SCHEMA","event":"svc_request","round":0,"seq":0,"method":"stats"}"#
        ))
        .is_none());
        // A single object under some other schema also falls through.
        assert!(lint_bench(r#"{"schema":"minobs/other/v1"}"#).is_none());
    }

    #[test]
    fn accepts_a_conserving_run() {
        let text = [
            r#"{"schema":"SCHEMA","event":"run_start","round":0,"engine":"network","nodes":2,"threads":1}"#,
            r#"{"schema":"SCHEMA","event":"message","round":0,"from":0,"to":1,"status":"dropped"}"#,
            r#"{"schema":"SCHEMA","event":"message","round":0,"from":1,"to":0,"status":"delivered"}"#,
            r#"{"schema":"SCHEMA","event":"round_end","round":0,"sent":2,"delivered":1,"dropped":1,"misaddressed":0,"nanos":0}"#,
            r#"{"schema":"SCHEMA","event":"run_end","round":1,"sent":2,"delivered":1,"dropped":1,"misaddressed":0,"nanos":0}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&text), Ok((5, 1)));
    }

    #[test]
    fn rejects_drop_sum_mismatch() {
        let text = [
            r#"{"schema":"SCHEMA","event":"run_start","round":0,"engine":"network","nodes":2,"threads":1}"#,
            r#"{"schema":"SCHEMA","event":"round_end","round":0,"sent":2,"delivered":1,"dropped":1,"misaddressed":0,"nanos":0}"#,
            r#"{"schema":"SCHEMA","event":"run_end","round":1,"sent":2,"delivered":1,"dropped":1,"misaddressed":0,"nanos":0}"#,
        ]
        .map(line)
        .join("\n");
        // round_end claims a drop but no dropped message event exists.
        let err = lint(&text).unwrap_err();
        assert!(err.contains("dropped message events"), "{err}");
    }

    #[test]
    fn rejects_bad_schema_and_bad_json() {
        assert!(lint(r#"{"schema":"other/v9","event":"x","round":0}"#)
            .unwrap_err()
            .contains("schema"));
        assert!(lint("not json").unwrap_err().contains("not valid JSON"));
    }

    #[test]
    fn validates_engine_degraded_and_budget_exhausted() {
        let ok = [
            r#"{"schema":"SCHEMA","event":"run_start","round":0,"engine":"network_parallel","nodes":2,"threads":2}"#,
            r#"{"schema":"SCHEMA","event":"engine_degraded","round":0,"phase":"send","shard":1}"#,
            r#"{"schema":"SCHEMA","event":"round_end","round":0,"sent":0,"delivered":0,"dropped":0,"misaddressed":0,"nanos":0}"#,
            r#"{"schema":"SCHEMA","event":"run_end","round":1,"sent":0,"delivered":0,"dropped":0,"misaddressed":0,"nanos":0}"#,
            r#"{"schema":"SCHEMA","event":"budget_exhausted","round":2,"frontier":9,"states":40}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&ok), Ok((5, 1)));

        let outside = line(
            r#"{"schema":"SCHEMA","event":"engine_degraded","round":0,"phase":"send","shard":0}"#,
        );
        assert!(lint(&outside).unwrap_err().contains("outside a run"));

        let bad_phase = [
            r#"{"schema":"SCHEMA","event":"run_start","round":0,"engine":"network_parallel","nodes":2,"threads":2}"#,
            r#"{"schema":"SCHEMA","event":"engine_degraded","round":0,"phase":"warp","shard":0}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&bad_phase).unwrap_err().contains("phase"));

        let bad_budget =
            line(r#"{"schema":"SCHEMA","event":"budget_exhausted","round":1,"frontier":50,"states":10}"#);
        assert!(lint(&bad_budget).unwrap_err().contains("frontier"));
    }

    #[test]
    fn validates_svc_event_pairing() {
        let ok = [
            r#"{"schema":"SCHEMA","event":"svc_request","round":0,"seq":0,"method":"check_horizon"}"#,
            r#"{"schema":"SCHEMA","event":"svc_request","round":0,"seq":1,"method":"stats"}"#,
            r#"{"schema":"SCHEMA","event":"svc_response","round":0,"seq":1,"method":"stats","ok":true,"cache":"none","nanos":120}"#,
            r#"{"schema":"SCHEMA","event":"svc_response","round":0,"seq":0,"method":"check_horizon","ok":true,"cache":"subsumed","nanos":950}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&ok), Ok((4, 0)));

        let unanswered = line(
            r#"{"schema":"SCHEMA","event":"svc_request","round":0,"seq":7,"method":"stats"}"#,
        );
        assert!(lint(&unanswered).unwrap_err().contains("never answered"));

        let orphan = line(
            r#"{"schema":"SCHEMA","event":"svc_response","round":0,"seq":7,"method":"stats","ok":true,"cache":"none","nanos":1}"#,
        );
        assert!(lint(&orphan).unwrap_err().contains("matching svc_request"));

        let method_mismatch = [
            r#"{"schema":"SCHEMA","event":"svc_request","round":0,"seq":2,"method":"stats"}"#,
            r#"{"schema":"SCHEMA","event":"svc_response","round":0,"seq":2,"method":"solvable","ok":true,"cache":"hit","nanos":1}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&method_mismatch).unwrap_err().contains("method"));

        let bad_cache = [
            r#"{"schema":"SCHEMA","event":"svc_request","round":0,"seq":3,"method":"stats"}"#,
            r#"{"schema":"SCHEMA","event":"svc_response","round":0,"seq":3,"method":"stats","ok":true,"cache":"warm","nanos":1}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&bad_cache).unwrap_err().contains("cache"));

        let dup_seq = [
            r#"{"schema":"SCHEMA","event":"svc_request","round":0,"seq":4,"method":"stats"}"#,
            r#"{"schema":"SCHEMA","event":"svc_request","round":0,"seq":4,"method":"stats"}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&dup_seq).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn accepts_well_formed_nested_spans() {
        let text = [
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"outer"}"#,
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":1,"parent":0,"name":"inner"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":1,"name":"inner","nanos":50}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":0,"name":"outer","nanos":120}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&text), Ok((4, 0)));
    }

    #[test]
    fn span_ids_may_restart_across_runs() {
        // Each engine run constructs a fresh `SpanIds`, so consecutive
        // runs in one trace legitimately reuse id 0 — the uniqueness
        // scope is the run bracket, not the whole stream.
        let text = [
            r#"{"schema":"SCHEMA","event":"run_start","round":0,"engine":"network","nodes":2,"threads":1}"#,
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"net_send"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":0,"name":"net_send","nanos":10}"#,
            r#"{"schema":"SCHEMA","event":"round_end","round":0,"sent":0,"delivered":0,"dropped":0,"misaddressed":0,"nanos":1}"#,
            r#"{"schema":"SCHEMA","event":"run_end","round":1,"sent":0,"delivered":0,"dropped":0,"misaddressed":0,"nanos":2}"#,
            r#"{"schema":"SCHEMA","event":"run_start","round":0,"engine":"network","nodes":2,"threads":1}"#,
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"net_send"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":0,"name":"net_send","nanos":10}"#,
            r#"{"schema":"SCHEMA","event":"round_end","round":0,"sent":0,"delivered":0,"dropped":0,"misaddressed":0,"nanos":1}"#,
            r#"{"schema":"SCHEMA","event":"run_end","round":1,"sent":0,"delivered":0,"dropped":0,"misaddressed":0,"nanos":2}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&text), Ok((10, 2)));
    }

    #[test]
    fn rejects_span_violations() {
        let reused_id = [
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":5,"parent":null,"name":"a"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":5,"name":"a","nanos":1}"#,
            r#"{"schema":"SCHEMA","event":"span_start","round":1,"span_id":5,"parent":null,"name":"a"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":1,"span_id":5,"name":"a","nanos":1}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&reused_id).unwrap_err().contains("reused"));

        let crossed = [
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#,
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":1,"parent":0,"name":"b"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":0,"name":"a","nanos":1}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&crossed).unwrap_err().contains("innermost"));

        let renamed = [
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":0,"name":"b","nanos":1}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&renamed).unwrap_err().contains("innermost"));

        let orphan_end = line(
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":9,"name":"x","nanos":1}"#,
        );
        assert!(lint(&orphan_end).unwrap_err().contains("without an open span"));

        let bad_parent = [
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#,
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":1,"parent":7,"name":"b"}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&bad_parent).unwrap_err().contains("parent"));

        let unclosed = line(
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"a"}"#,
        );
        assert!(lint(&unclosed).unwrap_err().contains("never closed"));
    }

    #[test]
    fn validates_wal_events() {
        let ok = [
            r#"{"schema":"SCHEMA","event":"wal_replay","round":0,"records":12,"bytes":900,"dropped_tail":true}"#,
            r#"{"schema":"SCHEMA","event":"wal_append","round":0,"op":"horizon","key":"classic:s1|gamma","bytes":80}"#,
            r#"{"schema":"SCHEMA","event":"wal_append","round":0,"op":"theorem","key":"classic:s1|theorem","bytes":120}"#,
            r#"{"schema":"SCHEMA","event":"wal_append","round":0,"op":"snapshot","key":"classic:s1|gamma","bytes":140}"#,
            r#"{"schema":"SCHEMA","event":"wal_degraded","round":0,"error":"no space left on device"}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&ok), Ok((5, 0)));

        let bad_op = line(
            r#"{"schema":"SCHEMA","event":"wal_append","round":0,"op":"patch","key":"k","bytes":1}"#,
        );
        assert!(lint(&bad_op).unwrap_err().contains("op"));

        let no_tail_flag =
            line(r#"{"schema":"SCHEMA","event":"wal_replay","round":0,"records":1,"bytes":10}"#);
        assert!(lint(&no_tail_flag).unwrap_err().contains("dropped_tail"));

        let no_error = line(r#"{"schema":"SCHEMA","event":"wal_degraded","round":0}"#);
        assert!(lint(&no_error).unwrap_err().contains("error"));
    }

    #[test]
    fn validates_gossip_events() {
        let ok = [
            r#"{"schema":"SCHEMA","event":"gossip_round","round":0,"peer":"127.0.0.1:7071","sent":4,"received":2,"nanos":15000}"#,
            r#"{"schema":"SCHEMA","event":"gossip_apply","round":0,"peer":"127.0.0.1:7071","op":"horizon","key":"classic:s1|gamma","accepted":true}"#,
            r#"{"schema":"SCHEMA","event":"gossip_apply","round":0,"peer":"127.0.0.1:7071","op":"theorem","key":"classic:s1|theorem","accepted":false}"#,
            r#"{"schema":"SCHEMA","event":"peer_down","round":0,"peer":"127.0.0.1:7072","failures":3}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&ok), Ok((4, 0)));

        let bad_op = line(
            r#"{"schema":"SCHEMA","event":"gossip_apply","round":0,"peer":"p","op":"snapshot","key":"k","accepted":true}"#,
        );
        assert!(lint(&bad_op).unwrap_err().contains("op"));

        let no_accepted = line(
            r#"{"schema":"SCHEMA","event":"gossip_apply","round":0,"peer":"p","op":"horizon","key":"k"}"#,
        );
        assert!(lint(&no_accepted).unwrap_err().contains("accepted"));

        let no_sent = line(
            r#"{"schema":"SCHEMA","event":"gossip_round","round":0,"peer":"p","received":0,"nanos":1}"#,
        );
        assert!(lint(&no_sent).unwrap_err().contains("sent"));

        let no_failures = line(r#"{"schema":"SCHEMA","event":"peer_down","round":0,"peer":"p"}"#);
        assert!(lint(&no_failures).unwrap_err().contains("failures"));
    }

    #[test]
    fn validates_distributed_trace_fields() {
        // A ctx-stamped root span plus a ctx-parented gossip root, all
        // on one node, with a health edge — the shape a daemon emits.
        let ok = [
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.check","trace_id":"00000000000000000000000000000abc","node_id":"n1"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":0,"name":"rpc.check","nanos":10,"node_id":"n1"}"#,
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":1048576,"parent":null,"name":"gossip.exchange","trace_id":"00000000000000000000000000000abc","ctx_parent":0,"node_id":"n1"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":1048576,"name":"gossip.exchange","nanos":5,"node_id":"n1"}"#,
            r#"{"schema":"SCHEMA","event":"health","round":0,"status":"ok","ready":true,"live":true,"node_id":"n1"}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&ok), Ok((5, 0)));

        let short_trace = line(
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"a","trace_id":"abc"}"#,
        );
        assert!(lint(&short_trace).unwrap_err().contains("32 lowercase hex"));

        let upper_trace = line(
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"a","trace_id":"00000000000000000000000000000ABC"}"#,
        );
        assert!(lint(&upper_trace).unwrap_err().contains("32 lowercase hex"));

        let zero_trace = line(
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"a","trace_id":"00000000000000000000000000000000"}"#,
        );
        assert!(lint(&zero_trace).unwrap_err().contains("zero"));

        let bare_ctx_parent = line(
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"a","ctx_parent":7}"#,
        );
        assert!(lint(&bare_ctx_parent)
            .unwrap_err()
            .contains("ctx_parent without trace_id"));
    }

    #[test]
    fn validates_node_id_and_health_events() {
        let empty_node =
            line(r#"{"schema":"SCHEMA","event":"health","round":0,"status":"ok","ready":true,"live":true,"node_id":""}"#);
        assert!(lint(&empty_node).unwrap_err().contains("non-empty"));

        let mixed_nodes = [
            r#"{"schema":"SCHEMA","event":"health","round":0,"status":"ok","ready":true,"live":true,"node_id":"n1"}"#,
            r#"{"schema":"SCHEMA","event":"health","round":0,"status":"ok","ready":true,"live":true,"node_id":"n2"}"#,
        ]
        .map(line)
        .join("\n");
        assert!(lint(&mixed_nodes)
            .unwrap_err()
            .contains("one trace file is one node's stream"));

        let bad_status = line(
            r#"{"schema":"SCHEMA","event":"health","round":0,"status":"meh","ready":true,"live":true}"#,
        );
        assert!(lint(&bad_status).unwrap_err().contains("status"));

        let no_ready =
            line(r#"{"schema":"SCHEMA","event":"health","round":0,"status":"ok","live":true}"#);
        assert!(lint(&no_ready).unwrap_err().contains("ready"));

        let no_live =
            line(r#"{"schema":"SCHEMA","event":"health","round":0,"status":"ok","ready":true}"#);
        assert!(lint(&no_live).unwrap_err().contains("live"));
    }

    #[test]
    fn validates_flight_dump_meta_lines() {
        // The header a flight-recorder dump leads with, followed by a
        // truncated-span close — the shape `FlightRecorder::dump` emits.
        let ok = [
            r#"{"schema":"SCHEMA","event":"flight_dump","round":0,"reason":"wal_degraded","events":3,"dropped":1,"truncated":1,"sampled":true,"node_id":"n1"}"#,
            r#"{"schema":"SCHEMA","event":"span_start","round":0,"span_id":0,"parent":null,"name":"rpc.stats","node_id":"n1"}"#,
            r#"{"schema":"SCHEMA","event":"span_end","round":0,"span_id":0,"name":"rpc.stats","nanos":0,"truncated":true,"node_id":"n1"}"#,
        ]
        .map(line)
        .join("\n");
        assert_eq!(lint(&ok), Ok((3, 0)));

        let no_reason = line(
            r#"{"schema":"SCHEMA","event":"flight_dump","round":0,"events":3,"dropped":0,"truncated":0,"sampled":false}"#,
        );
        assert!(lint(&no_reason).unwrap_err().contains("reason"));

        let empty_reason = line(
            r#"{"schema":"SCHEMA","event":"flight_dump","round":0,"reason":"","events":3,"dropped":0,"truncated":0,"sampled":false}"#,
        );
        assert!(lint(&empty_reason).unwrap_err().contains("non-empty"));

        let no_counts = line(
            r#"{"schema":"SCHEMA","event":"flight_dump","round":0,"reason":"rpc","sampled":false}"#,
        );
        assert!(lint(&no_counts).unwrap_err().contains("events"));

        let no_sampled = line(
            r#"{"schema":"SCHEMA","event":"flight_dump","round":0,"reason":"rpc","events":0,"dropped":0,"truncated":0}"#,
        );
        assert!(lint(&no_sampled).unwrap_err().contains("sampled"));
    }

    #[test]
    fn validates_trace_sampled_markers() {
        let ok = line(
            r#"{"schema":"SCHEMA","event":"trace_sampled","round":0,"sample":0.01,"slow_ms":50,"node_id":"n1"}"#,
        );
        assert_eq!(lint(&ok), Ok((1, 0)));

        let out_of_range = line(
            r#"{"schema":"SCHEMA","event":"trace_sampled","round":0,"sample":1.5,"slow_ms":50}"#,
        );
        assert!(lint(&out_of_range).unwrap_err().contains("outside"));

        let no_sample =
            line(r#"{"schema":"SCHEMA","event":"trace_sampled","round":0,"slow_ms":50}"#);
        assert!(lint(&no_sample).unwrap_err().contains("sample"));

        let no_slow =
            line(r#"{"schema":"SCHEMA","event":"trace_sampled","round":0,"sample":0.5}"#);
        assert!(lint(&no_slow).unwrap_err().contains("slow_ms"));
    }

    #[test]
    fn rejects_unterminated_run() {
        let text = line(
            r#"{"schema":"SCHEMA","event":"run_start","round":0,"engine":"network","nodes":2,"threads":1}"#,
        );
        assert!(lint(&text).unwrap_err().contains("open run"));
    }
}
