//! Consistent-hash ring for routing canonical keys to cluster nodes.
//!
//! Each node contributes `vnodes` points on a 64-bit ring (hash of
//! `"<addr>#<i>"`); a key is owned by the node whose point is the first at or
//! after the key's hash, wrapping around. Virtual nodes keep the load spread
//! close to uniform, and adding or removing one node only remaps the keys
//! that fell on its points — about `1/N` of the keyspace — while every other
//! key keeps its owner. Clients use [`HashRing::route`] to get the owner plus
//! an ordered failover sequence covering every other node.

use crate::fnv1a;

/// Finalizer applied on top of FNV-1a for ring placement. FNV alone barely
/// diffuses a trailing-byte change into the high bits, so the vnode labels
/// `addr#0..addr#63` would cluster on one arc; this murmur3-style mix
/// spreads them. Only ring placement uses it — digest sharding stays raw
/// FNV, which is the wire-pinned format.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Virtual nodes per physical node. 64 points keeps per-node load within a
/// few percent of uniform for small clusters without making ring rebuilds
/// noticeable.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over node addresses.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted, deduplicated node addresses.
    nodes: Vec<String>,
    /// `(point hash, index into nodes)` sorted by hash.
    points: Vec<(u64, usize)>,
    vnodes: usize,
}

impl HashRing {
    /// Builds a ring with [`DEFAULT_VNODES`] virtual nodes per node.
    pub fn new<S: AsRef<str>>(nodes: &[S]) -> HashRing {
        HashRing::with_vnodes(nodes, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count (`vnodes >= 1`).
    pub fn with_vnodes<S: AsRef<str>>(nodes: &[S], vnodes: usize) -> HashRing {
        let mut ring = HashRing {
            nodes: nodes.iter().map(|n| n.as_ref().to_string()).collect(),
            points: Vec::new(),
            vnodes: vnodes.max(1),
        };
        ring.nodes.sort();
        ring.nodes.dedup();
        ring.rebuild();
        ring
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (index, node) in self.nodes.iter().enumerate() {
            for vnode in 0..self.vnodes {
                let point = mix64(fnv1a(format!("{node}#{vnode}").as_bytes()));
                self.points.push((point, index));
            }
        }
        self.points.sort_unstable();
    }

    /// The member addresses, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node; a no-op if it is already a member.
    pub fn add(&mut self, node: &str) {
        if self.nodes.iter().any(|n| n == node) {
            return;
        }
        self.nodes.push(node.to_string());
        self.nodes.sort();
        self.rebuild();
    }

    /// Removes a node; a no-op if it is not a member.
    pub fn remove(&mut self, node: &str) {
        let before = self.nodes.len();
        self.nodes.retain(|n| n != node);
        if self.nodes.len() != before {
            self.rebuild();
        }
    }

    /// Index into `points` of the first point at or after the key's hash.
    fn start_index(&self, key: &str) -> usize {
        let hash = mix64(fnv1a(key.as_bytes()));
        match self.points.binary_search(&(hash, usize::MAX)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The node that owns `key`, or `None` on an empty ring.
    pub fn owner(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let (_, index) = self.points[self.start_index(key)];
        Some(&self.nodes[index])
    }

    /// Every node in failover order for `key`: the owner first, then each
    /// remaining node in the order its first point appears walking the ring
    /// clockwise from the key. Deterministic for a given membership.
    pub fn route(&self, key: &str) -> Vec<&str> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let start = self.start_index(key);
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        for offset in 0..self.points.len() {
            let (_, index) = self.points[(start + offset) % self.points.len()];
            if !seen[index] {
                seen[index] = true;
                order.push(self.nodes[index].as_str());
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7070")).collect()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("scheme:key-{i}")).collect()
    }

    #[test]
    fn owner_is_stable_and_route_covers_all_nodes() {
        let ring = HashRing::new(&addrs(5));
        for key in keys(50) {
            let route = ring.route(&key);
            assert_eq!(route.len(), 5);
            assert_eq!(Some(route[0]), ring.owner(&key));
            let mut sorted: Vec<&str> = route.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "route must visit every node once");
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(&Vec::<String>::new());
        assert!(ring.is_empty());
        assert_eq!(ring.owner("k"), None);
        assert!(ring.route("k").is_empty());
    }

    #[test]
    fn duplicate_nodes_collapse() {
        let ring = HashRing::new(&["a:1", "a:1", "b:1"]);
        assert_eq!(ring.len(), 2);
    }

    proptest! {
        /// Satellite: key distribution over N nodes stays within tolerance of
        /// uniform. With 64 vnodes the max/min spread over a 4000-key sample
        /// comfortably stays under 2.5x for up to 8 nodes.
        #[test]
        fn distribution_is_balanced(n in 2usize..8) {
            let ring = HashRing::new(&addrs(n));
            let sample = keys(4000);
            let mut counts = std::collections::HashMap::new();
            for key in &sample {
                *counts.entry(ring.owner(key).unwrap().to_string()).or_insert(0usize) += 1;
            }
            prop_assert_eq!(counts.len(), n, "every node owns some keys");
            let max = *counts.values().max().unwrap() as f64;
            let min = *counts.values().min().unwrap() as f64;
            prop_assert!(min > 0.0);
            prop_assert!(
                max / min < 2.5,
                "spread too wide: max {} min {} over {} nodes", max, min, n
            );
        }

        /// Satellite: removing one node remaps only roughly 1/N of a pinned
        /// key sample — every key it did not own keeps its owner.
        #[test]
        fn removal_remaps_about_one_nth(n in 3usize..8, victim_index in 0usize..8) {
            let nodes = addrs(n);
            let victim = nodes[victim_index % n].clone();
            let ring = HashRing::new(&nodes);
            let mut smaller = ring.clone();
            smaller.remove(&victim);

            let sample = keys(3000);
            let mut moved = 0usize;
            for key in &sample {
                let before = ring.owner(key).unwrap();
                let after = smaller.owner(key).unwrap();
                if before == victim {
                    moved += 1;
                } else {
                    prop_assert_eq!(before, after, "non-victim keys must not remap");
                }
                prop_assert_ne!(after, victim.as_str());
            }
            // The victim owned ~1/N of the sample; allow generous slack for
            // vnode placement variance.
            let expected = sample.len() as f64 / n as f64;
            prop_assert!(
                (moved as f64) < expected * 2.5,
                "remapped {} of {} keys with {} nodes (expected ~{})",
                moved, sample.len(), n, expected
            );
        }
    }
}
