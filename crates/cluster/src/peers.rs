//! Per-peer gossip health and traffic accounting.
//!
//! Each daemon keeps one [`PeerTable`] covering its configured peers. The
//! gossip loop records every exchange outcome; the `stats` RPC and `svc top`
//! render [`PeerTable::to_json`]. A peer is considered down after
//! [`DOWN_AFTER`] consecutive failed rounds and alive again on the first
//! success — [`PeerTable::record_failure`] reports the edge so the caller
//! can emit a single `peer_down` trace event per outage rather than one per
//! failed round.

use serde_json::{Map, Value};
use std::time::Instant;

/// Consecutive failures after which a peer is reported down.
pub const DOWN_AFTER: u64 = 3;

/// A point-in-time view of one peer's health.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerStats {
    pub addr: String,
    /// `false` once `DOWN_AFTER` consecutive exchanges have failed.
    pub alive: bool,
    pub consecutive_failures: u64,
    /// Completed gossip exchanges.
    pub exchanges: u64,
    /// Deltas accepted from this peer, cumulative.
    pub deltas_in: u64,
    /// Deltas shipped to this peer, cumulative.
    pub deltas_out: u64,
    /// Mismatched shards observed in the most recent exchange.
    pub lag: u64,
    /// Milliseconds since the last successful exchange, when any.
    pub last_exchange_ms: Option<u64>,
}

#[derive(Debug)]
struct PeerEntry {
    addr: String,
    consecutive_failures: u64,
    exchanges: u64,
    deltas_in: u64,
    deltas_out: u64,
    lag: u64,
    last_success: Option<Instant>,
}

/// Health and traffic counters for every configured peer.
#[derive(Debug)]
pub struct PeerTable {
    peers: Vec<PeerEntry>,
}

impl PeerTable {
    /// A table over the configured peer addresses (order preserved). Empty
    /// in single-node mode — every accessor stays well-defined.
    pub fn new<S: AsRef<str>>(addrs: &[S]) -> PeerTable {
        PeerTable {
            peers: addrs
                .iter()
                .map(|addr| PeerEntry {
                    addr: addr.as_ref().to_string(),
                    consecutive_failures: 0,
                    exchanges: 0,
                    deltas_in: 0,
                    deltas_out: 0,
                    lag: 0,
                    last_success: None,
                })
                .collect(),
        }
    }

    fn entry_mut(&mut self, addr: &str) -> Option<&mut PeerEntry> {
        self.peers.iter_mut().find(|p| p.addr == addr)
    }

    /// Records a completed exchange with `addr`.
    pub fn record_success(&mut self, addr: &str, deltas_out: u64, deltas_in: u64, lag: u64) {
        if let Some(peer) = self.entry_mut(addr) {
            peer.consecutive_failures = 0;
            peer.exchanges += 1;
            peer.deltas_out += deltas_out;
            peer.deltas_in += deltas_in;
            peer.lag = lag;
            peer.last_success = Some(Instant::now());
        }
    }

    /// Records a failed exchange with `addr`. Returns `Some(failures)` only
    /// on the round that crosses [`DOWN_AFTER`] — the edge where the caller
    /// should emit a `peer_down` event.
    pub fn record_failure(&mut self, addr: &str) -> Option<u64> {
        let peer = self.entry_mut(addr)?;
        peer.consecutive_failures += 1;
        if peer.consecutive_failures == DOWN_AFTER {
            Some(peer.consecutive_failures)
        } else {
            None
        }
    }

    /// Number of configured peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Peers currently considered alive. A peer that has never been reached
    /// but has not yet failed `DOWN_AFTER` times counts as alive (startup
    /// grace, before the first round reaches it).
    pub fn alive(&self) -> usize {
        self.peers
            .iter()
            .filter(|p| p.consecutive_failures < DOWN_AFTER)
            .count()
    }

    /// The worst most-recent-exchange lag across peers.
    pub fn max_lag(&self) -> u64 {
        self.peers.iter().map(|p| p.lag).max().unwrap_or(0)
    }

    /// Snapshot of every peer, configuration order.
    pub fn snapshot(&self) -> Vec<PeerStats> {
        self.peers
            .iter()
            .map(|p| PeerStats {
                addr: p.addr.clone(),
                alive: p.consecutive_failures < DOWN_AFTER,
                consecutive_failures: p.consecutive_failures,
                exchanges: p.exchanges,
                deltas_in: p.deltas_in,
                deltas_out: p.deltas_out,
                lag: p.lag,
                last_exchange_ms: p
                    .last_success
                    .map(|at| at.elapsed().as_millis().min(u64::MAX as u128) as u64),
            })
            .collect()
    }

    /// The `peers` section of the `stats` RPC: summary counters plus one
    /// row per peer. Single-node daemons return `count: 0` and an empty
    /// `table` rather than omitting the section.
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("count", Value::from(self.len() as u64));
        map.insert("alive", Value::from(self.alive() as u64));
        map.insert("max_lag", Value::from(self.max_lag()));
        let rows = self
            .snapshot()
            .into_iter()
            .map(|p| {
                let mut row = Map::new();
                row.insert("addr", Value::from(p.addr));
                row.insert("alive", Value::from(p.alive));
                row.insert("failures", Value::from(p.consecutive_failures));
                row.insert("exchanges", Value::from(p.exchanges));
                row.insert("deltas_in", Value::from(p.deltas_in));
                row.insert("deltas_out", Value::from(p.deltas_out));
                row.insert("lag", Value::from(p.lag));
                row.insert(
                    "last_exchange_ms",
                    p.last_exchange_ms.map(Value::from).unwrap_or(Value::Null),
                );
                Value::Object(row)
            })
            .collect();
        map.insert("table", Value::Array(rows));
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_serialises_without_erroring() {
        let table = PeerTable::new(&Vec::<String>::new());
        assert!(table.is_empty());
        assert_eq!(table.alive(), 0);
        assert_eq!(table.max_lag(), 0);
        let json = table.to_json();
        assert_eq!(json.get("count").and_then(Value::as_u64), Some(0));
        assert_eq!(
            json.get("table").and_then(Value::as_array).map(<[Value]>::len),
            Some(0)
        );
    }

    #[test]
    fn down_edge_fires_once_and_success_resets() {
        let mut table = PeerTable::new(&["a:1", "b:2"]);
        assert_eq!(table.record_failure("a:1"), None);
        assert_eq!(table.record_failure("a:1"), None);
        assert_eq!(table.record_failure("a:1"), Some(DOWN_AFTER));
        // Further failures stay silent: one event per outage.
        assert_eq!(table.record_failure("a:1"), None);
        assert_eq!(table.alive(), 1);

        table.record_success("a:1", 5, 2, 3);
        assert_eq!(table.alive(), 2);
        let stats = table.snapshot();
        assert!(stats[0].alive);
        assert_eq!(stats[0].deltas_out, 5);
        assert_eq!(stats[0].deltas_in, 2);
        assert_eq!(stats[0].lag, 3);
        assert!(stats[0].last_exchange_ms.is_some());
        assert_eq!(table.max_lag(), 3);

        // The down edge can fire again for the next outage.
        for _ in 0..DOWN_AFTER - 1 {
            assert_eq!(table.record_failure("a:1"), None);
        }
        assert_eq!(table.record_failure("a:1"), Some(DOWN_AFTER));
    }

    #[test]
    fn unknown_addresses_are_ignored() {
        let mut table = PeerTable::new(&["a:1"]);
        assert_eq!(table.record_failure("nope:9"), None);
        table.record_success("nope:9", 1, 1, 1);
        assert_eq!(table.snapshot()[0].exchanges, 0);
    }
}
