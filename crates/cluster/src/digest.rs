//! The `minobs/gossip/v1` anti-entropy payloads.
//!
//! A gossip round is two stateless RPCs on the `gossip` method:
//!
//! 1. **digest** — the initiator sends 16 per-shard fingerprints of its
//!    verdict map (`{"gossip": "minobs/gossip/v1", "phase": "digest",
//!    "from": addr, "shards": [u64; 16]}`) and receives the responder's
//!    fingerprints back (`{"shards": [u64; 16]}`).
//! 2. **sync** — for every shard whose fingerprints disagree, the initiator
//!    ships its full shard contents as deltas (`{"phase": "sync", "from":
//!    addr, "shards": [idx…], "deltas": […]}`); the responder ingests them
//!    and replies with its own deltas for the same shards
//!    (`{"applied": n, "deltas": […]}`).
//!
//! Deltas reuse the `minobs/wal/v1` record shapes — a [`Delta::Horizon`] is
//! byte-identical to a WAL `horizon` record, a [`Delta::Theorem`] to a
//! `theorem` record — so replicated verdicts flow through exactly the ingest
//! path local ones do. Shipping whole shards on mismatch is deliberately
//! simple: ingest is idempotent (already-known records are skipped, bounds
//! only tighten), so over-shipping costs bandwidth, never correctness.

use crate::fnv1a;
use minobs_synth::cache::HorizonVerdicts;
use serde_json::{Map, Value};

/// Gossip payload schema tag.
pub const GOSSIP_SCHEMA: &str = "minobs/gossip/v1";

/// The WAL schema tag deltas are framed under, byte-identical to
/// `minobs-svc`'s `minobs/wal/v1` records (pinned by a cross-crate test).
pub const WAL_SCHEMA: &str = "minobs/wal/v1";

/// Number of digest shards. 16 keeps the digest frame tiny while a single
/// divergent key only re-ships ~1/16th of the map.
pub const SHARDS: usize = 16;

/// One verdict-map entry as exposed by the daemon cache snapshot.
pub type Entry = (String, HorizonVerdicts, Option<Value>);

/// The shard a canonical key hashes into.
pub fn shard_of(key: &str) -> usize {
    (fnv1a(key.as_bytes()) % SHARDS as u64) as usize
}

/// Per-shard fingerprints of a verdict-map snapshot.
///
/// The snapshot must be key-sorted (as `VerdictCache::snapshot` guarantees);
/// each entry folds its key, canonical verdict JSON, and theorem JSON into
/// its shard's running FNV state, so two nodes agree on a shard's
/// fingerprint exactly when they hold identical entries for it.
pub fn fingerprints(entries: &[Entry]) -> [u64; SHARDS] {
    let mut fps = [0xcbf2_9ce4_8422_2325u64; SHARDS];
    for (key, verdicts, theorem) in entries {
        let shard = shard_of(key);
        let mut line = String::new();
        line.push_str(key);
        line.push('\u{1f}');
        line.push_str(&serde_json::to_string(&verdicts.to_json()).unwrap_or_default());
        line.push('\u{1f}');
        if let Some(theorem) = theorem {
            line.push_str(&serde_json::to_string(theorem).unwrap_or_default());
        }
        for &byte in line.as_bytes() {
            fps[shard] ^= u64::from(byte);
            fps[shard] = fps[shard].wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Entry separator so fingerprints distinguish entry boundaries.
        fps[shard] ^= 0x1e;
        fps[shard] = fps[shard].wrapping_mul(0x0000_0100_0000_01b3);
    }
    fps
}

/// Indices of shards whose fingerprints disagree.
pub fn mismatched(mine: &[u64; SHARDS], theirs: &[u64; SHARDS]) -> Vec<usize> {
    (0..SHARDS).filter(|&i| mine[i] != theirs[i]).collect()
}

/// One replicated record, wire-compatible with `minobs/wal/v1`.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// A definite horizon verdict boundary.
    Horizon {
        key: String,
        k: usize,
        solvable: bool,
    },
    /// A memoised theorem result.
    Theorem { key: String, result: Value },
}

impl Delta {
    /// Stable operation name (matches the WAL `op` field).
    pub fn op(&self) -> &'static str {
        match self {
            Delta::Horizon { .. } => "horizon",
            Delta::Theorem { .. } => "theorem",
        }
    }

    /// The canonical key the delta is about.
    pub fn key(&self) -> &str {
        match self {
            Delta::Horizon { key, .. } | Delta::Theorem { key, .. } => key,
        }
    }

    /// Serialises to the `minobs/wal/v1` record shape.
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("wal", Value::from(WAL_SCHEMA));
        map.insert("op", Value::from(self.op()));
        map.insert("key", Value::from(self.key()));
        match self {
            Delta::Horizon { k, solvable, .. } => {
                map.insert("k", Value::from(*k as u64));
                map.insert("solvable", Value::from(*solvable));
            }
            Delta::Theorem { result, .. } => {
                map.insert("result", result.clone());
            }
        }
        Value::Object(map)
    }

    /// Parses one delta; `None` on anything malformed or any op other than
    /// `horizon`/`theorem` (snapshots never travel over gossip).
    pub fn from_json(value: &Value) -> Option<Delta> {
        if value.get("wal").and_then(Value::as_str) != Some(WAL_SCHEMA) {
            return None;
        }
        let key = value.get("key").and_then(Value::as_str)?.to_string();
        match value.get("op").and_then(Value::as_str)? {
            "horizon" => Some(Delta::Horizon {
                key,
                k: usize::try_from(value.get("k")?.as_u64()?).ok()?,
                solvable: value.get("solvable")?.as_bool()?,
            }),
            "theorem" => Some(Delta::Theorem {
                key,
                result: value.get("result")?.clone(),
            }),
            _ => None,
        }
    }
}

/// Expands the entries living in `shards` into deltas: one `Horizon` per
/// established boundary plus one `Theorem` when a memo exists. Both
/// boundaries ship because either may be the one the peer is missing.
pub fn shard_deltas(entries: &[Entry], shards: &[usize]) -> Vec<Delta> {
    let mut deltas = Vec::new();
    for (key, verdicts, theorem) in entries {
        if !shards.contains(&shard_of(key)) {
            continue;
        }
        if let Some(k) = verdicts.max_unsolvable() {
            deltas.push(Delta::Horizon {
                key: key.clone(),
                k,
                solvable: false,
            });
        }
        if let Some(k) = verdicts.min_solvable() {
            deltas.push(Delta::Horizon {
                key: key.clone(),
                k,
                solvable: true,
            });
        }
        if let Some(result) = theorem {
            deltas.push(Delta::Theorem {
                key: key.clone(),
                result: result.clone(),
            });
        }
    }
    deltas
}

/// A parsed inbound gossip request.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipRequest {
    /// The initiator's advertised address (peer-table label only — never
    /// trusted for routing).
    pub from: String,
    pub body: GossipBody,
}

/// The phase-specific request payload.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipBody {
    /// Phase 1: the initiator's shard fingerprints.
    Digest { shards: [u64; SHARDS] },
    /// Phase 2: mismatched shard indices plus the initiator's deltas.
    Sync {
        shards: Vec<usize>,
        deltas: Vec<Delta>,
    },
}

fn shards_json(fps: &[u64; SHARDS]) -> Value {
    Value::Array(fps.iter().map(|&fp| Value::from(fp)).collect())
}

fn parse_shards(value: &Value) -> Option<[u64; SHARDS]> {
    let items = value.as_array()?;
    if items.len() != SHARDS {
        return None;
    }
    let mut fps = [0u64; SHARDS];
    for (slot, item) in fps.iter_mut().zip(items) {
        *slot = item.as_u64()?;
    }
    Some(fps)
}

/// Builds the phase-1 request params.
pub fn digest_params(from: &str, fps: &[u64; SHARDS]) -> Value {
    let mut map = Map::new();
    map.insert("gossip", Value::from(GOSSIP_SCHEMA));
    map.insert("phase", Value::from("digest"));
    map.insert("from", Value::from(from));
    map.insert("shards", shards_json(fps));
    Value::Object(map)
}

/// Builds the phase-2 request params.
pub fn sync_params(from: &str, shards: &[usize], deltas: &[Delta]) -> Value {
    let mut map = Map::new();
    map.insert("gossip", Value::from(GOSSIP_SCHEMA));
    map.insert("phase", Value::from("sync"));
    map.insert("from", Value::from(from));
    map.insert(
        "shards",
        Value::Array(shards.iter().map(|&s| Value::from(s as u64)).collect()),
    );
    map.insert(
        "deltas",
        Value::Array(deltas.iter().map(Delta::to_json).collect()),
    );
    Value::Object(map)
}

/// Parses an inbound gossip request; `Err` carries a protocol-error string.
pub fn parse_params(params: &Value) -> Result<GossipRequest, String> {
    if params.get("gossip").and_then(Value::as_str) != Some(GOSSIP_SCHEMA) {
        return Err(format!("params.gossip must be {GOSSIP_SCHEMA:?}"));
    }
    let from = params
        .get("from")
        .and_then(Value::as_str)
        .ok_or("params.from must be a string")?
        .to_string();
    match params.get("phase").and_then(Value::as_str) {
        Some("digest") => {
            let shards = params
                .get("shards")
                .and_then(parse_shards)
                .ok_or(format!("params.shards must be {SHARDS} u64 fingerprints"))?;
            Ok(GossipRequest {
                from,
                body: GossipBody::Digest { shards },
            })
        }
        Some("sync") => {
            let shards = params
                .get("shards")
                .and_then(Value::as_array)
                .ok_or("params.shards must be an array of shard indices")?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|s| usize::try_from(s).ok())
                        .filter(|&s| s < SHARDS)
                        .ok_or("params.shards entries must be shard indices")
                })
                .collect::<Result<Vec<usize>, &str>>()?;
            let deltas = params
                .get("deltas")
                .and_then(Value::as_array)
                .ok_or("params.deltas must be an array")?
                .iter()
                .map(|v| Delta::from_json(v).ok_or("params.deltas entries must be wal/v1 records"))
                .collect::<Result<Vec<Delta>, &str>>()?;
            Ok(GossipRequest {
                from,
                body: GossipBody::Sync { shards, deltas },
            })
        }
        _ => Err("params.phase must be \"digest\" or \"sync\"".to_string()),
    }
}

/// Builds the phase-1 response result.
pub fn digest_result(fps: &[u64; SHARDS]) -> Value {
    let mut map = Map::new();
    map.insert("shards", shards_json(fps));
    Value::Object(map)
}

/// Parses a phase-1 response result.
pub fn parse_digest_result(result: &Value) -> Option<[u64; SHARDS]> {
    parse_shards(result.get("shards")?)
}

/// Builds the phase-2 response result.
pub fn sync_result(applied: u64, deltas: &[Delta]) -> Value {
    let mut map = Map::new();
    map.insert("applied", Value::from(applied));
    map.insert(
        "deltas",
        Value::Array(deltas.iter().map(Delta::to_json).collect()),
    );
    Value::Object(map)
}

/// Parses a phase-2 response result into `(applied, deltas)`.
pub fn parse_sync_result(result: &Value) -> Option<(u64, Vec<Delta>)> {
    let applied = result.get("applied")?.as_u64()?;
    let deltas = result
        .get("deltas")?
        .as_array()?
        .iter()
        .map(Delta::from_json)
        .collect::<Option<Vec<Delta>>>()?;
    Some((applied, deltas))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, unsolvable_at: Option<usize>, solvable_at: Option<usize>) -> Entry {
        let verdicts = HorizonVerdicts::from_boundaries(solvable_at, unsolvable_at)
            .expect("test boundaries are consistent");
        (key.to_string(), verdicts, None)
    }

    #[test]
    fn identical_snapshots_agree_on_every_shard() {
        let a = vec![entry("p|3", Some(1), Some(4)), entry("q|2", None, Some(2))];
        let b = a.clone();
        assert_eq!(fingerprints(&a), fingerprints(&b));
        assert!(mismatched(&fingerprints(&a), &fingerprints(&b)).is_empty());
    }

    #[test]
    fn a_divergent_key_flips_exactly_its_shard() {
        let base = vec![entry("p|3", Some(1), Some(4)), entry("q|2", None, Some(2))];
        let mut tightened = base.clone();
        tightened[0].1.record(3, true); // min_solvable 4 -> 3
        let diff = mismatched(&fingerprints(&base), &fingerprints(&tightened));
        assert_eq!(diff, vec![shard_of("p|3")]);
    }

    #[test]
    fn deltas_round_trip_and_cover_both_boundaries() {
        let mut entries = vec![entry("p|3", Some(1), Some(4))];
        entries[0].2 = Some(serde_json::from_str("{\"solvable\": true}").unwrap());
        let all: Vec<usize> = (0..SHARDS).collect();
        let deltas = shard_deltas(&entries, &all);
        assert_eq!(deltas.len(), 3, "both boundaries plus the theorem memo");
        for delta in &deltas {
            assert_eq!(Delta::from_json(&delta.to_json()).as_ref(), Some(delta));
        }
        let empty = shard_deltas(&entries, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn params_round_trip_both_phases() {
        let fps = fingerprints(&[entry("p|3", Some(1), None)]);
        let digest = parse_params(&digest_params("n1:1", &fps)).unwrap();
        assert_eq!(digest.from, "n1:1");
        assert_eq!(digest.body, GossipBody::Digest { shards: fps });

        let deltas = vec![Delta::Horizon {
            key: "p|3".to_string(),
            k: 1,
            solvable: false,
        }];
        let sync = parse_params(&sync_params("n2:2", &[0, 5], &deltas)).unwrap();
        assert_eq!(
            sync.body,
            GossipBody::Sync {
                shards: vec![0, 5],
                deltas: deltas.clone(),
            }
        );

        assert_eq!(parse_digest_result(&digest_result(&fps)), Some(fps));
        assert_eq!(
            parse_sync_result(&sync_result(2, &deltas)),
            Some((2, deltas))
        );
    }

    #[test]
    fn malformed_params_are_rejected_with_reasons() {
        let bad = serde_json::from_str("{\"gossip\": \"minobs/gossip/v0\"}").unwrap();
        assert!(parse_params(&bad).is_err());
        let bad = serde_json::from_str(
            "{\"gossip\": \"minobs/gossip/v1\", \"from\": \"a\", \"phase\": \"digest\", \"shards\": [1]}",
        )
        .unwrap();
        assert!(parse_params(&bad).unwrap_err().contains("fingerprints"));
        let bad = serde_json::from_str(
            "{\"gossip\": \"minobs/gossip/v1\", \"from\": \"a\", \"phase\": \"sync\", \"shards\": [99], \"deltas\": []}",
        )
        .unwrap();
        assert!(parse_params(&bad).is_err(), "out-of-range shard index");
    }

    #[test]
    fn snapshot_like_ops_do_not_parse_as_deltas() {
        let snapshot = serde_json::from_str(
            "{\"wal\": \"minobs/wal/v1\", \"op\": \"snapshot\", \"key\": \"p\", \"verdicts\": {}, \"theorem\": null}",
        )
        .unwrap();
        assert_eq!(Delta::from_json(&snapshot), None);
    }
}
