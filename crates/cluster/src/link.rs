//! Injectable per-link fault policy for gossip rounds.
//!
//! The daemon's gossip loop asks the configured [`LinkPolicy`] for a verdict
//! before every outbound exchange: deliver the round, drop it (counts as a
//! peer failure, exactly like a refused connection), or delay it. Production
//! daemons run with no policy (always deliver); chaos tests install a seeded
//! policy built from `minobs-chaos`'s link-fault plans to rehearse
//! partitions deterministically. The policy lives here rather than in the
//! chaos crate so `minobs-svc` needs no dev-only dependency to accept one.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

type VerdictFn = dyn Fn(u64, &str) -> LinkVerdict + Send + Sync;

/// What the link does with one outbound gossip round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// The exchange proceeds normally.
    Deliver,
    /// The exchange never happens; the peer sees nothing and the initiator
    /// records a failure.
    Drop,
    /// The exchange proceeds after sleeping this long.
    Delay(Duration),
}

/// A pure function from `(round, peer address)` to a [`LinkVerdict`].
///
/// Policies must be deterministic in their inputs so a seeded chaos run
/// replays identically. `Clone` shares the underlying closure.
#[derive(Clone)]
pub struct LinkPolicy {
    verdict: Arc<VerdictFn>,
}

impl LinkPolicy {
    /// Wraps a verdict function.
    pub fn new<F>(verdict: F) -> LinkPolicy
    where
        F: Fn(u64, &str) -> LinkVerdict + Send + Sync + 'static,
    {
        LinkPolicy {
            verdict: Arc::new(verdict),
        }
    }

    /// The verdict for gossiping to `peer` on logical round `round`.
    pub fn verdict(&self, round: u64, peer: &str) -> LinkVerdict {
        (self.verdict)(round, peer)
    }
}

impl fmt::Debug for LinkPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LinkPolicy(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_is_deterministic_and_clonable() {
        let policy = LinkPolicy::new(|round, peer| {
            if round < 2 && peer == "b:2" {
                LinkVerdict::Drop
            } else {
                LinkVerdict::Deliver
            }
        });
        let copy = policy.clone();
        assert_eq!(policy.verdict(0, "b:2"), LinkVerdict::Drop);
        assert_eq!(copy.verdict(0, "b:2"), LinkVerdict::Drop);
        assert_eq!(policy.verdict(2, "b:2"), LinkVerdict::Deliver);
        assert_eq!(policy.verdict(0, "a:1"), LinkVerdict::Deliver);
        assert_eq!(format!("{policy:?}"), "LinkPolicy(..)");
    }
}
