//! Peer replication for the verdict-cache daemons.
//!
//! A cluster is N `minobs-svcd` processes that each own a full copy of the
//! verdict map and keep each other current through anti-entropy gossip:
//!
//! * [`ring`] — consistent-hash ring used by clients to pick the node that
//!   owns a canonical key, with bounded remapping when membership changes.
//! * [`digest`] — the `minobs/gossip/v1` payloads: per-shard fingerprints of
//!   the verdict map plus the horizon/theorem deltas shipped for shards whose
//!   fingerprints disagree. Deltas reuse the `minobs/wal/v1` record shapes so
//!   a replicated verdict flows through the same ingest path as a local one.
//! * [`peers`] — per-peer health and traffic accounting behind the `stats`
//!   RPC and `svc top` peer table.
//! * [`link`] — an injectable per-link fault policy so chaos tests can drop,
//!   delay, or partition gossip rounds deterministically.
//!
//! Convergence is a semilattice join: horizon bounds only ever tighten
//! (`Solvable@k` implies solvable for all larger horizons, `Unsolvable@k` for
//! all smaller ones) and theorem payloads are immutable once recorded, so
//! applying the same deltas in any order on any node reaches the same map.
//! Ingest cross-validates every delta against the live cache first; a record
//! that would contradict an established bound is rejected, never merged.

pub mod digest;
pub mod link;
pub mod peers;
pub mod ring;

pub use digest::{
    fingerprints, mismatched, shard_deltas, shard_of, Delta, GossipBody, GossipRequest,
    GOSSIP_SCHEMA, SHARDS,
};
pub use link::{LinkPolicy, LinkVerdict};
pub use peers::{PeerStats, PeerTable, DOWN_AFTER};
pub use ring::HashRing;

/// FNV-1a 64-bit hash. Used by both the ring (placement) and the digest
/// (sharding + fingerprints) so the wire format is pinned independently of
/// `std::hash` internals.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::fnv1a;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
