//! Simple undirected graphs with directed-edge views.

use std::collections::BTreeSet;
use std::fmt;

/// An undirected edge, stored with `a ≤ b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// The smaller endpoint.
    pub a: usize,
    /// The larger endpoint.
    pub b: usize,
}

impl Edge {
    /// Builds a normalized edge.
    ///
    /// # Panics
    /// Panics on self-loops — the communication model has none.
    pub fn new(u: usize, v: usize) -> Edge {
        assert_ne!(u, v, "self-loops are not allowed");
        Edge {
            a: u.min(v),
            b: u.max(v),
        }
    }

    /// The endpoint other than `v`.
    ///
    /// # Panics
    /// Panics when `v` is not an endpoint.
    pub fn other(&self, v: usize) -> usize {
        if v == self.a {
            self.b
        } else if v == self.b {
            self.a
        } else {
            panic!("vertex {v} not on edge {self}")
        }
    }

    /// `true` iff `v` is an endpoint.
    pub fn touches(&self, v: usize) -> bool {
        self.a == v || self.b == v
    }

    /// The two directed versions of this edge.
    pub fn directions(&self) -> [DirectedEdge; 2] {
        [
            DirectedEdge {
                from: self.a,
                to: self.b,
            },
            DirectedEdge {
                from: self.b,
                to: self.a,
            },
        ]
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.a, self.b)
    }
}

/// A directed edge — one message channel of the round structure `G↔`
/// (Section V-A: the directed version of `G`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirectedEdge {
    /// Sender.
    pub from: usize,
    /// Receiver.
    pub to: usize,
}

impl DirectedEdge {
    /// Builds a directed edge.
    pub fn new(from: usize, to: usize) -> DirectedEdge {
        DirectedEdge { from, to }
    }

    /// The underlying undirected edge.
    pub fn undirected(&self) -> Edge {
        Edge::new(self.from, self.to)
    }

    /// The reverse channel.
    pub fn reversed(&self) -> DirectedEdge {
        DirectedEdge {
            from: self.to,
            to: self.from,
        }
    }
}

impl fmt::Display for DirectedEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} → {})", self.from, self.to)
    }
}

/// A simple undirected graph over vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<usize>>,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Graph {
        Graph {
            n,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list (duplicates are rejected).
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or duplicate edges.
    pub fn from_edges(n: usize, list: impl IntoIterator<Item = (usize, usize)>) -> Graph {
        let mut g = Graph::empty(n);
        for (u, v) in list {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or duplicates.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        let e = Edge::new(u, v);
        assert!(!self.edges.contains(&e), "duplicate edge {e}");
        self.adjacency[e.a].push(e.b);
        self.adjacency[e.b].push(e.a);
        self.edges.push(e);
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge list (normalized, in insertion order).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbors of `v` (in insertion order).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// `true` iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.adjacency[u].contains(&v)
    }

    /// All `2·|E|` directed edges of `G↔`.
    pub fn directed_edges(&self) -> Vec<DirectedEdge> {
        self.edges
            .iter()
            .flat_map(|e| e.directions())
            .collect()
    }

    /// The subgraph induced by a vertex set, with vertices *renumbered*
    /// `0..k` in ascending original order. Returns the subgraph and the
    /// old-id vector (`new id -> old id`).
    pub fn induced_subgraph(&self, vertices: &BTreeSet<usize>) -> (Graph, Vec<usize>) {
        let old_ids: Vec<usize> = vertices.iter().copied().collect();
        let rename = |v: usize| old_ids.binary_search(&v).expect("vertex in set");
        let mut g = Graph::empty(old_ids.len());
        for e in &self.edges {
            if vertices.contains(&e.a) && vertices.contains(&e.b) {
                g.add_edge(rename(e.a), rename(e.b));
            }
        }
        (g, old_ids)
    }

    /// Removes a set of edges, returning the remaining graph.
    pub fn without_edges(&self, removed: &[Edge]) -> Graph {
        let mut g = Graph::empty(self.n);
        for e in &self.edges {
            if !removed.contains(e) {
                g.add_edge(e.a, e.b);
            }
        }
        g
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn edge_normalizes_endpoints() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
        assert_eq!(Edge::new(1, 3).a, 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(2, 2);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(1, 4);
        assert_eq!(e.other(1), 4);
        assert_eq!(e.other(4), 1);
        assert!(e.touches(1) && e.touches(4) && !e.touches(2));
    }

    #[test]
    fn directed_edge_roundtrip() {
        let d = DirectedEdge::new(5, 2);
        assert_eq!(d.reversed().reversed(), d);
        assert_eq!(d.undirected(), Edge::new(2, 5));
    }

    #[test]
    fn graph_basics() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.directed_edges().len(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let mut g = triangle();
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = Graph::empty(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let set: BTreeSet<usize> = [1, 2, 3].into_iter().collect();
        let (sub, old) = g.induced_subgraph(&set);
        assert_eq!(old, vec![1, 2, 3]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 3); // 1-2, 2-3, 1-3
        assert!(sub.has_edge(0, 2)); // old 1-3
    }

    #[test]
    fn without_edges_removes() {
        let g = triangle();
        let g2 = g.without_edges(&[Edge::new(0, 1)]);
        assert_eq!(g2.edge_count(), 2);
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(1, 2));
    }
}
