//! Generators for the graph families swept by the Section V experiments.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt as _};

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// The cycle `C_n` (`n ≥ 3`).
///
/// # Panics
/// Panics for `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// The path `P_n` (`n ≥ 2`).
pub fn path(n: usize) -> Graph {
    assert!(n >= 2, "a path needs at least 2 vertices");
    Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
}

/// The star `K_{1,n-1}` with center 0.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "a star needs at least 2 vertices");
    Graph::from_edges(n, (1..n).map(|i| (0, i)))
}

/// The `rows × cols` grid.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let id = |r: usize, c: usize| r * cols + c;
    let mut g = Graph::empty(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// The `rows × cols` torus (wrap-around grid; needs ≥ 3 per dimension to
/// stay simple).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs ≥ 3 per dimension");
    let id = |r: usize, c: usize| r * cols + c;
    let mut g = Graph::empty(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id(r, (c + 1) % cols));
            g.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` vertices.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::empty(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                g.add_edge(v, u);
            }
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::empty(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u, a + v);
        }
    }
    g
}

/// A barbell: two disjoint `K_m` joined by `bridges` vertex-disjoint
/// bridge edges. The canonical `c(G) < deg(G)` family of Section V
/// (`c = bridges`, `deg = m - 1` for `bridges < m`).
///
/// # Panics
/// Panics when `bridges > m` (not enough distinct endpoints) or `m < 2`.
pub fn barbell(m: usize, bridges: usize) -> Graph {
    assert!(m >= 2, "barbell cliques need ≥ 2 vertices");
    assert!(bridges >= 1 && bridges <= m, "1 ≤ bridges ≤ m required");
    let mut g = Graph::empty(2 * m);
    for u in 0..m {
        for v in u + 1..m {
            g.add_edge(u, v);
            g.add_edge(m + u, m + v);
        }
    }
    for i in 0..bridges {
        g.add_edge(i, m + i);
    }
    g
}

/// A theta graph: two hub vertices joined by `paths` internally disjoint
/// paths, each with `inner` internal vertices.
///
/// # Panics
/// Panics for fewer than 2 paths or 1 inner vertex (keeps the graph
/// simple).
pub fn theta(paths: usize, inner: usize) -> Graph {
    assert!(paths >= 2 && inner >= 1);
    let n = 2 + paths * inner;
    let mut g = Graph::empty(n);
    let (s, t) = (0, 1);
    for p in 0..paths {
        let base = 2 + p * inner;
        g.add_edge(s, base);
        for k in 0..inner - 1 {
            g.add_edge(base + k, base + k + 1);
        }
        g.add_edge(base + inner - 1, t);
    }
    g
}

/// The Petersen graph.
pub fn petersen() -> Graph {
    let mut g = Graph::empty(10);
    for i in 0..5 {
        g.add_edge(i, (i + 1) % 5); // outer cycle
        g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
        g.add_edge(i, 5 + i); // spokes
    }
    g
}

/// Erdős–Rényi `G(n, p)`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.random_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A connected `G(n, p)`: resamples until connected (caller should keep
/// `p` comfortably above the connectivity threshold).
///
/// # Panics
/// Panics after 1000 failed attempts.
pub fn gnp_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    for _ in 0..1000 {
        let g = gnp(n, p, rng);
        if crate::connectivity::is_connected(&g) {
            return g;
        }
    }
    panic!("could not sample a connected G({n}, {p}) in 1000 attempts");
}

/// A random `d`-regular graph via the configuration model with rejection
/// (no self-loops or multi-edges). `n·d` must be even.
///
/// # Panics
/// Panics on parity violation or after 1000 failed attempts.
pub fn random_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(d < n, "degree must be below n");
    'attempt: for _ in 0..1000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut g = Graph::empty(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || g.has_edge(u, v) {
                continue 'attempt;
            }
            g.add_edge(u, v);
        }
        return g;
    }
    panic!("could not sample a simple {d}-regular graph on {n} vertices");
}

/// Largest vertex count [`parse`] will build. Descriptions exceeding it
/// are rejected before construction, so untrusted input (e.g. a network
/// request) cannot trigger an enormous allocation. The caps are small
/// enough that even `Graph`'s quadratic duplicate-edge checking stays
/// cheap — construction time is bounded, not just memory.
pub const MAX_PARSE_VERTICES: usize = 10_000;

/// Largest edge count [`parse`] will build; see [`MAX_PARSE_VERTICES`].
pub const MAX_PARSE_EDGES: usize = 100_000;

/// Rejects descriptions whose graph would exceed the parse size caps,
/// sizing the graph from the arguments alone. Descriptions with the
/// wrong arity pass through: the builder dispatch reports those.
fn check_parse_size(name: &str, args: &[usize], spec: &str) -> Result<(), String> {
    // u128 arithmetic: products of two usize arguments cannot overflow.
    let size: Option<(u128, u128)> = match (name, args) {
        ("complete", &[n]) => Some((n as u128, n as u128 * n.saturating_sub(1) as u128 / 2)),
        ("cycle" | "path" | "star", &[n]) => Some((n as u128, n as u128)),
        ("grid" | "torus", &[r, c]) => {
            Some((r as u128 * c as u128, 2 * r as u128 * c as u128))
        }
        ("hypercube", &[d]) => {
            if d >= 64 {
                Some((u128::MAX, u128::MAX))
            } else {
                Some((1u128 << d, (d as u128) << d.saturating_sub(1)))
            }
        }
        ("complete_bipartite", &[a, b]) => {
            Some((a as u128 + b as u128, a as u128 * b as u128))
        }
        ("barbell", &[m, bridges]) => Some((
            2 * m as u128,
            m as u128 * m.saturating_sub(1) as u128 + bridges as u128,
        )),
        ("theta", &[paths, inner]) => Some((
            2 + paths as u128 * inner as u128,
            paths as u128 * (inner as u128 + 1),
        )),
        _ => None,
    };
    match size {
        Some((vertices, edges))
            if vertices > MAX_PARSE_VERTICES as u128 || edges > MAX_PARSE_EDGES as u128 =>
        {
            Err(format!(
                "{spec} is too large: {vertices} vertices / {edges} edges exceed the \
                 parse caps of {MAX_PARSE_VERTICES} vertices / {MAX_PARSE_EDGES} edges"
            ))
        }
        _ => Ok(()),
    }
}

/// Builds a graph from a textual family description, e.g. `"torus(3,4)"`,
/// `"petersen"`, or the short forms `"k5"` / `"c6"` / `"q3"` the chaos
/// harness and experiment tables use.
///
/// Grammar: `name` or `name(arg, ...)` with unsigned decimal arguments.
/// Deterministic families only — the random generators need an RNG and a
/// seed, which a flat description string cannot carry faithfully.
///
/// | description | graph |
/// |-------------|-------|
/// | `complete(n)`, `k<n>` | `K_n` |
/// | `cycle(n)`, `c<n>` | `C_n` (n ≥ 3) |
/// | `path(n)` | `P_n` (n ≥ 2) |
/// | `star(n)` | `K_{1,n-1}` (n ≥ 2) |
/// | `grid(r,c)` | r×c grid |
/// | `torus(r,c)` | r×c torus (both ≥ 3) |
/// | `hypercube(d)`, `q<d>`, `h<d>` | `Q_d` |
/// | `complete_bipartite(a,b)` | `K_{a,b}` |
/// | `barbell(m,bridges)` | two `K_m` + bridges (1 ≤ bridges ≤ m) |
/// | `theta(paths,inner)` | theta graph (paths ≥ 2, inner ≥ 1) |
/// | `petersen` | the Petersen graph |
///
/// Errors (instead of panicking) on unknown names, wrong arity, and
/// out-of-range sizes, so a network service can reject bad requests.
/// Descriptions are also size-capped ([`MAX_PARSE_VERTICES`] /
/// [`MAX_PARSE_EDGES`]), computed from the arguments *before* any
/// allocation — a hostile `grid(100000,100000)` is rejected, not built.
pub fn parse(spec: &str) -> Result<Graph, String> {
    let spec = spec.trim();
    let (name, args) = match spec.find('(') {
        Some(open) => {
            let Some(inner) = spec[open + 1..].strip_suffix(')') else {
                return Err(format!("unbalanced parentheses in {spec:?}"));
            };
            let args = if inner.trim().is_empty() {
                Vec::new()
            } else {
                inner
                    .split(',')
                    .map(|a| {
                        a.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("bad argument {:?} in {spec:?}", a.trim()))
                    })
                    .collect::<Result<Vec<usize>, String>>()?
            };
            (&spec[..open], args)
        }
        None => (spec, Vec::new()),
    };
    let name = name.trim().to_ascii_lowercase();

    // Short forms: a single family letter fused with its one argument.
    if args.is_empty() && name.len() > 1 {
        if let Ok(n) = name[1..].parse::<usize>() {
            match &name[..1] {
                "k" => return parse(&format!("complete({n})")),
                "c" => return parse(&format!("cycle({n})")),
                "q" | "h" => return parse(&format!("hypercube({n})")),
                _ => {}
            }
        }
    }

    check_parse_size(&name, &args, spec)?;

    let arity = |want: usize| -> Result<(), String> {
        if args.len() == want {
            Ok(())
        } else {
            Err(format!(
                "{name} takes {want} argument(s), got {}",
                args.len()
            ))
        }
    };
    let graph = match name.as_str() {
        "complete" => {
            arity(1)?;
            complete(args[0])
        }
        "cycle" => {
            arity(1)?;
            if args[0] < 3 {
                return Err("cycle needs n ≥ 3".to_string());
            }
            cycle(args[0])
        }
        "path" => {
            arity(1)?;
            if args[0] < 2 {
                return Err("path needs n ≥ 2".to_string());
            }
            path(args[0])
        }
        "star" => {
            arity(1)?;
            if args[0] < 2 {
                return Err("star needs n ≥ 2".to_string());
            }
            star(args[0])
        }
        "grid" => {
            arity(2)?;
            if args[0] < 1 || args[1] < 1 {
                return Err("grid needs ≥ 1 per dimension".to_string());
            }
            grid(args[0], args[1])
        }
        "torus" => {
            arity(2)?;
            if args[0] < 3 || args[1] < 3 {
                return Err("torus needs ≥ 3 per dimension".to_string());
            }
            torus(args[0], args[1])
        }
        "hypercube" => {
            arity(1)?;
            hypercube(args[0] as u32)
        }
        "complete_bipartite" => {
            arity(2)?;
            complete_bipartite(args[0], args[1])
        }
        "barbell" => {
            arity(2)?;
            if args[0] < 2 {
                return Err("barbell cliques need ≥ 2 vertices".to_string());
            }
            if args[1] < 1 || args[1] > args[0] {
                return Err("barbell needs 1 ≤ bridges ≤ m".to_string());
            }
            barbell(args[0], args[1])
        }
        "theta" => {
            arity(2)?;
            if args[0] < 2 || args[1] < 1 {
                return Err("theta needs paths ≥ 2 and inner ≥ 1".to_string());
            }
            theta(args[0], args[1])
        }
        "petersen" => {
            arity(0)?;
            petersen()
        }
        _ => return Err(format!("unknown graph family {name:?}")),
    };
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{is_connected, min_degree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_covers_every_deterministic_family() {
        for (spec, nodes, edges) in [
            ("complete(4)", 4, 6),
            ("k4", 4, 6),
            (" K4 ", 4, 6),
            ("cycle(5)", 5, 5),
            ("c5", 5, 5),
            ("path(3)", 3, 2),
            ("star(4)", 4, 3),
            ("grid(2,3)", 6, 7),
            ("torus(3, 3)", 9, 18),
            ("hypercube(3)", 8, 12),
            ("q3", 8, 12),
            ("h3", 8, 12),
            ("complete_bipartite(2,3)", 5, 6),
            ("barbell(3,2)", 6, 8),
            ("theta(2,1)", 4, 4),
            ("petersen", 10, 15),
            ("petersen()", 10, 15),
        ] {
            let g = parse(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(g.vertex_count(), nodes, "{spec}");
            assert_eq!(g.edge_count(), edges, "{spec}");
        }
    }

    #[test]
    fn parse_rejects_malformed_descriptions() {
        for bad in [
            "mobius(4)",
            "cycle(2)",
            "cycle(3",
            "cycle(x)",
            "torus(2,3)",
            "grid(3)",
            "barbell(3,4)",
            "petersen(1)",
            "hypercube(64)",
            "",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_rejects_oversized_descriptions_without_building() {
        // Each of these would allocate far past the caps if built; the
        // error must come back immediately (and mention the caps), not
        // after an attempted 10^10-vertex construction.
        for big in [
            "grid(100000,100000)",
            "complete(100000)",
            "torus(1000000,1000000)",
            "complete_bipartite(100000,100000)",
            "barbell(50000,1)",
            "theta(100000,100000)",
            "hypercube(40)",
            "q40",
            "k18446744073709551615",
            "path(18446744073709551615)",
        ] {
            let err = parse(big).expect_err(big);
            assert!(err.contains("too large"), "{big}: {err}");
        }
        // Comfortably in-cap members still build.
        assert!(parse("hypercube(10)").is_ok());
        assert!(parse("grid(70,70)").is_ok());
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(min_degree(&g), 5);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        assert!((0..5).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn path_and_star_shapes() {
        assert_eq!(path(4).edge_count(), 3);
        let s = star(5);
        assert_eq!(s.degree(0), 4);
        assert!((1..5).all(|v| s.degree(v) == 1));
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(3, 5);
        assert!((0..15).all(|v| g.degree(v) == 4));
    }

    #[test]
    fn hypercube_is_d_regular() {
        let g = hypercube(4);
        assert_eq!(g.vertex_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert!((0..16).all(|v| g.degree(v) == 4));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 6 + 6 + 2);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "bridges ≤ m")]
    fn barbell_too_many_bridges() {
        let _ = barbell(3, 4);
    }

    #[test]
    fn theta_shape() {
        let g = theta(3, 2);
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn petersen_is_cubic() {
        let g = petersen();
        assert_eq!(g.edge_count(), 15);
        assert!((0..10).all(|v| g.degree(v) == 3));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn gnp_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnp_connected(12, 0.4, &mut rng);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_regular_is_regular() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular(10, 3, &mut rng);
        assert!((0..10).all(|v| g.degree(v) == 3));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_parity_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = random_regular(5, 3, &mut rng);
    }
}
