//! Edge connectivity, minimum cuts, and components.
//!
//! `c(G)` — "the minimal number of edges to remove to disconnect the graph"
//! (Section V) — is computed as `min_t maxflow(s, t)` over a fixed source
//! `s`, on the unit-capacity directed version of `G`. A concrete minimum
//! edge cut is recovered from the residual network of the minimizing run.

use crate::flow::FlowNetwork;
use crate::graph::{Edge, Graph};

/// Connected components as a vector of sorted vertex lists.
pub fn components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            comp.push(u);
            for &v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// `true` iff the graph is connected (vacuously for ≤ 1 vertex).
pub fn is_connected(g: &Graph) -> bool {
    components(g).len() <= 1
}

/// The minimum degree `deg(G)`.
///
/// Returns 0 for the empty graph.
pub fn min_degree(g: &Graph) -> usize {
    (0..g.vertex_count()).map(|v| g.degree(v)).min().unwrap_or(0)
}

fn unit_network(g: &Graph) -> FlowNetwork {
    let mut net = FlowNetwork::new(g.vertex_count());
    for e in g.edges() {
        net.add_undirected_unit(e.a, e.b);
    }
    net
}

/// The edge connectivity `c(G)`: the minimum over `t ≠ 0` of the `0–t`
/// max-flow. Returns 0 for disconnected or trivial graphs.
pub fn edge_connectivity(g: &Graph) -> usize {
    if g.vertex_count() <= 1 || !is_connected(g) {
        return 0;
    }
    let mut best = usize::MAX;
    for t in 1..g.vertex_count() {
        let mut net = unit_network(g);
        let f = net.max_flow(0, t) as usize;
        best = best.min(f);
        if best == 0 {
            break;
        }
    }
    best
}

/// A concrete minimum edge cut: the edges crossing the residual source
/// side of the minimizing max-flow run. Returns `None` for disconnected or
/// trivial graphs.
///
/// The returned cut `C` satisfies `|C| = c(G)` and removing it disconnects
/// `G` into exactly the residual side and its complement.
pub fn min_edge_cut(g: &Graph) -> Option<Vec<Edge>> {
    if g.vertex_count() <= 1 || !is_connected(g) {
        return None;
    }
    let mut best: Option<(usize, Vec<bool>)> = None;
    for t in 1..g.vertex_count() {
        let mut net = unit_network(g);
        let f = net.max_flow(0, t) as usize;
        if best.as_ref().is_none_or(|(bf, _)| f < *bf) {
            let side = net.residual_source_side(0);
            best = Some((f, side));
        }
    }
    let (value, side) = best?;
    let cut: Vec<Edge> = g
        .edges()
        .iter()
        .copied()
        .filter(|e| side[e.a] != side[e.b])
        .collect();
    debug_assert_eq!(cut.len(), value, "cut size must equal flow value");
    Some(cut)
}

/// Exhaustive minimum cut for small graphs (`n ≤ ~20`): checks every
/// nonempty proper vertex subset containing vertex 0. A test oracle for
/// [`edge_connectivity`].
pub fn edge_connectivity_bruteforce(g: &Graph) -> usize {
    let n = g.vertex_count();
    assert!(n <= 20, "bruteforce oracle limited to 20 vertices");
    if n <= 1 || !is_connected(g) {
        return 0;
    }
    let mut best = usize::MAX;
    // Subsets of 1..n vertices joined with {0}; complement nonempty.
    for mask in 0..(1u32 << (n - 1)) {
        let side = |v: usize| v == 0 || (mask >> (v - 1)) & 1 == 1;
        if (1..n).all(side) {
            continue; // complement empty
        }
        let crossing = g.edges().iter().filter(|e| side(e.a) != side(e.b)).count();
        best = best.min(crossing);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_forest() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let comps = components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn single_vertex_is_connected() {
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn connectivity_of_standard_families() {
        assert_eq!(edge_connectivity(&generators::complete(5)), 4);
        assert_eq!(edge_connectivity(&generators::cycle(7)), 2);
        assert_eq!(edge_connectivity(&generators::path(5)), 1);
        assert_eq!(edge_connectivity(&generators::star(6)), 1);
        assert_eq!(edge_connectivity(&generators::hypercube(3)), 3);
        assert_eq!(edge_connectivity(&generators::complete_bipartite(3, 4)), 3);
        assert_eq!(edge_connectivity(&generators::petersen()), 3);
    }

    #[test]
    fn barbell_connectivity_is_bridge_count() {
        // Two K5's joined by 2 parallel-ish bridges: c = 2 < deg = 4.
        let g = generators::barbell(5, 2);
        assert_eq!(edge_connectivity(&g), 2);
        assert_eq!(min_degree(&g), 4);
    }

    #[test]
    fn theta_graph_connectivity() {
        // Two hubs joined by 3 internally disjoint paths: c = 3… but the
        // internal path vertices have degree 2, capping c at 2.
        let g = generators::theta(3, 2);
        assert_eq!(min_degree(&g), 2);
        assert_eq!(edge_connectivity(&g), 2);
    }

    #[test]
    fn min_cut_is_returned_and_disconnects() {
        let g = generators::barbell(4, 3);
        let cut = min_edge_cut(&g).unwrap();
        assert_eq!(cut.len(), edge_connectivity(&g));
        let rest = g.without_edges(&cut);
        assert!(!is_connected(&rest));
    }

    #[test]
    fn min_cut_none_for_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(min_edge_cut(&g), None);
        assert_eq!(edge_connectivity(&g), 0);
    }

    #[test]
    fn flow_matches_bruteforce_on_small_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp(8, 0.45, &mut rng);
            assert_eq!(
                edge_connectivity(&g),
                edge_connectivity_bruteforce(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn connectivity_never_exceeds_min_degree() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let g = generators::gnp(10, 0.4, &mut rng);
            assert!(edge_connectivity(&g) <= min_degree(&g), "seed {seed}");
        }
    }

    #[test]
    fn grid_and_torus_connectivity() {
        assert_eq!(edge_connectivity(&generators::grid(3, 4)), 2);
        assert_eq!(edge_connectivity(&generators::torus(3, 3)), 4);
    }

    mod random_properties {
        use super::*;
        use crate::graph::Edge;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        fn arb_graph() -> impl Strategy<Value = Graph> {
            (4usize..10, any::<u64>()).prop_map(|(n, seed)| {
                let mut rng = StdRng::seed_from_u64(seed);
                generators::gnp(n, 0.45, &mut rng)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_cut_disconnects_and_matches_connectivity(g in arb_graph()) {
                match min_edge_cut(&g) {
                    None => prop_assert!(!is_connected(&g) || g.vertex_count() <= 1),
                    Some(cut) => {
                        prop_assert_eq!(cut.len(), edge_connectivity(&g));
                        let rest = g.without_edges(&cut);
                        prop_assert!(!is_connected(&rest), "removing the cut disconnects");
                        // Minimality: no single cut edge is redundant.
                        for skip in 0..cut.len() {
                            let partial: Vec<Edge> = cut
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| *i != skip)
                                .map(|(_, e)| *e)
                                .collect();
                            prop_assert!(
                                is_connected(&g.without_edges(&partial)),
                                "a strict subset of a minimum cut must not disconnect"
                            );
                        }
                    }
                }
            }

            #[test]
            fn prop_connectivity_bounded_by_degree(g in arb_graph()) {
                if is_connected(&g) && g.vertex_count() > 1 {
                    prop_assert!(edge_connectivity(&g) <= min_degree(&g));
                    prop_assert!(edge_connectivity(&g) >= 1);
                }
            }

            #[test]
            fn prop_flow_matches_bruteforce(g in arb_graph()) {
                prop_assert_eq!(edge_connectivity(&g), edge_connectivity_bruteforce(&g));
            }

            #[test]
            fn prop_components_partition_vertices(g in arb_graph()) {
                let comps = components(&g);
                let total: usize = comps.iter().map(|c| c.len()).sum();
                prop_assert_eq!(total, g.vertex_count());
                let mut all: Vec<usize> = comps.into_iter().flatten().collect();
                all.sort_unstable();
                prop_assert_eq!(all, (0..g.vertex_count()).collect::<Vec<_>>());
            }
        }
    }
}
