//! # minobs-graphs — graph substrate for Section V
//!
//! Section V of Fevat & Godard extends the omission-scheme analysis to
//! synchronous networks of arbitrary topology, proving that Consensus with
//! at most `f` message losses per round is solvable on a connected graph
//! `G` **iff** `f < c(G)`, the edge connectivity.
//!
//! This crate provides everything that theorem needs, built from scratch:
//!
//! * [`Graph`] — a simple undirected graph with stable vertex ids and both
//!   edge-list and adjacency views; [`DirectedEdge`]s for the per-round
//!   omission patterns of `Σ_G`;
//! * [`generators`] — the graph families the experiments sweep (complete,
//!   cycle, path, star, grid, torus, hypercube, barbell, theta, complete
//!   bipartite, random `G(n,p)`, random regular, Petersen);
//! * [`flow`] — Dinic max-flow on unit-capacity networks;
//! * [`connectivity`] — edge connectivity `c(G)`, a concrete minimum edge
//!   cut, connectedness, components, minimum degree;
//! * [`partition`] — the 3-partition `(A, B, C)` of the edges around a
//!   minimum cut used in the proof of Theorem V.1, with paired cut
//!   endpoints `(a_i, b_i)`.
//!
//! ```
//! use minobs_graphs::{cut_partition, edge_connectivity, generators, min_degree};
//!
//! // The Santoro–Widmayer gap family: c(G) < deg(G).
//! let g = generators::barbell(5, 2);
//! assert_eq!(edge_connectivity(&g), 2);
//! assert_eq!(min_degree(&g), 4);
//! let p = cut_partition(&g).unwrap();
//! assert_eq!(p.f(), 2);
//! assert_eq!(p.side_a.len() + p.side_b.len(), g.vertex_count());
//! ```

pub mod connectivity;
pub mod flow;
pub mod generators;
pub mod graph;
pub mod partition;

pub use connectivity::{components, edge_connectivity, is_connected, min_degree, min_edge_cut};
pub use graph::{DirectedEdge, Edge, Graph};
pub use partition::{cut_partition, CutPartition};
