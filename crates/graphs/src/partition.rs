//! The 3-partition `(A, B, C)` around a minimum cut (proof of
//! Theorem V.1).
//!
//! Given a connected `G` and `f = c(G)`, the proof picks a partition of the
//! edge set into
//!
//! * `C` — a minimum cut of `f` edges, written as pairs `(a_i, b_i)` with
//!   `a_i` on the `A` side;
//! * `A` — the edges induced on one side, whose induced graph is connected;
//! * `B` — same on the other side;
//!
//! and builds the three-letter alphabet `Γ_C = {C_⇄, C_→, C_←}` on it.
//! This module constructs and validates such a partition.
//!
//! One subtlety the paper glosses over: an arbitrary minimum cut splits the
//! *vertices* into two connected sides, but a side may be a single vertex,
//! in which case its edge set is empty yet the side is still (vacuously)
//! connected — the emulation algorithms of Section V-B handle that case by
//! letting the lone vertex emulate itself.

use crate::connectivity::{edge_connectivity, is_connected, min_edge_cut};
use crate::graph::{Edge, Graph};
use std::collections::BTreeSet;

/// A validated `(A, B, C)` partition of a graph's edges around a minimum
/// cut.
#[derive(Debug, Clone)]
pub struct CutPartition {
    /// Vertices on the `A` side.
    pub side_a: BTreeSet<usize>,
    /// Vertices on the `B` side.
    pub side_b: BTreeSet<usize>,
    /// Edges within `A`.
    pub edges_a: Vec<Edge>,
    /// Edges within `B`.
    pub edges_b: Vec<Edge>,
    /// The cut, as `(a_i, b_i)` pairs with `a_i ∈ A`, `b_i ∈ B`.
    pub cut: Vec<(usize, usize)>,
}

impl CutPartition {
    /// `f = |C|`, the cut size (equals `c(G)` when built by
    /// [`cut_partition`]).
    pub fn f(&self) -> usize {
        self.cut.len()
    }

    /// The designated representatives `a_1` and `b_1` used by Algorithm 4.
    pub fn representatives(&self) -> (usize, usize) {
        self.cut[0]
    }

    /// All cut endpoints on the `A` side (`a_1, …, a_f`, with repeats when
    /// a vertex carries several cut edges).
    pub fn cut_endpoints_a(&self) -> Vec<usize> {
        self.cut.iter().map(|&(a, _)| a).collect()
    }

    /// All cut endpoints on the `B` side.
    pub fn cut_endpoints_b(&self) -> Vec<usize> {
        self.cut.iter().map(|&(_, b)| b).collect()
    }
}

/// Builds the `(A, B, C)` partition from a minimum edge cut of `G`.
///
/// Returns `None` when the graph is disconnected or trivial. The returned
/// partition satisfies:
/// * `|C| = c(G)`;
/// * both vertex sides are nonempty and induce connected subgraphs;
/// * `A ∪ B ∪ C` is the whole edge set, pairwise disjoint.
pub fn cut_partition(g: &Graph) -> Option<CutPartition> {
    let cut = min_edge_cut(g)?;
    let rest = g.without_edges(&cut);
    let comps = crate::connectivity::components(&rest);
    // Removing a *minimum* cut leaves exactly two components.
    debug_assert_eq!(comps.len(), 2, "minimum cut must split into 2 components");
    let side_a: BTreeSet<usize> = comps[0].iter().copied().collect();
    let side_b: BTreeSet<usize> = comps[1].iter().copied().collect();

    let mut edges_a = Vec::new();
    let mut edges_b = Vec::new();
    let mut pairs = Vec::new();
    for e in g.edges() {
        let (ina, inb) = (side_a.contains(&e.a), side_a.contains(&e.b));
        match (ina, inb) {
            (true, true) => edges_a.push(*e),
            (false, false) => edges_b.push(*e),
            (true, false) => pairs.push((e.a, e.b)),
            (false, true) => pairs.push((e.b, e.a)),
        }
    }
    debug_assert_eq!(pairs.len(), cut.len());
    Some(CutPartition {
        side_a,
        side_b,
        edges_a,
        edges_b,
        cut: pairs,
    })
}

/// Validates the partition conditions from the proof of Theorem V.1.
/// Returns a list of violated conditions (empty = valid).
pub fn validate_partition(g: &Graph, p: &CutPartition) -> Vec<String> {
    let mut issues = Vec::new();
    if p.cut.len() != edge_connectivity(g) {
        issues.push(format!(
            "cut size {} ≠ c(G) = {}",
            p.cut.len(),
            edge_connectivity(g)
        ));
    }
    if p.side_a.is_empty() || p.side_b.is_empty() {
        issues.push("a side is empty".into());
    }
    if p.side_a.intersection(&p.side_b).next().is_some() {
        issues.push("sides overlap".into());
    }
    if p.side_a.len() + p.side_b.len() != g.vertex_count() {
        issues.push("sides do not cover the vertex set".into());
    }
    for (label, side) in [("A", &p.side_a), ("B", &p.side_b)] {
        let (sub, _) = g.induced_subgraph(side);
        if !is_connected(&sub) {
            issues.push(format!("side {label} is not connected"));
        }
    }
    let total = p.edges_a.len() + p.edges_b.len() + p.cut.len();
    if total != g.edge_count() {
        issues.push(format!(
            "edge partition covers {total} of {} edges",
            g.edge_count()
        ));
    }
    for &(a, b) in &p.cut {
        if !p.side_a.contains(&a) || !p.side_b.contains(&b) {
            issues.push(format!("cut pair ({a}, {b}) not oriented A→B"));
        }
        if !g.has_edge(a, b) {
            issues.push(format!("cut pair ({a}, {b}) not an edge"));
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn barbell_partition_is_the_bridge_set() {
        let g = generators::barbell(4, 2);
        let p = cut_partition(&g).unwrap();
        assert_eq!(p.f(), 2);
        assert!(validate_partition(&g, &p).is_empty());
        // Sides are the two cliques.
        assert_eq!(p.side_a.len(), 4);
        assert_eq!(p.side_b.len(), 4);
        assert_eq!(p.edges_a.len(), 6);
        assert_eq!(p.edges_b.len(), 6);
    }

    #[test]
    fn cycle_partition_has_two_cut_edges() {
        let g = generators::cycle(6);
        let p = cut_partition(&g).unwrap();
        assert_eq!(p.f(), 2);
        assert!(validate_partition(&g, &p).is_empty(), "{:?}", validate_partition(&g, &p));
    }

    #[test]
    fn path_partition_single_bridge() {
        let g = generators::path(5);
        let p = cut_partition(&g).unwrap();
        assert_eq!(p.f(), 1);
        assert!(validate_partition(&g, &p).is_empty());
    }

    #[test]
    fn star_partition_has_singleton_side() {
        // Minimum cut of a star isolates a leaf: one side is a lone vertex
        // with no edges — still a valid partition (vacuously connected).
        let g = generators::star(5);
        let p = cut_partition(&g).unwrap();
        assert_eq!(p.f(), 1);
        assert!(validate_partition(&g, &p).is_empty());
        assert_eq!(p.side_a.len().min(p.side_b.len()), 1);
    }

    #[test]
    fn representatives_are_cut_endpoints() {
        let g = generators::barbell(3, 2);
        let p = cut_partition(&g).unwrap();
        let (a1, b1) = p.representatives();
        assert!(p.side_a.contains(&a1));
        assert!(p.side_b.contains(&b1));
        assert!(g.has_edge(a1, b1));
    }

    #[test]
    fn disconnected_has_no_partition() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(cut_partition(&g).is_none());
    }

    #[test]
    fn random_graphs_partition_validates() {
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::gnp_connected(9, 0.35, &mut rng);
            let p = cut_partition(&g).unwrap();
            let issues = validate_partition(&g, &p);
            assert!(issues.is_empty(), "seed {seed}: {issues:?}");
        }
    }

    #[test]
    fn complete_graph_partition() {
        let g = generators::complete(5);
        let p = cut_partition(&g).unwrap();
        assert_eq!(p.f(), 4);
        assert!(validate_partition(&g, &p).is_empty());
    }
}
