//! Dinic max-flow on unit-capacity networks.
//!
//! Edge connectivity reduces to `s–t` max-flow on the directed version of
//! the graph with unit capacities; Dinic's algorithm runs in
//! `O(E·√V)` on unit networks — far more than fast enough for the
//! experiment sweeps.

/// A directed flow network with integer capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Per-arc: target vertex.
    to: Vec<usize>,
    /// Per-arc: remaining capacity.
    cap: Vec<i64>,
    /// Per-vertex: indexes of outgoing arcs (including residuals).
    head: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// A network on `n` vertices with no arcs.
    pub fn new(n: usize) -> FlowNetwork {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `u → v` with capacity `c` (and its residual).
    pub fn add_arc(&mut self, u: usize, v: usize, c: i64) {
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(c);
        self.head[u].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.head[v].push(id + 1);
    }

    /// Adds both directions of an undirected unit edge.
    ///
    /// For edge-connectivity each undirected edge becomes two unit arcs.
    pub fn add_undirected_unit(&mut self, u: usize, v: usize) {
        self.add_arc(u, v, 1);
        self.add_arc(v, u, 1);
    }

    /// Computes the max flow from `s` to `t` (Dinic). Mutates capacities;
    /// call on a fresh clone to rerun.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.vertex_count();
        let mut flow = 0i64;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &a in &self.head[u] {
                    let v = self.to[a];
                    if self.cap[a] > 0 && level[v] == usize::MAX {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] == usize::MAX {
                return flow;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[usize], iter: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.head[u].len() {
            let a = self.head[u][iter[u]];
            let v = self.to[a];
            if self.cap[a] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[a]), level, iter);
                if pushed > 0 {
                    self.cap[a] -= pushed;
                    self.cap[a ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// After a `max_flow(s, t)` run: the set of vertices still reachable
    /// from `s` in the residual network — the `s`-side of a minimum cut.
    pub fn residual_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.vertex_count();
        let mut seen = vec![false; n];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &a in &self.head[u] {
                let v = self.to[a];
                if self.cap[a] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc_flow() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    #[test]
    fn series_takes_minimum() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5);
        net.add_arc(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_add() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 2);
        net.add_arc(1, 3, 2);
        net.add_arc(0, 2, 3);
        net.add_arc(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_textbook_instance() {
        // CLRS-style example.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 16);
        net.add_arc(0, 2, 13);
        net.add_arc(1, 3, 12);
        net.add_arc(2, 1, 4);
        net.add_arc(2, 4, 14);
        net.add_arc(3, 2, 9);
        net.add_arc(3, 5, 20);
        net.add_arc(4, 3, 7);
        net.add_arc(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_has_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 7);
        net.add_arc(2, 3, 7);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn residual_side_identifies_cut() {
        // 0-1 bottleneck of capacity 1 then wide to 2.
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 10);
        assert_eq!(net.max_flow(0, 2), 1);
        let side = net.residual_source_side(0);
        assert_eq!(side, vec![true, false, false]);
    }

    #[test]
    fn undirected_unit_edges_count_once_per_direction() {
        // Cycle of 4: two edge-disjoint paths between opposite corners.
        let mut net = FlowNetwork::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            net.add_undirected_unit(u, v);
        }
        assert_eq!(net.max_flow(0, 2), 2);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_sink_rejected() {
        let mut net = FlowNetwork::new(2);
        let _ = net.max_flow(1, 1);
    }
}
