//! Method handlers behind the daemon's worker pool.
//!
//! Every handler returns `(Result<Value, RpcError>, disposition)` where
//! the disposition is the verdict-cache outcome recorded on the
//! `svc_response` event: `"hit"`, `"miss"`, `"subsumed"`, or `"none"`
//! for methods the cache does not apply to.
//!
//! Budgets are clamped to the server's [`Limits`] on both axes, so a
//! hostile `check_horizon` cannot hold a worker past the configured
//! wall-clock cap no matter what the request asks for.

use crate::server::{Limits, ServerState};
use crate::spec::{parse_alphabet, ParsedScheme};
use crate::wire::Request;
use minobs_core::engine::run_two_process_with_recorder;
use minobs_core::prelude::*;
use minobs_graphs::{edge_connectivity, generators, min_degree, DirectedEdge, Graph};
use minobs_net::{DecisionRule, FloodConsensus};
use minobs_obs::MemoryRecorder;
use minobs_sim::network::run_network_with_recorder;
use minobs_sim::{NetVerdict, ScriptedAdversary};
use minobs_synth::cache::CacheAnswer;
use minobs_synth::checker::{Budget, CheckResult};
use serde_json::{Map, Value};

/// Largest horizon a request may ask the bounded checker for.
const MAX_HORIZON: usize = 64;
/// Round cap for `simulate` runs.
const MAX_SIM_ROUNDS: usize = 10_000;
/// Largest trace a `simulate` response will inline.
const MAX_TRACE_EVENTS: usize = 5_000;

/// A method-level error, serialized as the response's `error` object.
#[derive(Debug)]
pub struct RpcError {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl RpcError {
    /// Builds an error.
    pub fn new(code: &'static str, message: impl Into<String>) -> RpcError {
        RpcError {
            code,
            message: message.into(),
        }
    }

    fn bad_params(message: impl Into<String>) -> RpcError {
        RpcError::new("bad_params", message)
    }
}

/// Dispatches one request to its handler.
pub fn handle(state: &ServerState, request: &Request) -> (Result<Value, RpcError>, &'static str) {
    let params = &request.params;
    match request.method.as_str() {
        "solvable" => solvable(state, params),
        "check_horizon" => check_horizon(state, params),
        "first_horizon" => first_horizon(state, params),
        "net_solvable" => (net_solvable(params), "none"),
        "simulate" => (simulate(params), "none"),
        "stats" => (Ok(stats(state)), "none"),
        "health" => (Ok(health(state)), "none"),
        "dump_trace" => (Ok(dump_trace(state)), "none"),
        "gossip" => (crate::gossip::handle(state, params), "none"),
        "metrics" => (
            Ok(obj(&[(
                "text",
                Value::from(state.registry().render_text()),
            )])),
            "none",
        ),
        "shutdown" => {
            state.begin_shutdown();
            (Ok(obj(&[("draining", Value::from(true))])), "none")
        }
        other => (
            Err(RpcError::new(
                "unknown_method",
                format!("unknown method {other:?}"),
            )),
            "none",
        ),
    }
}

fn obj(pairs: &[(&str, Value)]) -> Value {
    let mut map = Map::new();
    for (key, value) in pairs {
        map.insert((*key).to_string(), value.clone());
    }
    Value::Object(map)
}

fn parse_scheme(params: &Value) -> Result<ParsedScheme, RpcError> {
    ParsedScheme::parse(params.get("scheme").unwrap_or(&Value::Null)).map_err(RpcError::bad_params)
}

fn parse_horizon(params: &Value, field: &str) -> Result<usize, RpcError> {
    let k = params
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| RpcError::bad_params(format!("missing integer {field:?}")))?;
    if k as usize > MAX_HORIZON {
        return Err(RpcError::bad_params(format!(
            "{field} capped at {MAX_HORIZON}"
        )));
    }
    Ok(k as usize)
}

/// The request budget clamped to the server caps on both axes. The
/// wall-clock cap is always finite, so every check has a deadline.
fn parse_budget(params: &Value, limits: Limits) -> Budget {
    let max_states = params
        .get("max_states")
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .unwrap_or(limits.max_states)
        .min(limits.max_states);
    let max_millis = params
        .get("max_millis")
        .and_then(Value::as_u64)
        .unwrap_or(limits.max_millis)
        .min(limits.max_millis);
    Budget {
        max_states,
        max_millis,
    }
}

fn parse_parallel(params: &Value) -> bool {
    params
        .get("parallel")
        .and_then(Value::as_bool)
        .unwrap_or(false)
}

/// `solvable`: Theorem III.8 on the named scheme, memoised per canonical
/// key.
fn solvable(state: &ServerState, params: &Value) -> (Result<Value, RpcError>, &'static str) {
    let scheme = match parse_scheme(params) {
        Ok(scheme) => scheme,
        Err(e) => return (Err(e), "none"),
    };
    let key = format!("{}|theorem", scheme.canonical());
    if let Some(cached) = state.cache().lookup_theorem(&key) {
        return (Ok(cached), "hit");
    }
    let verdict = match scheme.decide() {
        Ok(verdict) => verdict,
        Err(message) => return (Err(RpcError::new("unsupported", message)), "miss"),
    };
    let result = match verdict {
        Solvability::Solvable { witness, condition } => obj(&[
            ("solvable", Value::from(true)),
            ("witness", Value::from(witness.to_string())),
            ("condition", Value::from(format!("{condition:?}"))),
            ("scheme", Value::from(scheme.display_name())),
        ]),
        Solvability::Obstruction => obj(&[
            ("solvable", Value::from(false)),
            ("scheme", Value::from(scheme.display_name())),
        ]),
    };
    state.record_theorem(&key, result.clone());
    (Ok(result), "miss")
}

/// `check_horizon`: the bounded checker at one horizon, answered from the
/// monotone verdict cache whenever possible.
fn check_horizon(state: &ServerState, params: &Value) -> (Result<Value, RpcError>, &'static str) {
    let parsed = (|| {
        let scheme = parse_scheme(params)?;
        let k = parse_horizon(params, "horizon")?;
        let alphabet = parse_alphabet(params, &scheme).map_err(RpcError::bad_params)?;
        Ok((scheme, k, alphabet))
    })();
    let (scheme, k, alphabet) = match parsed {
        Ok(triple) => triple,
        Err(e) => return (Err(e), "none"),
    };
    let budget = parse_budget(params, state.limits());
    let key = scheme.cache_key(&alphabet);

    if let Some(answer) = state.cache().lookup_horizon(&key, k) {
        let (disposition, proven_at) = match answer {
            CacheAnswer::Exact { .. } => ("hit", k),
            CacheAnswer::Subsumed { proven_at, .. } => ("subsumed", proven_at),
        };
        let result = obj(&[
            ("solvable", Value::from(answer.solvable())),
            ("cached", Value::from(true)),
            ("proven_at", Value::from(proven_at as u64)),
        ]);
        return (Ok(result), disposition);
    }

    let outcome = scheme.check(k, &alphabet, budget, parse_parallel(params));
    let result = match outcome {
        CheckResult::Solvable { views, components } => {
            state.record_horizon(&key, k, true);
            obj(&[
                ("solvable", Value::from(true)),
                ("cached", Value::from(false)),
                ("views", Value::from(views as u64)),
                ("components", Value::from(components as u64)),
            ])
        }
        CheckResult::Empty => {
            state.record_horizon(&key, k, true);
            obj(&[
                ("solvable", Value::from(true)),
                ("cached", Value::from(false)),
                ("empty", Value::from(true)),
            ])
        }
        CheckResult::Unsolvable { chain } => {
            state.record_horizon(&key, k, false);
            obj(&[
                ("solvable", Value::from(false)),
                ("cached", Value::from(false)),
                ("chain_len", Value::from(chain.len() as u64)),
            ])
        }
        CheckResult::BudgetExhausted {
            horizon_reached,
            frontier_size,
        } => obj(&[
            ("solvable", Value::Null),
            ("cached", Value::from(false)),
            (
                "budget_exhausted",
                obj(&[
                    ("horizon_reached", Value::from(horizon_reached as u64)),
                    ("frontier_size", Value::from(frontier_size as u64)),
                ]),
            ),
        ]),
    };
    (Ok(result), "miss")
}

/// `first_horizon`: sweep `0..=max_horizon` for the first solvable
/// horizon, consulting the cache before every inner check. The budget
/// applies per inner check. Disposition is `"miss"` when the checker
/// ran at least once, `"subsumed"` when the sweep was answered from the
/// cache but needed at least one subsumption, and `"hit"` only when
/// every horizon was answered by an exact cached boundary — matching
/// `check_horizon`'s semantics for the `svc_response` cache metrics.
fn first_horizon(state: &ServerState, params: &Value) -> (Result<Value, RpcError>, &'static str) {
    let parsed = (|| {
        let scheme = parse_scheme(params)?;
        let max_k = parse_horizon(params, "max_horizon")?;
        let alphabet = parse_alphabet(params, &scheme).map_err(RpcError::bad_params)?;
        Ok((scheme, max_k, alphabet))
    })();
    let (scheme, max_k, alphabet) = match parsed {
        Ok(triple) => triple,
        Err(e) => return (Err(e), "none"),
    };
    let budget = parse_budget(params, state.limits());
    let parallel = parse_parallel(params);
    let key = scheme.cache_key(&alphabet);

    let mut ran_checker = false;
    let mut saw_subsumption = false;
    let mut outcome = None;
    for k in 0..=max_k {
        let solvable = match state.cache().lookup_horizon(&key, k) {
            Some(answer) => {
                if matches!(answer, CacheAnswer::Subsumed { .. }) {
                    saw_subsumption = true;
                }
                answer.solvable()
            }
            None => {
                ran_checker = true;
                match scheme.check(k, &alphabet, budget, parallel) {
                    CheckResult::BudgetExhausted {
                        horizon_reached,
                        frontier_size,
                    } => {
                        outcome = Some(obj(&[
                            ("outcome", Value::from("budget_exhausted")),
                            ("at_horizon", Value::from(k as u64)),
                            ("horizon_reached", Value::from(horizon_reached as u64)),
                            ("frontier_size", Value::from(frontier_size as u64)),
                        ]));
                        break;
                    }
                    verdict => {
                        let solvable = verdict.is_solvable();
                        state.record_horizon(&key, k, solvable);
                        solvable
                    }
                }
            }
        };
        if solvable {
            outcome = Some(obj(&[
                ("outcome", Value::from("solvable")),
                ("horizon", Value::from(k as u64)),
            ]));
            break;
        }
    }
    let result = outcome.unwrap_or_else(|| {
        obj(&[
            ("outcome", Value::from("unsolvable_within")),
            ("max_horizon", Value::from(max_k as u64)),
        ])
    });
    let disposition = if ran_checker {
        "miss"
    } else if saw_subsumption {
        "subsumed"
    } else {
        "hit"
    };
    (Ok(result), disposition)
}

/// `net_solvable`: Theorem V.1 — consensus on a graph is solvable
/// against `f` omissions per round iff `f < c(G)`.
fn net_solvable(params: &Value) -> Result<Value, RpcError> {
    let desc = params
        .get("graph")
        .and_then(Value::as_str)
        .ok_or_else(|| RpcError::bad_params("missing \"graph\" description string"))?;
    let f = params
        .get("f")
        .and_then(Value::as_u64)
        .ok_or_else(|| RpcError::bad_params("missing integer \"f\""))?;
    let graph = generators::parse(desc).map_err(RpcError::bad_params)?;
    let connectivity = edge_connectivity(&graph);
    Ok(obj(&[
        ("solvable", Value::from(f < connectivity as u64)),
        ("f", Value::from(f)),
        ("edge_connectivity", Value::from(connectivity as u64)),
        ("min_degree", Value::from(min_degree(&graph) as u64)),
        ("vertices", Value::from(graph.vertex_count() as u64)),
        ("edges", Value::from(graph.edge_count() as u64)),
    ]))
}

/// `simulate`: run `A_w` on two processes or flooding consensus on a
/// graph, under a scripted adversary, and return the audited outcome.
fn simulate(params: &Value) -> Result<Value, RpcError> {
    match params.get("target").and_then(Value::as_str) {
        None | Some("two_process") => simulate_two_process(params),
        Some("flooding") => simulate_flooding(params),
        Some(other) => Err(RpcError::bad_params(format!(
            "unknown simulate target {other:?} (two_process or flooding)"
        ))),
    }
}

fn parse_max_rounds(params: &Value, default: usize) -> Result<usize, RpcError> {
    let rounds = params
        .get("max_rounds")
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .unwrap_or(default);
    if rounds == 0 || rounds > MAX_SIM_ROUNDS {
        return Err(RpcError::bad_params(format!(
            "max_rounds must be in 1..={MAX_SIM_ROUNDS}"
        )));
    }
    Ok(rounds)
}

fn want_trace(params: &Value) -> bool {
    params
        .get("trace")
        .and_then(Value::as_bool)
        .unwrap_or(false)
}

fn trace_value(recorder: &MemoryRecorder) -> (Value, bool) {
    let events = recorder.events();
    let truncated = events.len() > MAX_TRACE_EVENTS;
    let json = events
        .iter()
        .take(MAX_TRACE_EVENTS)
        .map(|e| e.to_json())
        .collect::<Vec<Value>>();
    (Value::from(json), truncated)
}

fn simulate_two_process(params: &Value) -> Result<Value, RpcError> {
    let w_text = params
        .get("w")
        .and_then(Value::as_str)
        .ok_or_else(|| RpcError::bad_params("missing \"w\": the A_w parameter scenario"))?;
    let w: Scenario = w_text
        .parse()
        .map_err(|e| RpcError::bad_params(format!("bad scenario {w_text:?}: {e:?}")))?;
    if !w.is_gamma() {
        return Err(RpcError::bad_params(
            "A_w requires a parameter scenario in Γ^ω (letters -, w, b)",
        ));
    }
    let scenario: Scenario = match params.get("scenario").and_then(Value::as_str) {
        Some(text) => text
            .parse()
            .map_err(|e| RpcError::bad_params(format!("bad scenario {text:?}: {e:?}")))?,
        None => w.clone(),
    };
    let inputs: Vec<bool> = match params.get("inputs").and_then(Value::as_array) {
        Some(list) => list
            .iter()
            .map(|v| v.as_bool().ok_or("inputs must be booleans"))
            .collect::<Result<Vec<bool>, _>>()
            .map_err(RpcError::bad_params)?,
        None => vec![true, false],
    };
    if inputs.len() != 2 {
        return Err(RpcError::bad_params(
            "two_process needs exactly two inputs [white, black]",
        ));
    }
    let max_rounds = parse_max_rounds(params, 64)?;

    let mut white = AwProcess::new(Role::White, inputs[0], w.clone());
    let mut black = AwProcess::new(Role::Black, inputs[1], w);
    let mut recorder = MemoryRecorder::new();
    let outcome =
        run_two_process_with_recorder(&mut white, &mut black, &scenario, max_rounds, &mut recorder);

    let mut pairs = vec![
        ("verdict", two_process_verdict(&outcome.verdict)),
        ("white", opt_bool(outcome.white_decision)),
        ("black", opt_bool(outcome.black_decision)),
        ("rounds", Value::from(outcome.rounds as u64)),
        ("messages_sent", Value::from(outcome.messages_sent as u64)),
        (
            "messages_delivered",
            Value::from(outcome.messages_delivered as u64),
        ),
    ];
    if want_trace(params) {
        let (trace, truncated) = trace_value(&recorder);
        pairs.push(("trace", trace));
        pairs.push(("trace_truncated", Value::from(truncated)));
    }
    Ok(obj(&pairs))
}

fn opt_bool(b: Option<bool>) -> Value {
    b.map(Value::from).unwrap_or(Value::Null)
}

fn two_process_verdict(verdict: &Verdict) -> Value {
    match verdict {
        Verdict::Consensus(value) => obj(&[
            ("type", Value::from("consensus")),
            ("value", Value::from(*value)),
        ]),
        Verdict::Disagreement { white, black } => obj(&[
            ("type", Value::from("disagreement")),
            ("white", Value::from(*white)),
            ("black", Value::from(*black)),
        ]),
        Verdict::ValidityViolation { proposed, decided } => obj(&[
            ("type", Value::from("validity_violation")),
            ("proposed", Value::from(*proposed)),
            ("decided", Value::from(*decided)),
        ]),
        Verdict::Undecided => obj(&[("type", Value::from("undecided"))]),
    }
}

fn net_verdict(verdict: &NetVerdict) -> Value {
    match verdict {
        NetVerdict::Consensus(value) => obj(&[
            ("type", Value::from("consensus")),
            ("value", Value::from(*value)),
        ]),
        NetVerdict::Disagreement { values } => obj(&[
            ("type", Value::from("disagreement")),
            (
                "values",
                Value::from(vec![Value::from(values.0), Value::from(values.1)]),
            ),
        ]),
        NetVerdict::ValidityViolation { proposed, decided } => obj(&[
            ("type", Value::from("validity_violation")),
            ("proposed", Value::from(*proposed)),
            ("decided", Value::from(*decided)),
        ]),
        NetVerdict::Undecided { undecided } => obj(&[
            ("type", Value::from("undecided")),
            ("undecided", Value::from(*undecided as u64)),
        ]),
    }
}

fn simulate_flooding(params: &Value) -> Result<Value, RpcError> {
    let desc = params
        .get("graph")
        .and_then(Value::as_str)
        .ok_or_else(|| RpcError::bad_params("missing \"graph\" description string"))?;
    let graph = generators::parse(desc).map_err(RpcError::bad_params)?;
    let n = graph.vertex_count();
    let inputs: Vec<u64> = match params.get("inputs").and_then(Value::as_array) {
        Some(list) => list
            .iter()
            .map(|v| v.as_u64().ok_or("inputs must be unsigned integers"))
            .collect::<Result<Vec<u64>, _>>()
            .map_err(RpcError::bad_params)?,
        None => (0..n).map(|i| (i % 2) as u64).collect(),
    };
    if inputs.len() != n {
        return Err(RpcError::bad_params(format!(
            "need one input per node: got {}, graph has {n}",
            inputs.len()
        )));
    }
    let rule = match params.get("rule").and_then(Value::as_str) {
        None | Some("min_id") => DecisionRule::ValueOfMinId,
        Some("min_value") => DecisionRule::MinValue,
        Some(other) => {
            return Err(RpcError::bad_params(format!(
                "unknown rule {other:?} (min_id or min_value)"
            )))
        }
    };
    let script = parse_drop_script(params, &graph)?;
    let max_rounds = parse_max_rounds(params, n.max(2))?;

    let nodes = FloodConsensus::fleet(&graph, &inputs, rule);
    let mut adversary = ScriptedAdversary::once(script);
    let mut recorder = MemoryRecorder::new();
    let outcome =
        run_network_with_recorder(&graph, nodes, &mut adversary, max_rounds, &mut recorder);

    let decisions = outcome
        .decisions
        .iter()
        .map(|d| d.map(Value::from).unwrap_or(Value::Null))
        .collect::<Vec<Value>>();
    let stats = &outcome.stats;
    let mut pairs = vec![
        ("verdict", net_verdict(&outcome.verdict)),
        ("decisions", Value::from(decisions)),
        ("rounds", Value::from(stats.rounds as u64)),
        ("messages_sent", Value::from(stats.messages_sent as u64)),
        (
            "messages_delivered",
            Value::from(stats.messages_delivered as u64),
        ),
        (
            "messages_dropped",
            Value::from(stats.messages_dropped as u64),
        ),
        (
            "max_drops_per_round",
            Value::from(stats.max_drops_per_round as u64),
        ),
    ];
    if want_trace(params) {
        let (trace, truncated) = trace_value(&recorder);
        pairs.push(("trace", trace));
        pairs.push(("trace_truncated", Value::from(truncated)));
    }
    Ok(obj(&pairs))
}

/// Parses `drops`: an array of rounds, each an array of `[from, to]`
/// pairs or `{"from": .., "to": ..}` objects.
fn parse_drop_script(params: &Value, graph: &Graph) -> Result<Vec<Vec<DirectedEdge>>, RpcError> {
    let rounds = match params.get("drops").and_then(Value::as_array) {
        Some(rounds) => rounds,
        None => return Ok(Vec::new()),
    };
    let n = graph.vertex_count();
    let mut script = Vec::with_capacity(rounds.len());
    for round in rounds {
        let entries = round
            .as_array()
            .ok_or_else(|| RpcError::bad_params("each drops entry must be an array of edges"))?;
        let mut edges = Vec::with_capacity(entries.len());
        for entry in entries {
            let (from, to) = parse_edge(entry)?;
            if from >= n || to >= n {
                return Err(RpcError::bad_params(format!(
                    "drop edge {from}->{to} out of range for {n} nodes"
                )));
            }
            edges.push(DirectedEdge { from, to });
        }
        script.push(edges);
    }
    Ok(script)
}

fn parse_edge(entry: &Value) -> Result<(usize, usize), RpcError> {
    if let Some([from, to]) = entry.as_array() {
        if let (Some(from), Some(to)) = (from.as_u64(), to.as_u64()) {
            return Ok((from as usize, to as usize));
        }
    }
    if let (Some(from), Some(to)) = (
        entry.get("from").and_then(Value::as_u64),
        entry.get("to").and_then(Value::as_u64),
    ) {
        return Ok((from as usize, to as usize));
    }
    Err(RpcError::bad_params(
        "edges must be [from, to] pairs or {\"from\", \"to\"} objects",
    ))
}

/// `stats`: daemon uptime, pool size, queued depth, gossip peer health,
/// a full metrics snapshot (including the `svc.cache_*` counters), and
/// per-method latency quantiles.
fn stats(state: &ServerState) -> Value {
    obj(&[
        ("uptime_ms", Value::from(state.uptime_ms())),
        ("workers", Value::from(state.workers() as u64)),
        ("draining", Value::from(state.draining())),
        ("queued", Value::from(queued_depth(state))),
        ("cache_entries", Value::from(state.cache().entries() as u64)),
        ("peers", state.peers_json()),
        ("latency", latency_summary(state)),
        ("metrics", state.registry().snapshot()),
    ])
}

/// `dump_trace`: snapshot the flight ring into well-formed
/// `minobs/trace/v1` JSONL. The dump is inlined in the response (one
/// string, headed by a `flight_dump` meta line), so `svc dump` needs no
/// filesystem access on the daemon's side.
fn dump_trace(state: &ServerState) -> Value {
    let snapshot = state.flight().dump("rpc");
    obj(&[
        ("node_id", Value::from(state.node_id())),
        ("events", Value::from(snapshot.events)),
        ("dropped", Value::from(snapshot.dropped)),
        ("truncated_spans", Value::from(snapshot.truncated)),
        ("jsonl", Value::from(snapshot.jsonl)),
    ])
}

/// `health`: the liveness/readiness probe plus SLO burn counters.
/// Evaluating publishes the `svc.ready` gauge and, on any verdict
/// change, an edge-triggered `health` trace event — so polling this
/// method is what keeps the health plane current.
fn health(state: &ServerState) -> Value {
    let report = state.evaluate_health();
    let requests = state.registry().counter("svc.requests").get();
    obj(&[
        ("status", Value::from(report.status)),
        ("ready", Value::from(report.ready)),
        ("live", Value::from(report.live)),
        ("node_id", Value::from(state.node_id())),
        (
            "checks",
            obj(&[
                (
                    "wal",
                    Value::from(if report.wal_degraded { "degraded" } else { "ok" }),
                ),
                (
                    "peers",
                    obj(&[
                        ("alive", Value::from(report.peers_alive as u64)),
                        ("down", Value::from(report.peers_down as u64)),
                    ]),
                ),
                (
                    "queue",
                    obj(&[
                        ("depth", Value::from(report.queued)),
                        ("cap", Value::from(state.max_connections() as u64)),
                    ]),
                ),
            ]),
        ),
        (
            "slo",
            obj(&[
                ("p99_target_ms", Value::from(state.slo_p99_ms())),
                ("violations", Value::from(state.slo_violations())),
                ("requests", Value::from(requests)),
            ]),
        ),
    ])
}

/// Requests accepted but not yet answered (including the `stats` call
/// computing it, so an idle daemon reports 1 while answering). Derived
/// from the existing accepted/answered counters and published as the
/// `svc.queued` gauge so the backlog is visible in every snapshot.
fn queued_depth(state: &ServerState) -> u64 {
    let registry = state.registry();
    let accepted = registry.counter("svc.requests").get();
    let answered =
        registry.counter("svc.responses_ok").get() + registry.counter("svc.responses_err").get();
    let queued = accepted.saturating_sub(answered);
    registry.gauge("svc.queued").set(queued);
    queued
}

/// Per-method latency quantiles from the `svc.method.*.latency_ns`
/// histograms: `{method: {count, p50_ns, p95_ns, p99_ns}}` for every
/// method observed at least once.
fn latency_summary(state: &ServerState) -> Value {
    let mut methods = Map::new();
    for (name, histogram) in state.registry().histograms() {
        let method = match name
            .strip_prefix("svc.method.")
            .and_then(|rest| rest.strip_suffix(".latency_ns"))
        {
            Some(method) => method,
            None => continue,
        };
        let quantile = |q: f64| {
            histogram
                .quantile(q)
                .map(|v| Value::from(v.round() as u64))
                .unwrap_or(Value::Null)
        };
        let count = histogram.count();
        if count == 0 {
            continue;
        }
        let mut entry = vec![
            ("count", Value::from(count)),
            ("p50_ns", quantile(0.50)),
            ("p95_ns", quantile(0.95)),
            ("p99_ns", quantile(0.99)),
        ];
        // The most recent kept trace that landed in the slowest occupied
        // bucket: the jump-off point from a quantile to a concrete trace.
        if let Some((trace_id, _)) = histogram.slowest_exemplar() {
            entry.push(("exemplar_trace_id", Value::from(format!("{trace_id:032x}"))));
        }
        methods.insert(method.to_string(), obj(&entry));
    }
    Value::Object(methods)
}
