//! The daemon: a TCP acceptor feeding a crossbeam-channel worker pool.
//!
//! Each accepted connection gets its own thread that reassembles frames
//! (`wire::try_parse_frame`) from a pending buffer and hands decoded
//! requests to the pool; the connection thread blocks on the reply so
//! responses on one connection preserve request order. Workers run method
//! handlers under `catch_unwind`, so a panicking handler costs one error
//! response, never a wedged worker.
//!
//! Shutdown is graceful by construction: `begin_shutdown` flips a flag,
//! the acceptor stops taking connections, and every request already
//! *accepted* (decoded off the socket and queued) is still answered —
//! connection threads only hang up after writing the pending reply.
//! A connection holding half a frame when the drain starts gets a short
//! grace period to finish it before the socket closes.

use crate::cache::VerdictCache;
use crate::gossip::{self, GossipConfig};
use crate::methods::{self, RpcError};
use crate::wal::{CompactionPolicy, Wal, WalRecord};
use crate::wire::{self, Request};
use crossbeam::channel::{self, Receiver, Sender};
use minobs_cluster::{LinkPolicy, PeerTable};
use minobs_obs::{
    replay_event, sample_keep, stamp_root_span, Counter, FlightRecorder, Gauge, Histogram,
    JsonlSink, MemoryRecorder, MetricsRecorder, MetricsRegistry, Recorder, SpanGuard, SpanIds,
    TraceContext, TraceEvent,
};
use serde_json::Value;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long the acceptor sleeps between polls of the nonblocking socket.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Read timeout on connection sockets; bounds drain-flag latency.
const READ_POLL: Duration = Duration::from_millis(50);
/// How long a draining connection may take to finish a half-read frame.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// How often the acceptor runs WAL maintenance (flush + compaction
/// check) — keeps appends off the request critical path while bounding
/// the crash-loss window.
const WAL_MAINTENANCE: Duration = Duration::from_secs(1);

/// Server-side caps applied to every request's budget.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Hard cap on checker states per request.
    pub max_states: usize,
    /// Hard cap on checker wall-clock per request, in milliseconds.
    pub max_millis: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 5_000_000,
            max_millis: 10_000,
        }
    }
}

/// Daemon configuration; `from_env` reads the `MINOBS_SVC_*` variables.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker-pool size.
    pub workers: usize,
    /// Cap on concurrent connection threads; connections past it are
    /// answered with a `busy` error and closed, so a peer opening
    /// sockets in a loop cannot drive unbounded thread creation.
    pub max_connections: usize,
    /// Per-request budget caps.
    pub limits: Limits,
    /// Where to write the `svc_*` event trace, if anywhere.
    pub trace_path: Option<PathBuf>,
    /// Where to persist verdicts (`minobs/wal/v1`); unset runs
    /// memory-only. See `docs/PERSISTENCE.md`.
    pub wal_path: Option<PathBuf>,
    /// Cluster peers to gossip verdicts with (`host:port`); empty runs
    /// single-node. See `docs/CLUSTER.md`.
    pub peers: Vec<String>,
    /// Time between anti-entropy rounds; each round exchanges digests
    /// with one peer, round-robin.
    pub gossip_interval: Duration,
    /// Per-link fault injection for gossip rounds; production daemons
    /// leave this unset (always deliver). Chaos harnesses install a
    /// seeded policy here.
    pub link_policy: Option<LinkPolicy>,
    /// Stable node identity stamped on trace lines and reported by
    /// `health`; defaults to the bound `host:port` (after the
    /// `MINOBS_NODE_ID` environment variable).
    pub node_id: Option<String>,
    /// The p99 latency target the SLO burn counter
    /// (`svc.slo_p99_violations`) measures against, in milliseconds.
    pub slo_p99_ms: u64,
    /// Flight-recorder ring capacity in events. The ring is always on;
    /// this only bounds how much history a dump can recover.
    pub flight_events: usize,
    /// Where automatic flight dumps land on panic, WAL degradation,
    /// `peer_down`, and degrading health edges; unset disables auto-dumps
    /// (the `dump_trace` RPC still works).
    pub flight_dir: Option<PathBuf>,
    /// Tail-sampling keep probability for unremarkable request traces in
    /// `[0, 1]`; `1.0` (the default) keeps every trace, preserving
    /// pre-sampling behaviour byte for byte.
    pub trace_sample: f64,
    /// Root requests at or above this many milliseconds are always kept
    /// regardless of `trace_sample`; `None` falls back to `slo_p99_ms`.
    pub trace_slow_ms: Option<u64>,
}

impl Default for SvcConfig {
    fn default() -> SvcConfig {
        SvcConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: default_workers(),
            max_connections: 256,
            limits: Limits::default(),
            trace_path: None,
            wal_path: None,
            peers: Vec::new(),
            gossip_interval: Duration::from_millis(500),
            link_policy: None,
            node_id: None,
            slo_p99_ms: 50,
            flight_events: minobs_obs::DEFAULT_FLIGHT_EVENTS,
            flight_dir: None,
            trace_sample: 1.0,
            trace_slow_ms: None,
        }
    }
}

fn default_workers() -> usize {
    thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(2)
        .clamp(2, 16)
}

impl SvcConfig {
    /// Configuration from `MINOBS_SVC_ADDR` (default `127.0.0.1:0`),
    /// `MINOBS_SVC_WORKERS` (default: available parallelism, clamped to
    /// `[2, 16]`), `MINOBS_SVC_MAX_CONNS` (default 256, clamped to
    /// `[1, 4096]`), `MINOBS_SVC_TRACE` (a JSONL path; unset = no
    /// trace), `MINOBS_SVC_WAL` (a verdict-log path; unset = no
    /// persistence), `MINOBS_SVC_PEERS` (comma-separated `host:port`
    /// cluster peers; unset = single-node), `MINOBS_SVC_GOSSIP_MS`
    /// (anti-entropy interval, default 500, clamped to `[10, 60000]`),
    /// `MINOBS_NODE_ID` (stable node identity; default: the bound
    /// `host:port`), `MINOBS_SVC_SLO_P99_MS` (SLO p99 target,
    /// default 50, clamped to `[1, 60000]`), `MINOBS_FLIGHT_EVENTS`
    /// (flight-ring capacity, default 65536, clamped to `[64, 1048576]`),
    /// `MINOBS_FLIGHT_DIR` (auto-dump directory; unset = no auto-dumps),
    /// `MINOBS_TRACE_SAMPLE` (tail-sampling keep probability, default
    /// 1.0, clamped to `[0, 1]`), and `MINOBS_TRACE_SLOW_MS`
    /// (always-keep latency threshold; default: the SLO p99 target; `0`
    /// keeps every timed request).
    pub fn from_env() -> SvcConfig {
        let mut config = SvcConfig::default();
        if let Ok(addr) = std::env::var("MINOBS_SVC_ADDR") {
            if !addr.trim().is_empty() {
                config.addr = addr.trim().to_string();
            }
        }
        if let Ok(workers) = std::env::var("MINOBS_SVC_WORKERS") {
            if let Ok(n) = workers.trim().parse::<usize>() {
                config.workers = n.clamp(1, 256);
            }
        }
        if let Ok(conns) = std::env::var("MINOBS_SVC_MAX_CONNS") {
            if let Ok(n) = conns.trim().parse::<usize>() {
                config.max_connections = n.clamp(1, 4096);
            }
        }
        if let Ok(path) = std::env::var("MINOBS_SVC_TRACE") {
            if !path.trim().is_empty() {
                config.trace_path = Some(PathBuf::from(path.trim()));
            }
        }
        if let Ok(path) = std::env::var("MINOBS_SVC_WAL") {
            if !path.trim().is_empty() {
                config.wal_path = Some(PathBuf::from(path.trim()));
            }
        }
        if let Ok(peers) = std::env::var("MINOBS_SVC_PEERS") {
            config.peers = peers
                .split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect();
        }
        if let Ok(interval) = std::env::var("MINOBS_SVC_GOSSIP_MS") {
            if let Ok(ms) = interval.trim().parse::<u64>() {
                config.gossip_interval = Duration::from_millis(ms.clamp(10, 60_000));
            }
        }
        if let Ok(node_id) = std::env::var("MINOBS_NODE_ID") {
            if !node_id.trim().is_empty() {
                config.node_id = Some(node_id.trim().to_string());
            }
        }
        if let Ok(target) = std::env::var("MINOBS_SVC_SLO_P99_MS") {
            if let Ok(ms) = target.trim().parse::<u64>() {
                config.slo_p99_ms = ms.clamp(1, 60_000);
            }
        }
        if let Ok(events) = std::env::var("MINOBS_FLIGHT_EVENTS") {
            if let Ok(n) = events.trim().parse::<usize>() {
                config.flight_events = n.clamp(64, 1_048_576);
            }
        }
        if let Ok(dir) = std::env::var("MINOBS_FLIGHT_DIR") {
            if !dir.trim().is_empty() {
                config.flight_dir = Some(PathBuf::from(dir.trim()));
            }
        }
        if let Ok(sample) = std::env::var("MINOBS_TRACE_SAMPLE") {
            if let Ok(p) = sample.trim().parse::<f64>() {
                if p.is_finite() {
                    config.trace_sample = p.clamp(0.0, 1.0);
                }
            }
        }
        if let Ok(slow) = std::env::var("MINOBS_TRACE_SLOW_MS") {
            if let Ok(ms) = slow.trim().parse::<u64>() {
                config.trace_slow_ms = Some(ms);
            }
        }
        config
    }
}

enum TraceSink {
    None,
    File(JsonlSink<BufWriter<File>>),
}

/// A point-in-time health verdict; see [`ServerState::evaluate_health`].
#[derive(Debug, Clone, Copy)]
pub struct HealthReport {
    /// `"ok"` or `"degraded"`.
    pub status: &'static str,
    /// True while the node should receive traffic.
    pub ready: bool,
    /// True whenever the daemon can evaluate health at all.
    pub live: bool,
    /// Requests accepted but not yet answered.
    pub queued: u64,
    /// Peers currently reachable (0 of 0 in single-node mode).
    pub peers_alive: usize,
    /// Peers past the consecutive-failure threshold.
    pub peers_down: usize,
    /// True once the WAL has latched memory-only mode.
    pub wal_degraded: bool,
}

/// State shared by the acceptor, connection threads, and workers.
pub struct ServerState {
    shutting_down: AtomicBool,
    seq: AtomicU64,
    registry: Arc<MetricsRegistry>,
    cache: VerdictCache,
    limits: Limits,
    workers: usize,
    started: Instant,
    metrics: Mutex<MetricsRecorder>,
    trace: Mutex<TraceSink>,
    /// The verdict log. `None` when persistence is off or after the
    /// first write failure — degradation is latched by `take()`ing the
    /// [`Wal`], so a disk that failed once is never written again.
    wal: Mutex<Option<Wal>>,
    /// What startup replay found; `None` when persistence is off.
    replay: Option<crate::wal::ReplayReport>,
    /// Gossip health per configured peer; empty in single-node mode.
    peers: Mutex<PeerTable>,
    /// Stable node identity: config override, else `MINOBS_NODE_ID`,
    /// else the bound `host:port`. Stamped on every trace line.
    node_id: String,
    /// The acceptor's connection cap, kept for the health queue check.
    max_connections: usize,
    /// SLO p99 target in nanoseconds; responses slower than this burn
    /// `svc.slo_p99_violations`.
    slo_target_ns: u64,
    slo_violations: Arc<Counter>,
    ready_gauge: Arc<Gauge>,
    /// Last emitted health verdict, packed as `ready | (status_ok << 1)`;
    /// `u64::MAX` until the first evaluation, so the first flip always
    /// emits a `health` trace event (edge-triggered).
    health_state: AtomicU64,
    /// The trace context of the most recent cache-filling request, held
    /// for the next gossip exchange so replication of that verdict is
    /// attributable to the request that produced it.
    gossip_ctx: Mutex<Option<TraceContext>>,
    /// The always-on flight ring: a bounded copy of everything the trace
    /// plane sees (sampled or not), snapshotted by `dump_trace` and the
    /// auto-dump triggers.
    flight: FlightRecorder,
    /// Where auto-dumps land; `None` disables them.
    flight_dir: Option<PathBuf>,
    /// Monotone auto-dump counter, naming dump files stably.
    flight_dumps: AtomicU64,
    /// Tail-sampling keep probability for unremarkable request traces.
    trace_sample: f64,
    /// Requests at or above this many nanoseconds are always kept.
    slow_ns: u64,
}

impl ServerState {
    fn new(config: &SvcConfig, local_addr: SocketAddr) -> io::Result<ServerState> {
        let registry = Arc::new(MetricsRegistry::new());
        let cache = VerdictCache::new(&registry);
        let node_id = config
            .node_id
            .clone()
            .unwrap_or_else(|| minobs_obs::node_id_from_env(&local_addr.to_string()));
        let sample = config.trace_sample.clamp(0.0, 1.0);
        let slow_ms = config.trace_slow_ms.unwrap_or(config.slo_p99_ms);
        let sampled = sample < 1.0;
        let flight = FlightRecorder::with_meta(config.flight_events, Some(node_id.clone()), sampled);
        let trace = match &config.trace_path {
            Some(path) => {
                let mut sink = JsonlSink::create(path)?;
                sink.set_node_id(&node_id);
                if sampled {
                    // Mark the stream as tail-sampled so downstream tools
                    // (`trace profile`'s coverage check) read missing span
                    // blocks as dropped-by-policy, not instrumentation gaps.
                    sink.record(TraceEvent::TraceSampled { sample, slow_ms });
                }
                TraceSink::File(sink)
            }
            None => TraceSink::None,
        };
        let state = ServerState {
            shutting_down: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            metrics: Mutex::new(MetricsRecorder::new(Arc::clone(&registry))),
            cache,
            limits: config.limits,
            workers: config.workers,
            started: Instant::now(),
            trace: Mutex::new(trace),
            wal: Mutex::new(None),
            replay: None,
            peers: Mutex::new(PeerTable::new(&config.peers)),
            node_id,
            max_connections: config.max_connections.max(1),
            slo_target_ns: config.slo_p99_ms.max(1).saturating_mul(1_000_000),
            slo_violations: registry.counter("svc.slo_p99_violations"),
            ready_gauge: registry.gauge("svc.ready"),
            health_state: AtomicU64::new(u64::MAX),
            gossip_ctx: Mutex::new(None),
            flight,
            flight_dir: config.flight_dir.clone(),
            flight_dumps: AtomicU64::new(0),
            trace_sample: sample,
            slow_ns: slow_ms.saturating_mul(1_000_000),
            registry,
        };
        state.open_wal(config)
    }

    /// Replays and attaches the configured WAL. A log that cannot be
    /// opened degrades the daemon to memory-only instead of refusing to
    /// start: availability first, persistence best-effort.
    fn open_wal(mut self, config: &SvcConfig) -> io::Result<ServerState> {
        let Some(path) = &config.wal_path else {
            return Ok(self);
        };
        match Wal::open(path, &self.cache, CompactionPolicy::default()) {
            Ok((wal, report)) => {
                lock(&self.metrics).on_wal_replay(report.records, report.bytes, report.dropped_tail);
                if let TraceSink::File(sink) = &mut *lock(&self.trace) {
                    sink.on_wal_replay(report.records, report.bytes, report.dropped_tail);
                }
                // Clones share the ring; a throwaway clone borrows the
                // `&mut self` Recorder hooks from a `&self` call site.
                self.flight
                    .clone()
                    .on_wal_replay(report.records, report.bytes, report.dropped_tail);
                *lock(&self.wal) = Some(wal);
                self.replay = Some(report);
            }
            Err(e) => self.degrade_wal(&e),
        }
        Ok(self)
    }

    /// Latches memory-only mode: drops the log handle, flips the
    /// `svc.wal_degraded` gauge, emits a `wal_degraded` trace event, and
    /// auto-dumps the flight ring — the history leading up to a disk
    /// failure is exactly what post-hoc debugging wants.
    fn degrade_wal(&self, error: &io::Error) {
        lock(&self.wal).take();
        let message = error.to_string();
        lock(&self.metrics).on_wal_degraded(&message);
        if let TraceSink::File(sink) = &mut *lock(&self.trace) {
            sink.on_wal_degraded(&message);
        }
        self.flight.clone().on_wal_degraded(&message);
        self.auto_dump("wal_degraded");
    }

    fn append_wal(&self, record: &WalRecord) {
        let result = match lock(&self.wal).as_mut() {
            Some(wal) => wal.append(record),
            None => return,
        };
        match result {
            Ok(bytes) => {
                let (op, key) = (record.op(), record.key());
                lock(&self.metrics).on_wal_append(op, key, bytes);
                if let TraceSink::File(sink) = &mut *lock(&self.trace) {
                    sink.on_wal_append(op, key, bytes);
                }
                self.flight.clone().on_wal_append(op, key, bytes);
            }
            Err(e) => self.degrade_wal(&e),
        }
    }

    /// Records a definite horizon verdict in the cache *and* the WAL.
    /// Method handlers call this instead of touching the cache directly,
    /// so every fresh verdict survives a restart.
    pub fn record_horizon(&self, key: &str, k: usize, solvable: bool) {
        self.cache.record_horizon(key, k, solvable);
        self.append_wal(&WalRecord::Horizon {
            key: key.to_string(),
            k,
            solvable,
        });
    }

    /// Memoises a Theorem III.8 result in the cache *and* the WAL.
    pub fn record_theorem(&self, key: &str, result: Value) {
        self.cache.record_theorem(key, result.clone());
        self.append_wal(&WalRecord::Theorem {
            key: key.to_string(),
            result,
        });
    }

    /// What startup replay found, when persistence is configured.
    pub fn wal_replay_report(&self) -> Option<crate::wal::ReplayReport> {
        self.replay
    }

    /// True while the verdict log is attached and healthy.
    pub fn wal_active(&self) -> bool {
        lock(&self.wal).is_some()
    }

    /// Periodic background WAL work, run from the acceptor thread (off
    /// the request path): push buffered appends to the OS and rewrite
    /// the log when dead deltas dominate. Any failure degrades.
    fn wal_maintenance(&self) {
        let mut guard = lock(&self.wal);
        let Some(wal) = guard.as_mut() else { return };
        let result = wal.flush().and_then(|()| wal.maybe_compact(&self.cache));
        if let Err(e) = result {
            drop(guard);
            self.degrade_wal(&e);
        }
    }

    /// True once a drain has started.
    pub fn draining(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Starts the drain: stop accepting, answer what was taken, exit.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// The verdict cache.
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// The metrics registry backing `stats` and the cache counters.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Per-request budget caps.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// This node's stable identity (trace `node_id`, `health.node_id`).
    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    /// The SLO p99 target, in milliseconds.
    pub fn slo_p99_ms(&self) -> u64 {
        self.slo_target_ns / 1_000_000
    }

    /// Timed responses that exceeded the SLO p99 target so far.
    pub fn slo_violations(&self) -> u64 {
        self.slo_violations.get()
    }

    /// The acceptor's connection cap (the health plane's queue bound).
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// Takes the trace context stashed by the last cache-filling
    /// request, if any, for the next gossip exchange to parent under.
    pub(crate) fn take_gossip_ctx(&self) -> Option<TraceContext> {
        lock(&self.gossip_ctx).take()
    }

    /// Stashes `ctx` for the next gossip exchange. Last writer wins;
    /// gossip attribution is best-effort, not a queue.
    pub(crate) fn stash_gossip_ctx(&self, ctx: TraceContext) {
        *lock(&self.gossip_ctx) = Some(ctx);
    }

    fn on_request(&self, seq: u64, method: &str) {
        lock(&self.metrics).on_svc_request(seq, method);
        if let TraceSink::File(sink) = &mut *lock(&self.trace) {
            sink.on_svc_request(seq, method);
        }
        self.flight.clone().on_svc_request(seq, method);
    }

    /// The tail-sampling verdict for one finished request. Errors,
    /// budget-exhausted outcomes, requests at or above the slow
    /// threshold, and anything served while the WAL is degraded are
    /// always kept; the rest keep with probability `trace_sample`,
    /// decided by [`sample_keep`] on the trace id so every node in a
    /// fleet keeps or drops the same distributed trace.
    pub(crate) fn keep_trace(
        &self,
        seq: u64,
        ok: bool,
        nanos: u64,
        budget_exhausted: bool,
        trace_id: Option<u128>,
    ) -> bool {
        if self.trace_sample >= 1.0 {
            return true;
        }
        if !ok || budget_exhausted || nanos >= self.slow_ns {
            return true;
        }
        if self.registry.gauge("svc.wal_degraded").get() != 0 {
            return true;
        }
        // Context-free requests sample on the local seq: still
        // deterministic, just not fleet-correlated (nothing to stitch).
        sample_keep(trace_id.unwrap_or(u128::from(seq)), self.trace_sample)
    }

    /// Folds one finished request into the metrics, the trace, and the
    /// flight ring. The request's buffered span events are flushed *as a
    /// block* right before its `svc_response`, under the same lock
    /// acquisition, so the shared trace stream interleaves whole requests
    /// — each block is self-balanced and `trace_lint`'s span bracketing
    /// holds per stream. When `keep` is false (tail sampling dropped the
    /// trace) the span block is withheld from the trace file only: metrics
    /// still fold every span, the `svc_request`/`svc_response` pair is
    /// still written (lint pairing), and the flight ring still records
    /// everything.
    fn on_response(&self, finished: FinishedRequest<'_>) {
        let FinishedRequest {
            seq,
            method,
            ok,
            cache,
            nanos,
            spans,
            keep,
        } = finished;
        if nanos > self.slo_target_ns {
            self.slo_violations.add(1);
        }
        {
            let mut metrics = lock(&self.metrics);
            for event in spans {
                replay_event(&mut *metrics, event);
            }
            metrics.on_svc_response(seq, method, ok, cache, nanos);
        }
        if keep && nanos > 0 {
            if let Some(trace_id) = block_trace_id(spans) {
                let bounds = Histogram::latency_bounds();
                self.registry
                    .histogram("svc.request_latency_ns", &bounds)
                    .record_exemplar(nanos, trace_id);
                self.registry
                    .histogram(&format!("svc.method.{method}.latency_ns"), &bounds)
                    .record_exemplar(nanos, trace_id);
            }
        }
        if let TraceSink::File(sink) = &mut *lock(&self.trace) {
            if keep {
                for event in spans {
                    sink.record(event.clone());
                }
            }
            sink.on_svc_response(seq, method, ok, cache, nanos);
        }
        self.flight.push_block(spans);
        self.flight.clone().on_svc_response(seq, method, ok, cache, nanos);
    }

    /// The always-on flight ring; `dump_trace` snapshots it.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The configured tail-sampling keep probability.
    pub fn trace_sample(&self) -> f64 {
        self.trace_sample
    }

    /// Auto-dumps taken so far (panic, WAL degradation, `peer_down`,
    /// degrading health edges).
    pub fn flight_dumps(&self) -> u64 {
        self.flight_dumps.load(Ordering::SeqCst)
    }

    /// Writes a flight-ring snapshot into `flight_dir`, named by the
    /// monotone dump counter plus the trigger reason. Disabled dir or a
    /// failed write costs only the dump — incident evidence is
    /// best-effort and must never take the serving path down with it.
    fn auto_dump(&self, reason: &str) {
        let Some(dir) = &self.flight_dir else { return };
        let snapshot = self.flight.dump(reason);
        let n = self.flight_dumps.fetch_add(1, Ordering::SeqCst);
        let path = dir.join(format!("flight-{n:03}-{reason}.trace.jsonl"));
        let written = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, snapshot.jsonl.as_bytes()));
        if written.is_ok() {
            self.registry.counter("svc.flight_dumps").add(1);
        }
    }

    fn flush_trace(&self) {
        if let TraceSink::File(sink) = &mut *lock(&self.trace) {
            let _ = sink.flush();
        }
    }

    /// The `peers` section of `stats`: summary counters plus one row per
    /// configured peer; `count: 0` with an empty table in single-node mode.
    pub fn peers_json(&self) -> Value {
        lock(&self.peers).to_json()
    }

    /// Evaluates the health plane and publishes it.
    ///
    /// * `live` — true whenever the daemon can run the evaluation;
    /// * `ready` — the node should receive traffic: not draining, the
    ///   backlog is below the connection cap, and (with peers
    ///   configured) at least one peer is reachable;
    /// * `status` — `"ok"` when ready with a healthy WAL and every peer
    ///   alive, `"degraded"` otherwise.
    ///
    /// Sets the `svc.ready` gauge on every call and emits one
    /// edge-triggered `health` trace event whenever the packed verdict
    /// changes (including the first evaluation).
    pub fn evaluate_health(&self) -> HealthReport {
        let accepted = self.registry.counter("svc.requests").get();
        let answered = self.registry.counter("svc.responses_ok").get()
            + self.registry.counter("svc.responses_err").get();
        let queued = accepted.saturating_sub(answered);
        let (peer_count, peers_alive) = {
            let peers = lock(&self.peers);
            (peers.len(), peers.alive())
        };
        let wal_degraded = self.registry.gauge("svc.wal_degraded").get() != 0;
        let ready = !self.draining()
            && queued < self.max_connections as u64
            && (peer_count == 0 || peers_alive > 0);
        let status_ok = ready && !wal_degraded && peers_alive == peer_count;
        let status = if status_ok { "ok" } else { "degraded" };
        self.ready_gauge.set(ready as u64);
        let packed = ready as u64 | ((status_ok as u64) << 1);
        if self.health_state.swap(packed, Ordering::SeqCst) != packed {
            lock(&self.metrics).on_health(status, ready, true);
            if let TraceSink::File(sink) = &mut *lock(&self.trace) {
                sink.on_health(status, ready, true);
            }
            self.flight.clone().on_health(status, ready, true);
            if !status_ok {
                // Dump on the *degrading* edge only: the ring holds the
                // lead-up to the burn, and edge-triggering means a long
                // outage costs one dump, not one per probe.
                self.auto_dump("health_degraded");
            }
        }
        HealthReport {
            status,
            ready,
            live: true,
            queued,
            peers_alive,
            peers_down: peer_count - peers_alive,
            wal_degraded,
        }
    }

    /// Folds one completed gossip exchange into the peer table, the
    /// metrics, and the trace. `spans` carries the exchange's buffered
    /// `gossip.exchange` span block (possibly ctx-stamped), flushed next
    /// to its `gossip_round` under the same lock acquisitions so the
    /// shared stream stays whole-block interleaved.
    pub(crate) fn gossip_success(
        &self,
        peer: &str,
        sent: u64,
        received: u64,
        lag: u64,
        nanos: u64,
        spans: &[TraceEvent],
    ) {
        lock(&self.peers).record_success(peer, sent, received, lag);
        {
            let mut metrics = lock(&self.metrics);
            for event in spans {
                replay_event(&mut *metrics, event);
            }
            metrics.on_gossip_round(peer, sent, received, nanos);
        }
        if let TraceSink::File(sink) = &mut *lock(&self.trace) {
            // Gossip exchanges are never sampled out: one per interval is
            // cheap, and replication evidence is the first thing a
            // cross-node incident reconstruction reaches for.
            for event in spans {
                sink.record(event.clone());
            }
            sink.on_gossip_round(peer, sent, received, nanos);
        }
        self.flight.push_block(spans);
        self.flight.clone().on_gossip_round(peer, sent, received, nanos);
    }

    /// Records a failed gossip exchange; emits `peer_down` (once per
    /// outage) on the round that crosses the failure threshold.
    pub(crate) fn gossip_failure(&self, peer: &str) {
        let down_edge = lock(&self.peers).record_failure(peer);
        if let Some(failures) = down_edge {
            lock(&self.metrics).on_peer_down(peer, failures);
            if let TraceSink::File(sink) = &mut *lock(&self.trace) {
                sink.on_peer_down(peer, failures);
            }
            self.flight.clone().on_peer_down(peer, failures);
            self.auto_dump("peer_down");
        }
    }

    /// Records one replicated delta's ingest outcome.
    pub(crate) fn on_gossip_apply(&self, peer: &str, op: &'static str, key: &str, accepted: bool) {
        lock(&self.metrics).on_gossip_apply(peer, op, key, accepted);
        if let TraceSink::File(sink) = &mut *lock(&self.trace) {
            sink.on_gossip_apply(peer, op, key, accepted);
        }
        self.flight.clone().on_gossip_apply(peer, op, key, accepted);
    }
}

/// One finished request as the trace plane folds it: the response row,
/// its buffered span block, and the tail-sampling verdict.
struct FinishedRequest<'a> {
    seq: u64,
    method: &'a str,
    ok: bool,
    cache: &'static str,
    nanos: u64,
    spans: &'a [TraceEvent],
    keep: bool,
}

/// The distributed trace id carried by a request's span block, if any.
fn block_trace_id(spans: &[TraceEvent]) -> Option<u128> {
    spans.iter().find_map(|event| match event {
        TraceEvent::SpanStart { trace_id, .. } => *trace_id,
        _ => None,
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Job {
    seq: u64,
    request: Request,
    reply: Sender<Value>,
}

/// A running daemon; keep it alive for as long as you serve.
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    gossip: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<Sender<Job>>,
}

/// Binds and starts serving; returns once the socket is listening.
pub fn serve(config: SvcConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let state = Arc::new(ServerState::new(&config, local_addr)?);

    let (job_tx, job_rx) = channel::unbounded::<Job>();
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let rx = job_rx.clone();
            let st = Arc::clone(&state);
            thread::spawn(move || worker_loop(&st, &rx))
        })
        .collect();
    drop(job_rx);

    let acceptor = {
        let st = Arc::clone(&state);
        let tx = job_tx.clone();
        let max_connections = config.max_connections.max(1);
        thread::spawn(move || acceptor_loop(&listener, &st, &tx, max_connections))
    };

    let gossip = if config.peers.is_empty() {
        None
    } else {
        let st = Arc::clone(&state);
        let gossip_config = GossipConfig {
            self_addr: local_addr.to_string(),
            peers: config.peers.clone(),
            interval: config.gossip_interval,
            link_policy: config.link_policy.clone(),
        };
        Some(thread::spawn(move || gossip::gossip_loop(&st, &gossip_config)))
    };

    Ok(Server {
        local_addr,
        state,
        acceptor: Some(acceptor),
        gossip,
        workers,
        job_tx: Some(job_tx),
    })
}

impl Server {
    /// The bound address (with the resolved port when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared state, for tests and in-process inspection.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Starts the drain; pair with [`Server::join`].
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Blocks until the drain completes and every thread has exited.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
        // Acceptor (and all connection threads it joined) are gone; no
        // producer remains, so workers drain the queue and exit.
        drop(self.job_tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Drain complete: every answered verdict is in the cache, so one
        // last flush makes the log as warm as the cache was.
        self.state.wal_maintenance();
        self.state.flush_trace();
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    job_tx: &Sender<Job>,
    max_connections: usize,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    let mut last_maintenance = Instant::now();
    while !state.draining() {
        if last_maintenance.elapsed() >= WAL_MAINTENANCE {
            state.wal_maintenance();
            last_maintenance = Instant::now();
        }
        match listener.accept() {
            Ok((stream, _)) => {
                connections.retain(|handle| !handle.is_finished());
                if connections.len() >= max_connections {
                    // At the cap: answer with `busy` and hang up rather
                    // than spawning an unbounded number of threads.
                    let mut writer = &stream;
                    let _ = wire::write_frame(
                        &mut writer,
                        &wire::err_response(0, "busy", "connection limit reached"),
                    );
                    continue;
                }
                let st = Arc::clone(state);
                let tx = job_tx.clone();
                connections.push(thread::spawn(move || serve_connection(stream, &st, &tx)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
        connections.retain(|handle| !handle.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn serve_connection(stream: TcpStream, state: &Arc<ServerState>, job_tx: &Sender<Job>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = &stream;
    let mut writer = &stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut drain_seen: Option<Instant> = None;

    loop {
        // Dispatch every complete frame already buffered.
        loop {
            match wire::try_parse_frame(&pending) {
                Ok(Some((value, consumed))) => {
                    pending.drain(..consumed);
                    if !handle_frame(&mut writer, state, job_tx, &value) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = wire::write_frame(
                        &mut writer,
                        &wire::err_response(0, "bad_frame", &e.to_string()),
                    );
                    return;
                }
            }
        }

        if state.draining() {
            // Answered everything complete; allow a short grace window
            // for a half-received frame, then hang up.
            if pending.is_empty() {
                return;
            }
            match drain_seen {
                None => drain_seen = Some(Instant::now()),
                Some(t) if t.elapsed() > DRAIN_GRACE => return,
                Some(_) => {}
            }
        }

        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Decodes and dispatches one framed value. Returns false when the
/// connection should close (write failure or the queue is gone).
fn handle_frame<W: Write>(
    writer: &mut W,
    state: &Arc<ServerState>,
    job_tx: &Sender<Job>,
    value: &Value,
) -> bool {
    let request = match wire::parse_request(value) {
        Ok(request) => request,
        Err(message) => {
            let id = value.get("id").and_then(Value::as_u64).unwrap_or(0);
            let reply = wire::err_response(id, "bad_request", &message);
            return wire::write_frame(writer, &reply).is_ok();
        }
    };

    let seq = state.next_seq();
    state.on_request(seq, &request.method);
    let id = request.id;
    let (reply_tx, reply_rx) = channel::bounded::<Value>(1);
    if job_tx
        .send(Job {
            seq,
            request,
            reply: reply_tx,
        })
        .is_err()
    {
        // Workers already gone: only possible in late teardown.
        let reply = wire::err_response(id, "shutting_down", "daemon is draining");
        let _ = wire::write_frame(writer, &reply);
        return false;
    }
    match reply_rx.recv() {
        Ok(reply) => wire::write_frame(writer, &reply).is_ok(),
        Err(_) => {
            let reply = wire::err_response(id, "internal", "worker dropped the request");
            let _ = wire::write_frame(writer, &reply);
            false
        }
    }
}

/// A static span name per known method, so request spans carry stable
/// `rpc.*` labels without leaking attacker-chosen method strings into
/// span-name keyed metrics.
fn method_span(method: &str) -> &'static str {
    match method {
        "solvable" => "rpc.solvable",
        "check_horizon" => "rpc.check_horizon",
        "first_horizon" => "rpc.first_horizon",
        "net_solvable" => "rpc.net_solvable",
        "simulate" => "rpc.simulate",
        "stats" => "rpc.stats",
        "metrics" => "rpc.metrics",
        "gossip" => "rpc.gossip",
        "health" => "rpc.health",
        "dump_trace" => "rpc.dump_trace",
        "shutdown" => "rpc.shutdown",
        _ => "rpc.unknown",
    }
}

fn worker_loop(state: &Arc<ServerState>, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let start = Instant::now();
        // Spans are buffered request-locally and flushed with the
        // response; `starting_at(seq << 20)` carves each request a
        // disjoint id block so ids stay unique across the shared stream.
        let mut request_spans = MemoryRecorder::new();
        let mut span_ids = SpanIds::starting_at(job.seq << 20);
        let span = SpanGuard::begin(
            &mut request_spans,
            &mut span_ids,
            0,
            None,
            method_span(&job.request.method),
        );
        let root_span = span.as_ref().map(SpanGuard::id);
        let outcome = catch_unwind(AssertUnwindSafe(|| methods::handle(state, &job.request)));
        if let Some(span) = span {
            span.end(&mut request_spans);
        }
        let (result, disposition) = outcome.unwrap_or_else(|_| {
            // The ring just recorded the request that blew up; snapshot
            // it before the error response papers over the evidence.
            state.auto_dump("panic");
            (
                Err(RpcError::new("internal", "method handler panicked")),
                "none",
            )
        });
        let ok = result.is_ok();
        let nanos = (start.elapsed().as_nanos() as u64).max(1);
        let mut events = request_spans.into_events();
        if let Some(ctx) = &job.request.ctx {
            // Adopt the caller's trace: the request root span joins the
            // caller's trace_id and remembers the remote parent. Local
            // parenting stays `None`, so per-stream span bracketing is
            // untouched — `trace stitch` resolves the cross-node edge.
            stamp_root_span(&mut events, ctx);
            if ok && disposition == "miss" {
                // A fresh verdict will ship on the next gossip round;
                // stash a child context so that exchange is attributable
                // to the request that produced the delta.
                if let Some(root_span) = root_span {
                    state.stash_gossip_ctx(ctx.child(root_span));
                }
            }
        }
        let budget_exhausted = result.as_ref().ok().is_some_and(|value| {
            value.get("budget_exhausted").is_some()
                || value.get("outcome").and_then(Value::as_str) == Some("budget_exhausted")
        });
        let keep = state.keep_trace(
            job.seq,
            ok,
            nanos,
            budget_exhausted,
            job.request.ctx.as_ref().map(|ctx| ctx.trace_id),
        );
        state.on_response(FinishedRequest {
            seq: job.seq,
            method: &job.request.method,
            ok,
            cache: disposition,
            nanos,
            spans: &events,
            keep,
        });
        let reply = match result {
            Ok(value) => wire::ok_response(job.request.id, value),
            Err(e) => wire::err_response(job.request.id, e.code, &e.message),
        };
        let _ = job.reply.send(reply);
    }
}
