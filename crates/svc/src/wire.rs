//! The `minobs/rpc/v1` wire protocol: length-prefixed JSON frames.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON. Requests and responses share one versioned envelope:
//!
//! ```json
//! {"rpc": "minobs/rpc/v1", "id": 7, "method": "check_horizon", "params": {...}}
//! {"rpc": "minobs/rpc/v1", "id": 7, "ok": true, "result": {...}}
//! {"rpc": "minobs/rpc/v1", "id": 7, "ok": false,
//!  "error": {"code": "bad_params", "message": "..."}}
//! ```
//!
//! The `id` is chosen by the client and echoed verbatim; the daemon
//! answers frames on one connection in the order it received them.

use minobs_obs::TraceContext;
use serde_json::{Map, Value};
use std::io::{self, Read, Write};

/// Version tag carried by every request and response envelope.
pub const RPC_VERSION: &str = "minobs/rpc/v1";

/// Hard cap on one frame's JSON body, in bytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (includes truncated frames at EOF).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The body is not valid JSON.
    BadJson(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            FrameError::BadJson(e) => write!(f, "frame body is not JSON: {e}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame and flushes the transport.
pub fn write_frame<W: Write>(w: &mut W, value: &Value) -> io::Result<()> {
    let body = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("refusing to send a {}-byte frame", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame from a blocking transport. Returns `Ok(None)` on a
/// clean EOF at a frame boundary; EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Value>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a frame body",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let text = String::from_utf8(body).map_err(|e| FrameError::BadJson(e.to_string()))?;
    let value = serde_json::from_str(&text).map_err(|e| FrameError::BadJson(format!("{e:?}")))?;
    Ok(Some(value))
}

/// Attempts to split one complete frame off the front of `buf`. Returns
/// the decoded value and the number of bytes consumed, or `None` when the
/// buffer does not yet hold a whole frame.
pub fn try_parse_frame(buf: &[u8]) -> Result<Option<(Value, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let text = std::str::from_utf8(&buf[4..4 + len])
        .map_err(|e| FrameError::BadJson(e.to_string()))?;
    let value = serde_json::from_str(text).map_err(|e| FrameError::BadJson(format!("{e:?}")))?;
    Ok(Some((value, 4 + len)))
}

/// A decoded request envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Method name.
    pub method: String,
    /// Method parameters (an object, or `Null` when omitted).
    pub params: Value,
    /// Distributed trace context, when the caller sent the additive
    /// optional `ctx` envelope field. Malformed contexts read as `None`
    /// rather than failing the request.
    pub ctx: Option<TraceContext>,
}

/// Validates and decodes a request envelope.
pub fn parse_request(value: &Value) -> Result<Request, String> {
    let rpc = value
        .get("rpc")
        .and_then(Value::as_str)
        .ok_or("missing \"rpc\" version field")?;
    if rpc != RPC_VERSION {
        return Err(format!("unsupported rpc version {rpc:?}, expected {RPC_VERSION:?}"));
    }
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or("missing or non-integer \"id\"")?;
    let method = value
        .get("method")
        .and_then(Value::as_str)
        .ok_or("missing \"method\"")?
        .to_string();
    let params = value.get("params").cloned().unwrap_or(Value::Null);
    let ctx = value.get("ctx").and_then(TraceContext::from_json);
    Ok(Request {
        id,
        method,
        params,
        ctx,
    })
}

/// Builds a request envelope.
pub fn request(id: u64, method: &str, params: Value) -> Value {
    let mut map = Map::new();
    map.insert("rpc".to_string(), Value::from(RPC_VERSION));
    map.insert("id".to_string(), Value::from(id));
    map.insert("method".to_string(), Value::from(method));
    map.insert("params".to_string(), params);
    Value::Object(map)
}

/// Builds a request envelope carrying a distributed trace context.
pub fn request_with_ctx(id: u64, method: &str, params: Value, ctx: &TraceContext) -> Value {
    let mut value = request(id, method, params);
    if let Value::Object(map) = &mut value {
        map.insert("ctx".to_string(), ctx.to_json());
    }
    value
}

/// Builds a success response envelope.
pub fn ok_response(id: u64, result: Value) -> Value {
    let mut map = Map::new();
    map.insert("rpc".to_string(), Value::from(RPC_VERSION));
    map.insert("id".to_string(), Value::from(id));
    map.insert("ok".to_string(), Value::from(true));
    map.insert("result".to_string(), result);
    Value::Object(map)
}

/// Builds an error response envelope.
pub fn err_response(id: u64, code: &str, message: &str) -> Value {
    let mut error = Map::new();
    error.insert("code".to_string(), Value::from(code));
    error.insert("message".to_string(), Value::from(message));
    let mut map = Map::new();
    map.insert("rpc".to_string(), Value::from(RPC_VERSION));
    map.insert("id".to_string(), Value::from(id));
    map.insert("ok".to_string(), Value::from(false));
    map.insert("error".to_string(), Value::Object(error));
    Value::Object(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let value = request(3, "stats", Value::Null);
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(serde_json::to_string(&back), serde_json::to_string(&value));
        // Clean EOF after a complete frame.
        let mut two = buf.clone();
        two.extend(&buf);
        let mut cursor = two.as_slice();
        assert!(read_frame(&mut cursor).unwrap().is_some());
        assert!(read_frame(&mut cursor).unwrap().is_some());
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn try_parse_waits_for_a_complete_frame() {
        let value = ok_response(1, Value::from(true));
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        for cut in 0..buf.len() {
            assert!(try_parse_frame(&buf[..cut]).unwrap().is_none(), "cut {cut}");
        }
        let (parsed, consumed) = try_parse_frame(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn truncated_frames_and_oversize_prefixes_error() {
        let value = request(1, "stats", Value::Null);
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        let cut = &buf[..buf.len() - 1];
        assert!(matches!(
            read_frame(&mut &cut[..]),
            Err(FrameError::Io(_))
        ));
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(FrameError::TooLarge(_))
        ));
        assert!(matches!(
            try_parse_frame(&huge),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn request_envelope_validation() {
        let good = request(9, "solvable", Value::Null);
        let parsed = parse_request(&good).unwrap();
        assert_eq!(parsed.id, 9);
        assert_eq!(parsed.method, "solvable");
        assert!(parsed.params.is_null());
        assert_eq!(parsed.ctx, None);

        let mut bad = Map::new();
        bad.insert("rpc".to_string(), Value::from("minobs/rpc/v0"));
        bad.insert("id".to_string(), Value::from(1u64));
        bad.insert("method".to_string(), Value::from("stats"));
        assert!(parse_request(&Value::Object(bad)).is_err());
    }

    #[test]
    fn ctx_round_trips_through_the_envelope() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef,
            parent_span: Some(11),
        };
        let framed = request_with_ctx(3, "check_horizon", Value::Null, &ctx);
        let parsed = parse_request(&framed).unwrap();
        assert_eq!(parsed.ctx, Some(ctx));
        assert_eq!(parsed.method, "check_horizon");
    }

    #[test]
    fn malformed_ctx_is_ignored_not_fatal() {
        let mut value = request(5, "stats", Value::Null);
        if let Value::Object(map) = &mut value {
            map.insert("ctx".to_string(), Value::from("not-an-object"));
        }
        let parsed = parse_request(&value).unwrap();
        assert_eq!(parsed.id, 5);
        assert_eq!(parsed.ctx, None, "bad ctx must not fail the request");
    }
}
