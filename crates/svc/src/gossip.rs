//! The anti-entropy loop and the `gossip` method handler.
//!
//! Every [`GossipConfig::interval`] the loop picks the next peer
//! round-robin and runs one push-pull exchange over the ordinary wire
//! protocol (two `gossip` RPCs, see `minobs_cluster::digest`): compare
//! per-shard fingerprints, then ship both sides' deltas for the shards
//! that disagree. Inbound deltas — whether this node initiated or the
//! peer did — go through [`ingest_deltas`], which cross-validates each
//! record against the live cache exactly like WAL replay does: records
//! already implied by the cache are skipped, records that would
//! *contradict* an established bound are rejected (and counted), and
//! only genuinely new knowledge reaches `record_horizon` /
//! `record_theorem` — landing in both the cache and the local WAL, so a
//! replicated verdict survives a restart like a local one.
//!
//! Convergence is a semilattice join: bounds only tighten and theorems
//! never change, so exchanges are idempotent and order-free, and after a
//! partition heals every pair of live nodes pulls each other level.
//!
//! An optional [`LinkPolicy`] sits in front of every outbound exchange;
//! chaos harnesses use it to drop or delay rounds deterministically. A
//! dropped round counts as a peer failure, exactly like a refused
//! connection; [`minobs_cluster::DOWN_AFTER`] consecutive failures emit
//! one `peer_down` event.

use crate::client::SvcClient;
use crate::methods::RpcError;
use crate::server::ServerState;
use minobs_cluster::digest::{self, Delta, GossipBody};
use minobs_cluster::{LinkPolicy, LinkVerdict};
use minobs_obs::{stamp_root_span, MemoryRecorder, SpanGuard, SpanIds, TraceContext};
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the loop sleeps per poll while waiting out the interval, so
/// a drain is noticed promptly even under slow gossip cadences.
const DRAIN_POLL: Duration = Duration::from_millis(20);
/// Dial timeout for peer connections.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Response timeout per gossip RPC.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Ceiling on a chaos-injected delay, so a hostile policy cannot wedge
/// the loop past drain responsiveness.
const MAX_INJECTED_DELAY: Duration = Duration::from_millis(100);

/// What the gossip thread needs beyond the shared state.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// This node's bound address, advertised in the `from` field.
    pub self_addr: String,
    /// Peer addresses, gossiped to round-robin.
    pub peers: Vec<String>,
    /// Time between rounds.
    pub interval: Duration,
    /// Optional per-link fault injection.
    pub link_policy: Option<LinkPolicy>,
}

/// The daemon's gossip thread: one exchange per interval until drain.
pub(crate) fn gossip_loop(state: &Arc<ServerState>, config: &GossipConfig) {
    let mut clients: HashMap<String, SvcClient> = HashMap::new();
    let mut round: u64 = 0;
    while !state.draining() {
        let mut waited = Duration::ZERO;
        while waited < config.interval && !state.draining() {
            let step = DRAIN_POLL.min(config.interval - waited);
            std::thread::sleep(step);
            waited += step;
        }
        if state.draining() {
            break;
        }
        let peer = &config.peers[(round % config.peers.len() as u64) as usize];
        match config
            .link_policy
            .as_ref()
            .map(|policy| policy.verdict(round, peer))
            .unwrap_or(LinkVerdict::Deliver)
        {
            LinkVerdict::Drop => {
                clients.remove(peer);
                state.gossip_failure(peer);
            }
            LinkVerdict::Delay(delay) => {
                std::thread::sleep(delay.min(MAX_INJECTED_DELAY));
                exchange_and_account(state, &mut clients, config, peer);
            }
            LinkVerdict::Deliver => {
                exchange_and_account(state, &mut clients, config, peer);
            }
        }
        round += 1;
    }
}

fn exchange_and_account(
    state: &ServerState,
    clients: &mut HashMap<String, SvcClient>,
    config: &GossipConfig,
    peer: &str,
) {
    match exchange(state, clients, config, peer) {
        Ok(()) => {}
        Err(_) => {
            // Whatever went wrong, the connection is suspect; redial on
            // the next round rather than reusing a half-dead stream.
            clients.remove(peer);
            state.gossip_failure(peer);
        }
    }
}

/// One push-pull exchange with `peer`. Success updates the peer table
/// and emits `gossip_round`; the caller accounts failures.
fn exchange(
    state: &ServerState,
    clients: &mut HashMap<String, SvcClient>,
    config: &GossipConfig,
    peer: &str,
) -> Result<(), String> {
    let started = Instant::now();
    if !clients.contains_key(peer) {
        let mut client = SvcClient::connect_with_timeout(peer, Some(CONNECT_TIMEOUT))
            .map_err(|e| e.to_string())?;
        client
            .set_timeout(Some(READ_TIMEOUT))
            .map_err(|e| e.to_string())?;
        clients.insert(peer.to_string(), client);
    }
    let client = clients.get_mut(peer).expect("just inserted");

    // Each exchange runs under a `gossip.exchange` span. When a recent
    // cache-filling request stashed its trace context, the exchange
    // joins that trace — replicating the verdict stays attributable to
    // the request that produced it; otherwise it roots a fresh trace.
    // Both gossip RPCs carry a child context parented on this span, so
    // the receiving daemon's `rpc.gossip` span stitches underneath it.
    let ctx = state.take_gossip_ctx().unwrap_or_else(TraceContext::root);
    let mut spans = MemoryRecorder::new();
    let mut span_ids = SpanIds::starting_at(state.next_seq() << 20);
    let span = SpanGuard::begin(&mut spans, &mut span_ids, 0, None, "gossip.exchange");
    let rpc_ctx = match span.as_ref().map(SpanGuard::id) {
        Some(id) => TraceContext {
            trace_id: ctx.trace_id,
            parent_span: Some(id),
        },
        None => ctx,
    };

    let entries = state.cache().snapshot();
    let mine = digest::fingerprints(&entries);
    let reply = client
        .call_with_ctx(
            "gossip",
            digest::digest_params(&config.self_addr, &mine),
            &rpc_ctx,
        )
        .map_err(|e| e.to_string())?;
    let theirs =
        digest::parse_digest_result(&reply).ok_or("peer sent a malformed digest result")?;
    let mismatch = digest::mismatched(&mine, &theirs);
    let (sent, accepted, lag) = if mismatch.is_empty() {
        (0, 0, 0)
    } else {
        let outbound = digest::shard_deltas(&entries, &mismatch);
        let reply = client
            .call_with_ctx(
                "gossip",
                digest::sync_params(&config.self_addr, &mismatch, &outbound),
                &rpc_ctx,
            )
            .map_err(|e| e.to_string())?;
        let (_applied_there, inbound) =
            digest::parse_sync_result(&reply).ok_or("peer sent a malformed sync result")?;
        let accepted = ingest_deltas(state, peer, &inbound);
        (outbound.len() as u64, accepted, mismatch.len() as u64)
    };

    if let Some(span) = span {
        span.end(&mut spans);
    }
    let mut events = spans.into_events();
    stamp_root_span(&mut events, &ctx);
    let nanos = (started.elapsed().as_nanos() as u64).max(1);
    state.gossip_success(peer, sent, accepted, lag, nanos, &events);
    Ok(())
}

/// Ingests replicated deltas, cross-validating each against the live
/// cache first. Returns how many were genuinely new and applied.
///
/// The validation mirrors WAL replay's: a delta the cache already
/// implies (same verdict, exact or subsumed) is skipped silently; a
/// delta that *contradicts* an established bound or an existing theorem
/// memo is rejected and counted (`gossip_apply` with `accepted: false`,
/// `svc.gossip_rejected`) — a hostile or corrupt peer cannot plant a
/// contradiction. Only gap-filling records reach `record_horizon` /
/// `record_theorem`, which feed the cache *and* the local WAL.
pub(crate) fn ingest_deltas(state: &ServerState, peer: &str, deltas: &[Delta]) -> u64 {
    let mut applied = 0u64;
    for delta in deltas {
        match delta {
            Delta::Horizon { key, k, solvable } => {
                match state.cache().lookup_horizon(key, *k) {
                    Some(answer) if answer.solvable() != *solvable => {
                        state.on_gossip_apply(peer, "horizon", key, false);
                    }
                    Some(_) => {}
                    None => {
                        state.record_horizon(key, *k, *solvable);
                        state.on_gossip_apply(peer, "horizon", key, true);
                        applied += 1;
                    }
                }
            }
            Delta::Theorem { key, result } => match state.cache().lookup_theorem(key) {
                Some(existing) if existing != *result => {
                    state.on_gossip_apply(peer, "theorem", key, false);
                }
                Some(_) => {}
                None => {
                    state.record_theorem(key, result.clone());
                    state.on_gossip_apply(peer, "theorem", key, true);
                    applied += 1;
                }
            },
        }
    }
    applied
}

/// The `gossip` method handler: answer a digest with our fingerprints,
/// answer a sync by ingesting the peer's deltas and returning ours for
/// the same shards.
pub(crate) fn handle(state: &ServerState, params: &Value) -> Result<Value, RpcError> {
    let request =
        digest::parse_params(params).map_err(|message| RpcError::new("bad_params", message))?;
    match request.body {
        GossipBody::Digest { .. } => {
            let entries = state.cache().snapshot();
            Ok(digest::digest_result(&digest::fingerprints(&entries)))
        }
        GossipBody::Sync { shards, deltas } => {
            let applied = ingest_deltas(state, &request.from, &deltas);
            // Snapshot *after* ingest: what we just accepted is no longer
            // a delta the initiator needs back, and what it still lacks
            // is exactly our surviving shard contents.
            let entries = state.cache().snapshot();
            let ours = digest::shard_deltas(&entries, &shards);
            Ok(digest::sync_result(applied, &ours))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, SvcConfig};
    use std::time::Duration;

    fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
        let started = Instant::now();
        while started.elapsed() < deadline {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        done()
    }

    #[test]
    fn two_nodes_converge_in_both_directions() {
        // a runs without peers; b gossips at a. Convergence must still be
        // bidirectional because the sync phase is push-pull.
        let a = serve(SvcConfig::default()).unwrap();
        let b = serve(SvcConfig {
            peers: vec![a.local_addr().to_string()],
            gossip_interval: Duration::from_millis(15),
            ..SvcConfig::default()
        })
        .unwrap();

        a.state().record_horizon("scheme-a|alpha2", 3, true);
        b.state().record_horizon("scheme-b|alpha2", 2, false);
        b.state()
            .record_theorem("scheme-b|theorem", Value::from("memo"));

        let converged = wait_until(Duration::from_secs(10), || {
            a.state().cache().snapshot() == b.state().cache().snapshot()
        });
        let snap_a = a.state().cache().snapshot();
        let snap_b = b.state().cache().snapshot();
        assert!(converged, "nodes did not converge: {snap_a:?} vs {snap_b:?}");
        assert_eq!(snap_a.len(), 3, "all three records on both nodes");

        // The replicated verdict answers from b's cache, subsumption
        // included, without rerunning anything.
        assert!(b
            .state()
            .cache()
            .lookup_horizon("scheme-a|alpha2", 5)
            .is_some());

        let peers = b.state().peers_json();
        assert_eq!(peers.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(peers.get("alive").and_then(Value::as_u64), Some(1));

        a.shutdown();
        b.shutdown();
        a.join();
        b.join();
    }

    #[test]
    fn ingest_rejects_contradictions_and_skips_known_records() {
        let server = serve(SvcConfig::default()).unwrap();
        let state = server.state();
        state.record_horizon("k|a", 4, true); // solvable for all k >= 4

        let deltas = vec![
            // Contradicts the established bound: rejected.
            Delta::Horizon {
                key: "k|a".to_string(),
                k: 6,
                solvable: false,
            },
            // Already implied (subsumed): skipped, not applied.
            Delta::Horizon {
                key: "k|a".to_string(),
                k: 5,
                solvable: true,
            },
            // Genuinely new: tightens the bound.
            Delta::Horizon {
                key: "k|a".to_string(),
                k: 1,
                solvable: false,
            },
            Delta::Theorem {
                key: "k|t".to_string(),
                result: Value::from(true),
            },
        ];
        let applied = ingest_deltas(state, "peer:1", &deltas);
        assert_eq!(applied, 2, "only the new bound and the theorem apply");
        let verdicts = &state
            .cache()
            .snapshot()
            .iter()
            .find(|(key, _, _)| key == "k|a")
            .unwrap()
            .1
            .clone();
        assert_eq!(verdicts.min_solvable(), Some(4), "bound never rewritten");
        assert_eq!(verdicts.max_unsolvable(), Some(1), "tightening applied");

        // A conflicting theorem memo is rejected, the original stays.
        let conflict = vec![Delta::Theorem {
            key: "k|t".to_string(),
            result: Value::from(false),
        }];
        assert_eq!(ingest_deltas(state, "peer:1", &conflict), 0);
        assert_eq!(
            state.cache().lookup_theorem("k|t"),
            Some(Value::from(true))
        );

        let registry = state.registry();
        assert_eq!(registry.counter("svc.gossip_applied").get(), 2);
        assert_eq!(registry.counter("svc.gossip_rejected").get(), 2);

        server.shutdown();
        server.join();
    }

    #[test]
    fn dropped_links_mark_the_peer_down_and_heal_on_delivery() {
        let a = serve(SvcConfig::default()).unwrap();
        // Drop every round before round 6, deliver after: the peer must
        // go down (edge event) and come back alive.
        let b = serve(SvcConfig {
            peers: vec![a.local_addr().to_string()],
            gossip_interval: Duration::from_millis(15),
            link_policy: Some(LinkPolicy::new(|round, _| {
                if round < 6 {
                    LinkVerdict::Drop
                } else {
                    LinkVerdict::Deliver
                }
            })),
            ..SvcConfig::default()
        })
        .unwrap();
        a.state().record_horizon("late|key", 2, true);

        let down_seen = wait_until(Duration::from_secs(10), || {
            b.state().registry().counter("svc.gossip_peer_down").get() == 1
        });
        assert!(down_seen, "peer_down should fire after 3 dropped rounds");

        let converged = wait_until(Duration::from_secs(10), || {
            b.state().cache().lookup_horizon("late|key", 2).is_some()
        });
        assert!(converged, "delivery after heal should replicate the key");
        let peers = b.state().peers_json();
        assert_eq!(peers.get("alive").and_then(Value::as_u64), Some(1));

        a.shutdown();
        b.shutdown();
        a.join();
        b.join();
    }
}
