//! The solvability-query daemon.
//!
//! Binds `MINOBS_SVC_ADDR` (default `127.0.0.1:0`), prints the bound
//! address, and serves until a `shutdown` request drains it. See
//! `docs/SERVICE.md` for the protocol and environment reference.

use minobs_svc::server::{serve, SvcConfig};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    minobs_bench::cli::handle_common_flags(
        "minobs-svcd",
        "solvability-query daemon (TCP, minobs/rpc/v1)",
        "MINOBS_SVC_ADDR=127.0.0.1:7171 MINOBS_SVC_WORKERS=4 minobs-svcd",
    );

    let config = SvcConfig::from_env();
    let server = match serve(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("minobs-svcd: cannot bind: {err}");
            return ExitCode::FAILURE;
        }
    };
    match server.state().wal_replay_report() {
        Some(report) if server.state().wal_active() => eprintln!(
            "minobs-svcd: wal replayed {} records ({} bytes{})",
            report.records,
            report.bytes,
            if report.dropped_tail { ", torn tail dropped" } else { "" },
        ),
        Some(_) | None if std::env::var("MINOBS_SVC_WAL").is_ok_and(|p| !p.trim().is_empty()) => {
            eprintln!("minobs-svcd: wal unavailable, running memory-only (degraded)");
        }
        _ => {}
    }
    // Flush so harnesses polling stdout see the address immediately.
    println!("minobs-svcd listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.join();
    println!("minobs-svcd drained");
    ExitCode::SUCCESS
}
