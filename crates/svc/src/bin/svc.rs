//! Client CLI for the solvability-query daemon.
//!
//! ```text
//! svc call <method> [params-json] [--addr HOST:PORT]
//! svc bench [--addr HOST:PORT] [--threads N] [--requests M]
//!           [--method NAME] [--params JSON]
//! svc top [--addr HOST:PORT] [--interval SECS] [--iterations N]
//!         [--no-clear]
//! ```
//!
//! The address defaults to `MINOBS_SVC_ADDR`. `bench` is a closed-loop
//! load generator: each thread opens its own connection and issues its
//! requests back to back, then latencies are pooled for percentiles.
//! The very first request is reported separately as the cold-cache
//! latency, so a warm/cold comparison is one run's output. After the
//! run, the daemon's metrics snapshot is written next to the experiment
//! artifacts as `svc_bench.metrics.json`.
//!
//! `top` polls `stats` and renders a live view: request rate, in-flight
//! requests, cache hit ratio, and per-method latency percentiles.

use minobs_svc::client::SvcClient;
use serde_json::Value;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  svc call <method> [params-json] [--addr HOST:PORT]\n  svc bench [--addr HOST:PORT] [--threads N] [--requests M] [--method NAME] [--params JSON]\n  svc top [--addr HOST:PORT] [--interval SECS] [--iterations N] [--no-clear]"
    );
    ExitCode::FAILURE
}

fn env_addr() -> Option<String> {
    std::env::var("MINOBS_SVC_ADDR")
        .ok()
        .filter(|a| !a.trim().is_empty())
        .map(|a| a.trim().to_string())
}

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "svc",
        "client and load generator for the solvability-query daemon",
        "svc call stats | svc bench --threads 2 --requests 100",
    );
    match args.first().map(String::as_str) {
        Some("call") => call(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("top") => top(&args[1..]),
        _ => usage(),
    }
}

fn call(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut method = None;
    let mut params = Value::Null;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            text if method.is_none() => method = Some(text.to_string()),
            text => match serde_json::from_str(text) {
                Ok(value) => params = value,
                Err(err) => {
                    eprintln!("svc call: params are not JSON: {err:?}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    let Some(method) = method else {
        return usage();
    };
    let Some(addr) = addr else {
        eprintln!("svc call: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    let mut client = match SvcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("svc call: cannot connect to {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match client.call(&method, params) {
        Ok(result) => {
            let text = serde_json::to_string_pretty(&result)
                .unwrap_or_else(|err| format!("<unprintable result: {err:?}>"));
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("svc call: {err}");
            ExitCode::FAILURE
        }
    }
}

struct ThreadOutcome {
    latencies_ns: Vec<u64>,
    errors: usize,
}

fn bench(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut threads = 2usize;
    let mut requests = 50usize;
    let mut method = "check_horizon".to_string();
    let mut params_text = r#"{"scheme":"s1","horizon":6}"#.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => return usage(),
            },
            "--requests" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => return usage(),
            },
            "--method" => match it.next() {
                Some(m) => method = m.clone(),
                None => return usage(),
            },
            "--params" => match it.next() {
                Some(p) => params_text = p.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("svc bench: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    let params: Value = match serde_json::from_str(&params_text) {
        Ok(value) => value,
        Err(err) => {
            eprintln!("svc bench: params are not JSON: {err:?}");
            return ExitCode::FAILURE;
        }
    };

    // One cold probe first, on its own connection, so the cache-warming
    // request is measured separately from the closed-loop phase.
    let cold_ns = {
        let mut client = match SvcClient::connect(addr.as_str()) {
            Ok(client) => client,
            Err(err) => {
                eprintln!("svc bench: cannot connect to {addr}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let start = Instant::now();
        if let Err(err) = client.call(&method, params.clone()) {
            eprintln!("svc bench: cold request failed: {err}");
            return ExitCode::FAILURE;
        }
        start.elapsed().as_nanos() as u64
    };

    let started = Instant::now();
    let outcomes: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let addr = addr.clone();
                let method = method.clone();
                let params = params.clone();
                scope.spawn(move || run_thread(&addr, &method, &params, requests))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    latencies.sort_unstable();
    let ok = latencies.len();
    let throughput = ok as f64 / elapsed.as_secs_f64().max(1e-9);

    println!(
        "svc bench: {threads} threads × {requests} requests of {method} against {addr}"
    );
    println!(
        "  {ok} ok, {errors} err in {:.3}s → {throughput:.1} req/s",
        elapsed.as_secs_f64()
    );
    if ok > 0 {
        println!(
            "  warm latency µs: p50 {} p90 {} p99 {} max {}",
            percentile(&latencies, 50) / 1_000,
            percentile(&latencies, 90) / 1_000,
            percentile(&latencies, 99) / 1_000,
            latencies[ok - 1] / 1_000
        );
        let warm_mean = latencies.iter().sum::<u64>() / ok as u64;
        println!(
            "  cold first request: {} µs ({:.1}× warm mean)",
            cold_ns / 1_000,
            cold_ns as f64 / warm_mean.max(1) as f64
        );
    }
    // The daemon's own view of the run, written next to the experiment
    // artifacts so bench reports carry the server-side histograms too.
    match SvcClient::connect(addr.as_str()).and_then(|mut c| c.call("stats", Value::Null)) {
        Ok(stats) => {
            minobs_bench::write_metrics_snapshot("svc_bench", &stats);
        }
        Err(err) => eprintln!("svc bench: stats snapshot failed: {err}"),
    }

    if errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One polled frame of the `top` view, with the counters needed to turn
/// the next poll into rates.
struct TopSample {
    responses: u64,
    at: Instant,
}

fn top(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut interval = 1.0f64;
    let mut iterations = 0usize; // 0 = poll until interrupted
    let mut clear = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            "--interval" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => interval = s,
                _ => return usage(),
            },
            "--iterations" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => iterations = n,
                None => return usage(),
            },
            "--no-clear" => clear = false,
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("svc top: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    let mut client = match SvcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("svc top: cannot connect to {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut previous: Option<TopSample> = None;
    let mut frame = 0usize;
    loop {
        let stats = match client.call("stats", Value::Null) {
            Ok(stats) => stats,
            Err(err) => {
                eprintln!("svc top: stats failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        if clear {
            // ANSI clear + home; `--no-clear` keeps frames append-only
            // for logs and non-terminals.
            print!("\x1b[2J\x1b[H");
        }
        previous = Some(render_top_frame(&addr, &stats, previous.as_ref()));

        frame += 1;
        if iterations != 0 && frame >= iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn counter(stats: &Value, name: &str) -> u64 {
    stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Prints one `top` frame from a `stats` response and returns the sample
/// used to compute the next frame's rates.
fn render_top_frame(addr: &str, stats: &Value, previous: Option<&TopSample>) -> TopSample {
    let now = Instant::now();
    let requests = counter(stats, "svc.requests");
    let responses_ok = counter(stats, "svc.responses_ok");
    let responses_err = counter(stats, "svc.responses_err");
    let responses = responses_ok + responses_err;
    let hits = counter(stats, "svc.cache_hits");
    let misses = counter(stats, "svc.cache_misses");
    let subsumed = counter(stats, "svc.cache_subsumptions");

    let qps = previous
        .map(|p| {
            let dt = now.duration_since(p.at).as_secs_f64().max(1e-9);
            (responses.saturating_sub(p.responses)) as f64 / dt
        })
        .unwrap_or(0.0);
    let in_flight = requests.saturating_sub(responses);
    let lookups = hits + misses + subsumed;
    let hit_ratio = if lookups > 0 {
        (hits + subsumed) as f64 / lookups as f64 * 100.0
    } else {
        0.0
    };

    let uptime_ms = stats.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0);
    let workers = stats.get("workers").and_then(Value::as_u64).unwrap_or(0);
    let draining = stats
        .get("draining")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    println!(
        "minobs-svc {addr} — up {:.0}s, {workers} workers{}",
        uptime_ms as f64 / 1_000.0,
        if draining { ", DRAINING" } else { "" }
    );
    println!(
        "  {qps:.1} req/s | {requests} requests ({responses_ok} ok, {responses_err} err) | {in_flight} in flight"
    );
    println!(
        "  cache: {hit_ratio:.1}% hit ({hits} hit, {subsumed} subsumed, {misses} miss)"
    );
    println!("  {:<16} {:>8} {:>10} {:>10} {:>10}", "method", "count", "p50 µs", "p95 µs", "p99 µs");
    let empty = serde_json::Map::new();
    let latency = stats
        .get("latency")
        .and_then(Value::as_object)
        .unwrap_or(&empty);
    for (method, summary) in latency.iter() {
        let field = |name: &str| {
            summary
                .get(name)
                .and_then(Value::as_u64)
                .map(|ns| format!("{:.1}", ns as f64 / 1_000.0))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "  {method:<16} {:>8} {:>10} {:>10} {:>10}",
            summary.get("count").and_then(Value::as_u64).unwrap_or(0),
            field("p50_ns"),
            field("p95_ns"),
            field("p99_ns"),
        );
    }
    if latency.is_empty() {
        println!("  (no timed requests yet)");
    }

    TopSample { responses, at: now }
}

fn run_thread(addr: &str, method: &str, params: &Value, requests: usize) -> ThreadOutcome {
    let mut outcome = ThreadOutcome {
        latencies_ns: Vec::with_capacity(requests),
        errors: 0,
    };
    let mut client = match SvcClient::connect(addr) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("svc bench: connect failed: {err}");
            outcome.errors = requests;
            return outcome;
        }
    };
    for _ in 0..requests {
        let start = Instant::now();
        match client.call(method, params.clone()) {
            Ok(_) => outcome.latencies_ns.push(start.elapsed().as_nanos() as u64),
            Err(err) => {
                eprintln!("svc bench: request failed: {err}");
                outcome.errors += 1;
            }
        }
    }
    outcome
}

/// Nearest-rank percentile over sorted data.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank.min(sorted.len()) - 1]
}
