//! Client CLI for the solvability-query daemon.
//!
//! ```text
//! svc call <method> [params-json] [--addr HOST:PORT]
//! svc bench [--addr HOST:PORT] [--threads N] [--requests M]
//!           [--method NAME] [--params JSON]
//! svc bench --open-loop --freq N [--duration S] [--threads N]
//!           [--mix solvable=8,check_horizon=1] [--inflight-cap N]
//!           [--tick S] [--out PATH] [--id NAME]
//! svc bench --sweep lo:hi:steps [--duration S] [--p99-bound-ms X]
//!           [--expect-knee] [...open-loop flags]
//! svc top [--addr HOST:PORT] [--interval SECS] [--iterations N]
//!         [--no-clear] [--cluster]
//! svc metrics [--addr HOST:PORT] [--all]
//! svc dump [--addr HOST:PORT] [--all] [--out DIR]
//! ```
//!
//! The address defaults to `MINOBS_SVC_ADDR`. `bench` has two modes with
//! identical latency semantics (both pool observations into
//! `minobs_obs::Histogram`):
//!
//! * **closed-loop** (default): each thread issues its requests back to
//!   back, waiting for every response. Simple, but the driver slows down
//!   with the daemon, so queueing delay is hidden (coordinated
//!   omission). The very first request is reported separately as the
//!   cold-cache latency.
//! * **open-loop** (`--open-loop` / `--sweep`): requests are issued on a
//!   fixed virtual-deadline schedule that never waits for responses, and
//!   latency is measured from the send *deadline* — see
//!   `docs/BENCHMARKING.md`.
//!
//! Every bench run emits a `minobs/bench/v1` artifact (via
//! `minobs-bench`), and `--sweep` additionally locates the saturation
//! knee: the first frequency where achieved throughput falls below 90%
//! of offered, or p99 exceeds `--p99-bound-ms`.
//!
//! `top` polls `stats` and renders a live view: request rate, queued
//! backlog, cache hit ratio, and per-method latency percentiles. With
//! `--cluster` it discovers the fleet through the seed's `stats.peers`
//! table and renders one row per node plus a fleet-aggregate row
//! (latency quantiles merged bucket-by-bucket across nodes).
//!
//! `metrics` prints a daemon's Prometheus exposition; `--all` walks the
//! discovered fleet and prints every node's, separated by `# ---- node`
//! comment lines.
//!
//! `dump` fetches a daemon's flight-recorder snapshot (`dump_trace`) as
//! `minobs/trace/v1` JSONL; `--all` walks the discovered fleet and
//! `--out DIR` writes one `<node>.trace.jsonl` per node — ready for
//! `trace stitch` to reassemble a cross-node incident trace.

use minobs_obs::Histogram;
use minobs_svc::client::{RetryPolicy, SvcClient, SvcError};
use minobs_svc::loadgen::{
    find_knee, parse_mix, run_open_loop, KneeCriteria, MixEntry, OpenLoopConfig, OpenLoopSummary,
    SweepSpec, TrialPoint,
};
use serde_json::{Map, Value};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  svc call <method> [params-json] [--addr HOST:PORT] [--timeout S] [--connect-timeout S] [--retries N]\n  svc bench [--addr HOST:PORT] [--threads N] [--requests M] [--method NAME] [--params JSON]\n  svc bench --open-loop --freq N [--duration S] [--threads N] [--mix m1=w1,m2=w2] [--inflight-cap N] [--tick S] [--out PATH] [--id NAME]\n  svc bench --sweep lo:hi:steps [--duration S] [--p99-bound-ms X] [--expect-knee] [open-loop flags]\n  svc top [--addr HOST:PORT] [--interval SECS] [--iterations N] [--no-clear] [--cluster]\n  svc metrics [--addr HOST:PORT] [--all]\n  svc dump [--addr HOST:PORT] [--all] [--out DIR]"
    );
    ExitCode::FAILURE
}

fn env_addr() -> Option<String> {
    std::env::var("MINOBS_SVC_ADDR")
        .ok()
        .filter(|a| !a.trim().is_empty())
        .map(|a| a.trim().to_string())
}

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "svc",
        "client and load generator for the solvability-query daemon",
        "svc call stats | svc bench --open-loop --freq 200 --duration 5",
    );
    match args.first().map(String::as_str) {
        Some("call") => call(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("top") => top(&args[1..]),
        Some("metrics") => metrics_cmd(&args[1..]),
        Some("dump") => dump_cmd(&args[1..]),
        _ => usage(),
    }
}

fn call(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut method = None;
    let mut params = Value::Null;
    // Bounded by default: a hung or unreachable daemon fails the call
    // instead of hanging the shell. `--timeout 0` restores block-forever.
    let mut timeout_s = 30.0f64;
    let mut connect_timeout_s = 5.0f64;
    let mut retries = 0u32;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            "--timeout" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s >= 0.0 && s.is_finite() => timeout_s = s,
                _ => return usage(),
            },
            "--connect-timeout" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s >= 0.0 && s.is_finite() => connect_timeout_s = s,
                _ => return usage(),
            },
            "--retries" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => retries = n,
                None => return usage(),
            },
            text if method.is_none() => method = Some(text.to_string()),
            text => match serde_json::from_str(text) {
                Ok(value) => params = value,
                Err(err) => {
                    eprintln!("svc call: params are not JSON: {err:?}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    let Some(method) = method else {
        return usage();
    };
    let Some(addr) = addr else {
        eprintln!("svc call: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    let connect_timeout = (connect_timeout_s > 0.0).then(|| Duration::from_secs_f64(connect_timeout_s));
    let mut client = match SvcClient::connect_with_timeout(addr.as_str(), connect_timeout) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("svc call: cannot connect to {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let timeout = (timeout_s > 0.0).then(|| Duration::from_secs_f64(timeout_s));
    if let Err(err) = client.set_timeout(timeout) {
        eprintln!("svc call: cannot set timeout: {err}");
        return ExitCode::FAILURE;
    }
    let policy = RetryPolicy {
        budget: retries,
        ..RetryPolicy::default()
    };
    match client.call_with_retry(&method, params, &policy) {
        Ok(result) => {
            let text = serde_json::to_string_pretty(&result)
                .unwrap_or_else(|err| format!("<unprintable result: {err:?}>"));
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("svc call: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Default params for every method the bench mixes know how to call.
/// Pinned values so runs stay comparable across sessions.
fn default_params(method: &str) -> Option<Value> {
    let text = match method {
        "solvable" => r#"{"scheme":"s1"}"#,
        "check_horizon" => r#"{"scheme":"s1","horizon":6}"#,
        "first_horizon" => r#"{"scheme":"s1","max_horizon":4}"#,
        "net_solvable" => r#"{"graph":"petersen","f":2}"#,
        "stats" => "null",
        _ => return None,
    };
    serde_json::from_str(text).ok()
}

/// Turns a `--mix` spec into full entries, rejecting methods the bench
/// has no pinned params for.
fn build_mix(spec: &str) -> Result<Vec<MixEntry>, String> {
    parse_mix(spec)?
        .into_iter()
        .map(|(method, weight)| {
            let params = default_params(&method)
                .ok_or_else(|| format!("mix method {method:?} has no pinned bench params"))?;
            Ok(MixEntry {
                method,
                params,
                weight,
            })
        })
        .collect()
}

/// Serialises a latency histogram into the `minobs/bench/v1`
/// `latency_ns` block. Quantiles are clamped to the exact observed
/// maximum: bucket interpolation can overestimate inside the top
/// occupied bucket, and the schema requires `p99 <= max`.
fn latency_block(latency: &Histogram, max_ns: u64) -> Value {
    let q = |q: f64| {
        latency
            .quantile(q)
            .map(|v| v.min(max_ns as f64))
            .unwrap_or(0.0)
    };
    let mut block = Map::new();
    block.insert("count", Value::from(latency.count()));
    block.insert("p50", Value::from(q(0.50)));
    block.insert("p95", Value::from(q(0.95)));
    block.insert("p99", Value::from(q(0.99)));
    block.insert("max", Value::from(max_ns as f64));
    Value::Object(block)
}

fn print_latency(label: &str, latency: &Histogram, max_ns: u64) {
    let q = |q: f64| {
        latency
            .quantile(q)
            .map(|v| v.min(max_ns as f64) / 1_000.0)
            .unwrap_or(0.0)
    };
    println!(
        "  {label} latency µs: p50 {:.1} p95 {:.1} p99 {:.1} max {:.1}",
        q(0.50),
        q(0.95),
        q(0.99),
        max_ns as f64 / 1_000.0
    );
}

fn counter(stats: &Value, name: &str) -> u64 {
    stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// `(hits + subsumed) / lookups`, or `Null` before any cache traffic.
fn cache_hit_ratio(stats: &Value) -> Value {
    let hits = counter(stats, "svc.cache_hits");
    let misses = counter(stats, "svc.cache_misses");
    let subsumed = counter(stats, "svc.cache_subsumptions");
    let lookups = hits + misses + subsumed;
    if lookups == 0 {
        Value::Null
    } else {
        Value::from((hits + subsumed) as f64 / lookups as f64)
    }
}

fn fetch_stats(addr: &str) -> Option<Value> {
    SvcClient::connect_with_timeout(addr, Some(Duration::from_secs(5)))
        .and_then(|mut c| {
            c.set_timeout(Some(Duration::from_secs(30)))?;
            c.call("stats", Value::Null)
        })
        .map_err(|err| eprintln!("svc bench: stats snapshot failed: {err}"))
        .ok()
}

struct BenchOpts {
    addr: String,
    threads: usize,
    requests: usize,
    method: String,
    params_text: String,
    open_loop: bool,
    freq: Option<f64>,
    duration_s: f64,
    mix_spec: String,
    inflight_cap: usize,
    tick_s: f64,
    sweep: Option<SweepSpec>,
    p99_bound_ms: Option<f64>,
    expect_knee: bool,
    out: Option<PathBuf>,
    id: String,
}

fn bench(args: &[String]) -> ExitCode {
    let mut opts = BenchOpts {
        addr: String::new(),
        threads: 2,
        requests: 50,
        method: "check_horizon".to_string(),
        params_text: r#"{"scheme":"s1","horizon":6}"#.to_string(),
        open_loop: false,
        freq: None,
        duration_s: 5.0,
        mix_spec: "solvable=8,check_horizon=1,net_solvable=1".to_string(),
        inflight_cap: 64,
        tick_s: 1.0,
        sweep: None,
        p99_bound_ms: None,
        expect_knee: false,
        out: None,
        id: "bench_svc".to_string(),
    };
    let mut addr = env_addr();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => opts.threads = n,
                _ => return usage(),
            },
            "--requests" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => opts.requests = n,
                _ => return usage(),
            },
            "--method" => match it.next() {
                Some(m) => opts.method = m.clone(),
                None => return usage(),
            },
            "--params" => match it.next() {
                Some(p) => opts.params_text = p.clone(),
                None => return usage(),
            },
            "--open-loop" => opts.open_loop = true,
            "--freq" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f.is_finite() => opts.freq = Some(f),
                _ => return usage(),
            },
            "--duration" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s > 0.0 && s.is_finite() => opts.duration_s = s,
                _ => return usage(),
            },
            "--mix" => match it.next() {
                Some(m) => opts.mix_spec = m.clone(),
                None => return usage(),
            },
            "--inflight-cap" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => opts.inflight_cap = n,
                _ => return usage(),
            },
            "--tick" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s >= 0.0 => opts.tick_s = s,
                _ => return usage(),
            },
            "--sweep" => match it.next().map(|s| SweepSpec::parse(s)) {
                Some(Ok(spec)) => opts.sweep = Some(spec),
                Some(Err(err)) => {
                    eprintln!("svc bench: {err}");
                    return usage();
                }
                None => return usage(),
            },
            "--p99-bound-ms" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(b) if b > 0.0 => opts.p99_bound_ms = Some(b),
                _ => return usage(),
            },
            "--expect-knee" => opts.expect_knee = true,
            "--out" => match it.next() {
                Some(p) => opts.out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--id" => match it.next() {
                Some(i) => opts.id = i.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("svc bench: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    opts.addr = addr;

    if opts.sweep.is_some() {
        bench_sweep(&opts)
    } else if opts.open_loop {
        bench_open_loop(&opts)
    } else {
        bench_closed_loop(&opts)
    }
}

/// Builds the open-loop config shared by single runs and sweep trials.
fn open_loop_config(opts: &BenchOpts, freq: f64) -> Result<OpenLoopConfig, String> {
    Ok(OpenLoopConfig {
        freq,
        duration: Duration::from_secs_f64(opts.duration_s),
        threads: opts.threads,
        mix: build_mix(&opts.mix_spec)?,
        inflight_cap: opts.inflight_cap,
        tick: (opts.tick_s > 0.0).then(|| Duration::from_secs_f64(opts.tick_s)),
    })
}

fn mix_value(mix: &[MixEntry]) -> Value {
    let mut map = Map::new();
    for entry in mix {
        map.insert(entry.method.clone(), Value::from(entry.weight));
    }
    Value::Object(map)
}

/// The per-run fields shared by open-loop artifacts and sweep trials.
fn summary_fields(map: &mut Map, summary: &OpenLoopSummary) {
    map.insert("offered_qps", Value::from(summary.offered_qps));
    map.insert("achieved_qps", Value::from(summary.achieved_qps));
    map.insert("sent", Value::from(summary.sent));
    map.insert("completed", Value::from(summary.completed));
    map.insert("errors", Value::from(summary.errors));
    map.insert("dropped_by_cap", Value::from(summary.dropped_by_cap));
    map.insert("busy", Value::from(summary.busy));
    map.insert("elapsed_s", Value::from(summary.elapsed_s));
    map.insert(
        "latency_ns",
        latency_block(&summary.latency, summary.max_latency_ns),
    );
}

fn print_summary(summary: &OpenLoopSummary) {
    println!(
        "  offered {:.1}/s → achieved {:.1}/s ({} sent, {} completed, {} errors, {} dropped_by_cap, {} busy) in {:.2}s",
        summary.offered_qps,
        summary.achieved_qps,
        summary.sent,
        summary.completed,
        summary.errors,
        summary.dropped_by_cap,
        summary.busy,
        summary.elapsed_s,
    );
    print_latency("deadline→response", &summary.latency, summary.max_latency_ns);
}

fn bench_open_loop(opts: &BenchOpts) -> ExitCode {
    let Some(freq) = opts.freq else {
        eprintln!("svc bench: --open-loop needs --freq");
        return usage();
    };
    let config = match open_loop_config(opts, freq) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("svc bench: {err}");
            return usage();
        }
    };
    println!(
        "svc bench (open-loop): {:.1}/s for {:.1}s, {} threads, mix {}, cap {} against {}",
        freq, opts.duration_s, opts.threads, opts.mix_spec, opts.inflight_cap, opts.addr
    );
    let summary = match run_open_loop(&opts.addr, &config) {
        Ok(summary) => summary,
        Err(err) => {
            eprintln!("svc bench: {err}");
            return ExitCode::FAILURE;
        }
    };
    print_summary(&summary);

    let mut body = Map::new();
    body.insert("kind", Value::from("svc_open_loop"));
    body.insert("freq", Value::from(freq));
    body.insert("duration_s", Value::from(opts.duration_s));
    body.insert("threads", Value::from(opts.threads));
    body.insert("inflight_cap", Value::from(opts.inflight_cap));
    body.insert("mix", mix_value(&config.mix));
    summary_fields(&mut body, &summary);
    attach_daemon_view(&mut body, &opts.addr);
    if minobs_bench::write_bench_artifact(opts.out.as_deref(), &opts.id, body).is_none() {
        return ExitCode::FAILURE;
    }
    if summary.errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Adds the daemon's own post-run view: cache hit ratio, queued depth,
/// and the full `stats` snapshot (per-method histograms included).
fn attach_daemon_view(body: &mut Map, addr: &str) {
    if let Some(stats) = fetch_stats(addr) {
        body.insert("cache_hit_ratio", cache_hit_ratio(&stats));
        body.insert(
            "queued",
            stats
                .get("queued")
                .cloned()
                .unwrap_or(Value::Null),
        );
        body.insert("daemon_stats", stats);
    }
}

fn bench_sweep(opts: &BenchOpts) -> ExitCode {
    let spec = opts.sweep.expect("sweep spec checked by caller");
    if opts.freq.is_some() {
        eprintln!("svc bench: --sweep and --freq are mutually exclusive");
        return usage();
    }
    println!(
        "svc bench (sweep): {:.1}..{:.1}/s in {} steps, {:.1}s per trial, mix {} against {}",
        spec.lo, spec.hi, spec.steps, opts.duration_s, opts.mix_spec, opts.addr
    );
    let mut trials = Vec::with_capacity(spec.steps);
    let mut rows = Vec::with_capacity(spec.steps);
    for freq in spec.frequencies() {
        let config = match open_loop_config(opts, freq) {
            Ok(config) => config,
            Err(err) => {
                eprintln!("svc bench: {err}");
                return usage();
            }
        };
        let summary = match run_open_loop(&opts.addr, &config) {
            Ok(summary) => summary,
            Err(err) => {
                eprintln!("svc bench: trial at {freq:.1}/s failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let p99 = summary
            .latency
            .quantile(0.99)
            .map(|v| v.min(summary.max_latency_ns as f64));
        println!(
            "  freq {:>8.1}/s → achieved {:>8.1}/s  p99 {:>8.2} ms  dropped_by_cap {}",
            freq,
            summary.achieved_qps,
            p99.unwrap_or(0.0) / 1.0e6,
            summary.dropped_by_cap,
        );
        trials.push(TrialPoint {
            offered_qps: summary.offered_qps,
            achieved_qps: summary.achieved_qps,
            p99_ns: p99,
        });
        rows.push(summary);
    }

    let criteria = KneeCriteria {
        achieved_ratio: 0.9,
        p99_bound_ns: opts.p99_bound_ms.map(|ms| ms * 1.0e6),
    };
    let knee = find_knee(&trials, &criteria);
    match knee {
        Some(i) => println!(
            "  saturation knee at {:.1}/s (trial {}): achieved {:.1}/s, p99 {:.2} ms",
            trials[i].offered_qps,
            i,
            trials[i].achieved_qps,
            trials[i].p99_ns.unwrap_or(0.0) / 1.0e6,
        ),
        None => println!("  no saturation knee located in this range"),
    }

    let mut body = Map::new();
    body.insert("kind", Value::from("svc_open_loop_sweep"));
    body.insert("duration_s", Value::from(opts.duration_s));
    body.insert("threads", Value::from(opts.threads));
    body.insert("inflight_cap", Value::from(opts.inflight_cap));
    body.insert(
        "mix",
        match build_mix(&opts.mix_spec) {
            Ok(mix) => mix_value(&mix),
            Err(_) => Value::Null,
        },
    );
    // Root-level rates describe the top-of-sweep point; per-trial data
    // is under `sweep`.
    if let Some(last) = rows.last() {
        summary_fields(&mut body, last);
    }
    body.insert(
        "sweep",
        Value::Array(
            rows.iter()
                .map(|summary| {
                    let mut trial = Map::new();
                    trial.insert("freq", Value::from(summary.offered_qps));
                    summary_fields(&mut trial, summary);
                    Value::Object(trial)
                })
                .collect(),
        ),
    );
    body.insert(
        "knee",
        match knee {
            Some(i) => {
                let mut k = Map::new();
                k.insert("index", Value::from(i));
                k.insert("offered_qps", Value::from(trials[i].offered_qps));
                k.insert("achieved_qps", Value::from(trials[i].achieved_qps));
                k.insert(
                    "p99_ns",
                    trials[i].p99_ns.map(Value::from).unwrap_or(Value::Null),
                );
                Value::Object(k)
            }
            None => Value::Null,
        },
    );
    attach_daemon_view(&mut body, &opts.addr);
    if minobs_bench::write_bench_artifact(opts.out.as_deref(), &opts.id, body).is_none() {
        return ExitCode::FAILURE;
    }
    if opts.expect_knee && knee.is_none() {
        eprintln!("svc bench: --expect-knee, but the sweep never saturated");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

struct ThreadOutcome {
    latency: Histogram,
    max_ns: u64,
    errors: usize,
    busy: usize,
}

fn bench_closed_loop(opts: &BenchOpts) -> ExitCode {
    let addr = &opts.addr;
    let (threads, requests, method) = (opts.threads, opts.requests, &opts.method);
    let params: Value = match serde_json::from_str(&opts.params_text) {
        Ok(value) => value,
        Err(err) => {
            eprintln!("svc bench: params are not JSON: {err:?}");
            return ExitCode::FAILURE;
        }
    };

    // One cold probe first, on its own connection, so the cache-warming
    // request is measured separately from the closed-loop phase.
    let cold_ns = {
        let mut client = match SvcClient::connect(addr.as_str()) {
            Ok(client) => client,
            Err(err) => {
                eprintln!("svc bench: cannot connect to {addr}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let start = Instant::now();
        if let Err(err) = client.call(method, params.clone()) {
            eprintln!("svc bench: cold request failed: {err}");
            return ExitCode::FAILURE;
        }
        start.elapsed().as_nanos() as u64
    };

    let started = Instant::now();
    let outcomes: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let addr = addr.clone();
                let method = method.clone();
                let params = params.clone();
                scope.spawn(move || run_thread(&addr, &method, &params, requests))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    // Pool per-thread histograms — the same merge the open-loop driver
    // uses, so both modes report quantiles with identical semantics.
    let latency = Histogram::new(&Histogram::latency_bounds());
    let mut max_ns = 0u64;
    let mut errors = 0usize;
    let mut busy = 0usize;
    for outcome in &outcomes {
        if let Err(err) = latency.merge_from(&outcome.latency) {
            eprintln!("svc bench: histogram merge failed: {err}");
            return ExitCode::FAILURE;
        }
        max_ns = max_ns.max(outcome.max_ns);
        errors += outcome.errors;
        busy += outcome.busy;
    }
    let ok = latency.count();
    let throughput = ok as f64 / elapsed.as_secs_f64().max(1e-9);

    println!("svc bench: {threads} threads × {requests} requests of {method} against {addr}");
    println!(
        "  {ok} ok, {errors} err, {busy} busy in {:.3}s → {throughput:.1} req/s",
        elapsed.as_secs_f64()
    );
    if let Some(warm_mean) = latency.sum().checked_div(ok) {
        print_latency("warm", &latency, max_ns);
        println!(
            "  cold first request: {} µs ({:.1}× warm mean)",
            cold_ns / 1_000,
            cold_ns as f64 / warm_mean.max(1) as f64
        );
    }

    let mut body = Map::new();
    body.insert("kind", Value::from("svc_closed_loop"));
    body.insert("threads", Value::from(threads));
    body.insert("requests_per_thread", Value::from(requests));
    body.insert("method", Value::from(method.as_str()));
    body.insert("achieved_qps", Value::from(throughput));
    body.insert("sent", Value::from(ok + errors as u64));
    body.insert("completed", Value::from(ok));
    body.insert("errors", Value::from(errors));
    body.insert("busy", Value::from(busy));
    body.insert("elapsed_s", Value::from(elapsed.as_secs_f64()));
    body.insert("cold_first_request_ns", Value::from(cold_ns));
    body.insert("latency_ns", latency_block(&latency, max_ns));
    attach_daemon_view(&mut body, addr);
    minobs_bench::write_bench_artifact(opts.out.as_deref(), &opts.id, body);
    // The daemon's own view of the run, written next to the experiment
    // artifacts so bench reports carry the server-side histograms too.
    if let Some(stats) = fetch_stats(addr) {
        minobs_bench::write_metrics_snapshot("svc_bench", &stats);
    }

    if errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One polled frame of the `top` view, with the counters needed to turn
/// the next poll into rates.
struct TopSample {
    responses: u64,
    at: Instant,
}

fn top(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut interval = 1.0f64;
    let mut iterations = 0usize; // 0 = poll until interrupted
    let mut clear = true;
    let mut cluster = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            "--interval" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => interval = s,
                _ => return usage(),
            },
            "--iterations" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => iterations = n,
                None => return usage(),
            },
            "--no-clear" => clear = false,
            "--cluster" => cluster = true,
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("svc top: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    if cluster {
        return cluster_top(&addr, interval, iterations, clear);
    }
    let mut client = match SvcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("svc top: cannot connect to {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut previous: Option<TopSample> = None;
    let mut frame = 0usize;
    loop {
        let stats = match client.call("stats", Value::Null) {
            Ok(stats) => stats,
            Err(err) => {
                eprintln!("svc top: stats failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        if clear {
            // ANSI clear + home; `--no-clear` keeps frames append-only
            // for logs and non-terminals.
            print!("\x1b[2J\x1b[H");
        }
        previous = Some(render_top_frame(&addr, &stats, previous.as_ref()));

        frame += 1;
        if iterations != 0 && frame >= iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

/// Prints one `top` frame from a `stats` response and returns the sample
/// used to compute the next frame's rates.
fn render_top_frame(addr: &str, stats: &Value, previous: Option<&TopSample>) -> TopSample {
    let now = Instant::now();
    let requests = counter(stats, "svc.requests");
    let responses_ok = counter(stats, "svc.responses_ok");
    let responses_err = counter(stats, "svc.responses_err");
    let responses = responses_ok + responses_err;
    let hits = counter(stats, "svc.cache_hits");
    let misses = counter(stats, "svc.cache_misses");
    let subsumed = counter(stats, "svc.cache_subsumptions");

    let qps = previous
        .map(|p| {
            let dt = now.duration_since(p.at).as_secs_f64().max(1e-9);
            (responses.saturating_sub(p.responses)) as f64 / dt
        })
        .unwrap_or(0.0);
    // The daemon reports its own backlog; fall back to the client-side
    // derivation for daemons predating the `queued` field.
    let queued = stats
        .get("queued")
        .and_then(Value::as_u64)
        .unwrap_or_else(|| requests.saturating_sub(responses));
    let lookups = hits + misses + subsumed;
    let hit_ratio = if lookups > 0 {
        (hits + subsumed) as f64 / lookups as f64 * 100.0
    } else {
        0.0
    };

    let uptime_ms = stats.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0);
    let workers = stats.get("workers").and_then(Value::as_u64).unwrap_or(0);
    let draining = stats
        .get("draining")
        .and_then(Value::as_bool)
        .unwrap_or(false);

    println!(
        "minobs-svc {addr} — up {:.0}s, {workers} workers{}",
        uptime_ms as f64 / 1_000.0,
        if draining { ", DRAINING" } else { "" }
    );
    println!(
        "  {qps:.1} req/s | {requests} requests ({responses_ok} ok, {responses_err} err) | {queued} queued"
    );
    println!(
        "  cache: {hit_ratio:.1}% hit ({hits} hit, {subsumed} subsumed, {misses} miss)"
    );
    println!("  {:<16} {:>8} {:>10} {:>10} {:>10}", "method", "count", "p50 µs", "p95 µs", "p99 µs");
    let empty = serde_json::Map::new();
    let latency = stats
        .get("latency")
        .and_then(Value::as_object)
        .unwrap_or(&empty);
    for (method, summary) in latency.iter() {
        let field = |name: &str| {
            summary
                .get(name)
                .and_then(Value::as_u64)
                .map(|ns| format!("{:.1}", ns as f64 / 1_000.0))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "  {method:<16} {:>8} {:>10} {:>10} {:>10}",
            summary.get("count").and_then(Value::as_u64).unwrap_or(0),
            field("p50_ns"),
            field("p95_ns"),
            field("p99_ns"),
        );
    }
    if latency.is_empty() {
        println!("  (no timed requests yet)");
    }
    render_peers(stats);

    TopSample { responses, at: now }
}

/// Prints the gossip peer table from the `stats` `peers` section. A
/// single-node daemon (or one predating the field) prints nothing.
fn render_peers(stats: &Value) {
    let Some(peers) = stats.get("peers") else {
        return;
    };
    let count = peers.get("count").and_then(Value::as_u64).unwrap_or(0);
    if count == 0 {
        return;
    }
    let alive = peers.get("alive").and_then(Value::as_u64).unwrap_or(0);
    let max_lag = peers.get("max_lag").and_then(Value::as_u64).unwrap_or(0);
    println!("  peers: {alive}/{count} alive, max lag {max_lag} shards");
    println!(
        "  {:<22} {:>6} {:>10} {:>10} {:>10} {:>6} {:>10}",
        "peer", "state", "exchanges", "deltas in", "deltas out", "lag", "last ms"
    );
    let rows = peers
        .get("table")
        .and_then(Value::as_array)
        .unwrap_or_default();
    for row in rows {
        let field = |name: &str| row.get(name).and_then(Value::as_u64).unwrap_or(0);
        let last = row
            .get("last_exchange_ms")
            .and_then(Value::as_u64)
            .map(|ms| ms.to_string())
            .unwrap_or_else(|| "-".to_string());
        println!(
            "  {:<22} {:>6} {:>10} {:>10} {:>10} {:>6} {:>10}",
            row.get("addr").and_then(Value::as_str).unwrap_or("?"),
            if row.get("alive").and_then(Value::as_bool).unwrap_or(false) {
                "up"
            } else {
                "DOWN"
            },
            field("exchanges"),
            field("deltas_in"),
            field("deltas_out"),
            field("lag"),
            last,
        );
    }
}

/// One generic null-params RPC against `addr` on a fresh
/// bounded-timeout connection. Fleet polling dials per poll so one dead
/// node cannot wedge the frame.
fn fetch(addr: &str, method: &str) -> Result<Value, String> {
    let mut client = SvcClient::connect_with_timeout(addr, Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    client.call(method, Value::Null).map_err(|e| e.to_string())
}

/// The fleet one hop out from `seed`: the seed plus every address in its
/// `stats.peers` table, in table order. Each daemon reports only its
/// *configured* peers, so point the seed at a node that gossips with the
/// whole cluster (any node works in a full mesh).
fn discover_fleet(seed: &str, seed_stats: &Value) -> Vec<String> {
    let mut fleet = vec![seed.to_string()];
    let rows = seed_stats
        .get("peers")
        .and_then(|p| p.get("table"))
        .and_then(Value::as_array);
    for row in rows.into_iter().flatten() {
        if let Some(addr) = row.get("addr").and_then(Value::as_str) {
            if fleet.iter().all(|a| a != addr) {
                fleet.push(addr.to_string());
            }
        }
    }
    fleet
}

/// Folds a node's per-method `svc.method.*.latency_ns` snapshots into
/// one histogram, so a node (and, by merging again, the fleet) gets
/// overall latency quantiles with single-histogram semantics.
fn node_latency(stats: &Value) -> Option<Histogram> {
    let histograms = stats
        .get("metrics")?
        .get("histograms")?
        .as_object()?;
    let merged = Histogram::new(&Histogram::latency_bounds());
    let mut any = false;
    for (name, snap) in histograms.iter() {
        if !(name.starts_with("svc.method.") && name.ends_with(".latency_ns")) {
            continue;
        }
        if let Some(histogram) = Histogram::from_snapshot(snap) {
            if merged.merge_from(&histogram).is_ok() && histogram.count() > 0 {
                any = true;
            }
        }
    }
    any.then_some(merged)
}

fn gauge(stats: &Value, name: &str) -> u64 {
    stats
        .get("metrics")
        .and_then(|m| m.get("gauges"))
        .and_then(|g| g.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Per-node counters carried between cluster frames to turn totals into
/// rates.
struct ClusterSample {
    responses: std::collections::HashMap<String, u64>,
    at: Instant,
}

fn cluster_top(seed: &str, interval: f64, iterations: usize, clear: bool) -> ExitCode {
    let mut previous: Option<ClusterSample> = None;
    let mut frame = 0usize;
    loop {
        let seed_stats = match fetch(seed, "stats") {
            Ok(stats) => stats,
            Err(err) => {
                eprintln!("svc top: stats from seed {seed} failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let fleet = discover_fleet(seed, &seed_stats);
        if clear {
            print!("\x1b[2J\x1b[H");
        }
        previous = Some(render_cluster_frame(
            seed,
            &fleet,
            seed_stats,
            previous.as_ref(),
        ));
        frame += 1;
        if iterations != 0 && frame >= iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// Renders one cluster frame: a row per discovered node and a fleet
/// aggregate. Latency quantiles come from bucket-merged histograms, so
/// the fleet p50/p99 has the same semantics as one shared histogram.
fn render_cluster_frame(
    seed: &str,
    fleet: &[String],
    seed_stats: Value,
    previous: Option<&ClusterSample>,
) -> ClusterSample {
    let now = Instant::now();
    let mut sample = ClusterSample {
        responses: std::collections::HashMap::new(),
        at: now,
    };
    println!("minobs-svc cluster — {} nodes via {seed}", fleet.len());
    println!(
        "  {:<34} {:>9} {:>9} {:>9} {:>9} {:>6} {:>7} {:>4} {:>4} {:>5} {:>9}",
        "node", "health", "req/s", "p50 µs", "p99 µs", "hit%", "queued", "wal", "lag", "down", "slo_viol"
    );

    let fleet_latency = Histogram::new(&Histogram::latency_bounds());
    let mut up = 0usize;
    let mut fleet_qps = 0.0f64;
    let (mut fleet_hits, mut fleet_lookups) = (0u64, 0u64);
    let mut fleet_queued = 0u64;
    let mut fleet_wal_degraded = 0usize;
    let mut fleet_lag = 0u64;
    let mut fleet_down = 0u64;
    let mut fleet_viol = 0u64;

    for (index, addr) in fleet.iter().enumerate() {
        let stats = if index == 0 {
            Ok(seed_stats.clone())
        } else {
            fetch(addr, "stats")
        };
        let stats = match stats {
            Ok(stats) => stats,
            Err(err) => {
                println!("  {addr:<34} {:>9} (unreachable: {err})", "DOWN");
                continue;
            }
        };
        up += 1;
        let health = fetch(addr, "health").ok();
        let status = health
            .as_ref()
            .and_then(|h| h.get("status"))
            .and_then(Value::as_str)
            .unwrap_or("?");
        let node_id = health
            .as_ref()
            .and_then(|h| h.get("node_id"))
            .and_then(Value::as_str)
            .unwrap_or("");
        let label = if node_id.is_empty() || node_id == addr.as_str() {
            addr.clone()
        } else {
            format!("{addr} [{node_id}]")
        };

        let responses = counter(&stats, "svc.responses_ok") + counter(&stats, "svc.responses_err");
        sample.responses.insert(addr.clone(), responses);
        let qps = match previous.and_then(|p| p.responses.get(addr)) {
            Some(&before) => {
                let dt = previous
                    .map(|p| now.duration_since(p.at).as_secs_f64())
                    .unwrap_or(0.0)
                    .max(1e-9);
                responses.saturating_sub(before) as f64 / dt
            }
            None => {
                // First sight of this node: report the lifetime average.
                let uptime_s = stats
                    .get("uptime_ms")
                    .and_then(Value::as_u64)
                    .unwrap_or(0) as f64
                    / 1_000.0;
                responses as f64 / uptime_s.max(1e-9)
            }
        };
        fleet_qps += qps;

        let latency = node_latency(&stats);
        let quant = |q: f64| {
            latency
                .as_ref()
                .and_then(|h| h.quantile(q))
                .map(|ns| format!("{:.1}", ns / 1_000.0))
                .unwrap_or_else(|| "-".to_string())
        };
        if let Some(latency) = &latency {
            let _ = fleet_latency.merge_from(latency);
        }

        let hits = counter(&stats, "svc.cache_hits") + counter(&stats, "svc.cache_subsumptions");
        let lookups = hits + counter(&stats, "svc.cache_misses");
        fleet_hits += hits;
        fleet_lookups += lookups;
        let hit_pct = if lookups > 0 {
            format!("{:.1}", hits as f64 / lookups as f64 * 100.0)
        } else {
            "-".to_string()
        };

        let queued = stats.get("queued").and_then(Value::as_u64).unwrap_or(0);
        fleet_queued += queued;
        let wal_degraded = gauge(&stats, "svc.wal_degraded") != 0;
        fleet_wal_degraded += wal_degraded as usize;
        let lag = stats
            .get("peers")
            .and_then(|p| p.get("max_lag"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        fleet_lag = fleet_lag.max(lag);
        let peers_down = {
            let count = stats
                .get("peers")
                .and_then(|p| p.get("count"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            let alive = stats
                .get("peers")
                .and_then(|p| p.get("alive"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            count.saturating_sub(alive)
        };
        fleet_down += peers_down;
        let violations = counter(&stats, "svc.slo_p99_violations");
        fleet_viol += violations;

        println!(
            "  {label:<34} {status:>9} {qps:>9.1} {:>9} {:>9} {hit_pct:>6} {queued:>7} {:>4} {lag:>4} {peers_down:>5} {violations:>9}",
            quant(0.50),
            quant(0.99),
            if wal_degraded { "DEG" } else { "ok" },
        );
    }

    let fleet_quant = |q: f64| {
        fleet_latency
            .quantile(q)
            .map(|ns| format!("{:.1}", ns / 1_000.0))
            .unwrap_or_else(|| "-".to_string())
    };
    let fleet_hit = if fleet_lookups > 0 {
        format!("{:.1}", fleet_hits as f64 / fleet_lookups as f64 * 100.0)
    } else {
        "-".to_string()
    };
    println!(
        "  {:<34} {:>9} {fleet_qps:>9.1} {:>9} {:>9} {fleet_hit:>6} {fleet_queued:>7} {:>4} {fleet_lag:>4} {fleet_down:>5} {fleet_viol:>9}",
        format!("fleet ({up}/{} up)", fleet.len()),
        if up == fleet.len() { "ok" } else { "degraded" },
        fleet_quant(0.50),
        fleet_quant(0.99),
        if fleet_wal_degraded == 0 {
            "ok".to_string()
        } else {
            format!("{fleet_wal_degraded}DEG")
        },
    );
    sample
}

fn metrics_cmd(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut all = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            "--all" => all = true,
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("svc metrics: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    let targets = if all {
        match fetch(&addr, "stats") {
            Ok(stats) => discover_fleet(&addr, &stats),
            Err(err) => {
                eprintln!("svc metrics: stats from {addr} failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        vec![addr.clone()]
    };
    let mut failures = 0usize;
    for node in &targets {
        let text = fetch(node, "metrics").and_then(|reply| {
            reply
                .get("text")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| String::from("daemon returned no exposition text"))
        });
        match text {
            Ok(text) => {
                if targets.len() > 1 {
                    println!("# ---- node {node} ----");
                }
                print!("{text}");
                if !text.ends_with('\n') {
                    println!();
                }
            }
            Err(err) => {
                eprintln!("svc metrics: {node}: {err}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// A filesystem-safe file stem for a node identity (`host:port` and
/// friends): everything outside `[A-Za-z0-9._-]` becomes `-`.
fn node_file_stem(node_id: &str) -> String {
    let stem: String = node_id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if stem.is_empty() {
        "node".to_string()
    } else {
        stem
    }
}

fn dump_cmd(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut all = false;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            "--all" => all = true,
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("svc dump: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    let targets = if all {
        match fetch(&addr, "stats") {
            Ok(stats) => discover_fleet(&addr, &stats),
            Err(err) => {
                eprintln!("svc dump: stats from {addr} failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        vec![addr.clone()]
    };
    if let Some(dir) = &out {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("svc dump: cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut failures = 0usize;
    for node in &targets {
        let reply = match fetch(node, "dump_trace") {
            Ok(reply) => reply,
            Err(err) => {
                eprintln!("svc dump: {node}: {err}");
                failures += 1;
                continue;
            }
        };
        let jsonl = match reply.get("jsonl").and_then(Value::as_str) {
            Some(jsonl) => jsonl,
            None => {
                eprintln!("svc dump: {node}: daemon returned no jsonl");
                failures += 1;
                continue;
            }
        };
        let node_id = reply
            .get("node_id")
            .and_then(Value::as_str)
            .unwrap_or(node.as_str());
        let events = reply.get("events").and_then(Value::as_u64).unwrap_or(0);
        let truncated = reply
            .get("truncated_spans")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        match &out {
            Some(dir) => {
                let path = dir.join(format!("{}.trace.jsonl", node_file_stem(node_id)));
                if let Err(err) = std::fs::write(&path, jsonl.as_bytes()) {
                    eprintln!("svc dump: cannot write {}: {err}", path.display());
                    failures += 1;
                    continue;
                }
                eprintln!(
                    "svc dump: {node} [{node_id}] → {} ({events} events, {truncated} truncated spans)",
                    path.display()
                );
            }
            None => {
                if targets.len() > 1 {
                    println!("# ---- node {node} [{node_id}] ----");
                }
                print!("{jsonl}");
                if !jsonl.is_empty() && !jsonl.ends_with('\n') {
                    println!();
                }
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_thread(addr: &str, method: &str, params: &Value, requests: usize) -> ThreadOutcome {
    let mut outcome = ThreadOutcome {
        latency: Histogram::new(&Histogram::latency_bounds()),
        max_ns: 0,
        errors: 0,
        busy: 0,
    };
    let mut client = match SvcClient::connect_with_timeout(addr, Some(Duration::from_secs(5))) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("svc bench: connect failed: {err}");
            outcome.errors = requests;
            return outcome;
        }
    };
    for _ in 0..requests {
        let start = Instant::now();
        match client.call(method, params.clone()) {
            Ok(_) => {
                let nanos = start.elapsed().as_nanos() as u64;
                outcome.latency.observe(nanos);
                outcome.max_ns = outcome.max_ns.max(nanos);
            }
            Err(SvcError::Busy(_)) => {
                // Back-pressure, not failure: the daemon's connection cap
                // also hangs up, so reconnect before continuing.
                outcome.busy += 1;
                let _ = client.reconnect();
            }
            Err(err) => {
                eprintln!("svc bench: request failed: {err}");
                outcome.errors += 1;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_fixture() -> Value {
        serde_json::from_str(
            r#"{
              "queued": 1,
              "uptime_ms": 2000,
              "peers": {
                "count": 2, "alive": 1, "max_lag": 3,
                "table": [
                  {"addr": "127.0.0.1:7402", "alive": true},
                  {"addr": "127.0.0.1:7403", "alive": false},
                  {"addr": "127.0.0.1:7402", "alive": true}
                ]
              },
              "metrics": {
                "counters": {"svc.responses_ok": 10, "svc.responses_err": 2},
                "gauges": {"svc.wal_degraded": 1},
                "histograms": {
                  "svc.method.stats.latency_ns": null,
                  "svc.requests_other": null
                }
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn node_file_stem_is_filesystem_safe() {
        assert_eq!(node_file_stem("127.0.0.1:7401"), "127.0.0.1-7401");
        assert_eq!(node_file_stem("a/b\\c d"), "a-b-c-d");
        assert_eq!(node_file_stem(""), "node");
    }

    #[test]
    fn discover_fleet_is_seed_plus_deduped_peer_table() {
        let stats = stats_fixture();
        let fleet = discover_fleet("127.0.0.1:7401", &stats);
        assert_eq!(
            fleet,
            vec![
                "127.0.0.1:7401".to_string(),
                "127.0.0.1:7402".to_string(),
                "127.0.0.1:7403".to_string(),
            ],
            "seed first, peers deduped in table order"
        );
        // A single-node daemon (empty table) discovers just itself.
        let lone: Value = serde_json::from_str(
            r#"{"peers": {"count": 0, "alive": 0, "table": []}}"#,
        )
        .unwrap();
        assert_eq!(discover_fleet("a:1", &lone), vec!["a:1".to_string()]);
    }

    #[test]
    fn node_latency_merges_only_method_histograms() {
        // Build a stats value whose histograms section holds one real
        // method snapshot and one non-method snapshot.
        let method = Histogram::new(&Histogram::latency_bounds());
        method.observe(5_000);
        method.observe(50_000);
        let other = Histogram::new(&Histogram::latency_bounds());
        other.observe(1);

        let mut histograms = Map::new();
        let snapshot_of = |h: &Histogram| {
            let mut map = Map::new();
            map.insert("count", Value::from(h.count()));
            map.insert("sum", Value::from(h.sum()));
            map.insert("bounds", Value::from(h.bounds().to_vec()));
            map.insert("buckets", Value::from(h.bucket_counts()));
            Value::Object(map)
        };
        histograms.insert("svc.method.stats.latency_ns", snapshot_of(&method));
        histograms.insert("engine.round_latency_ns", snapshot_of(&other));
        let mut metrics = Map::new();
        metrics.insert("histograms", Value::Object(histograms));
        let mut stats = Map::new();
        stats.insert("metrics", Value::Object(metrics));

        let merged = node_latency(&Value::Object(stats)).expect("method histogram present");
        assert_eq!(merged.count(), 2, "only the rpc-method histogram merges");

        // No method histograms at all → None, so callers render "-".
        let empty: Value =
            serde_json::from_str(r#"{"metrics": {"histograms": {}}}"#).unwrap();
        assert!(node_latency(&empty).is_none());
    }
}
