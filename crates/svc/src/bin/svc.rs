//! Client CLI for the solvability-query daemon.
//!
//! ```text
//! svc call <method> [params-json] [--addr HOST:PORT]
//! svc bench [--addr HOST:PORT] [--threads N] [--requests M]
//!           [--method NAME] [--params JSON]
//! ```
//!
//! The address defaults to `MINOBS_SVC_ADDR`. `bench` is a closed-loop
//! load generator: each thread opens its own connection and issues its
//! requests back to back, then latencies are pooled for percentiles.
//! The very first request is reported separately as the cold-cache
//! latency, so a warm/cold comparison is one run's output.

use minobs_svc::client::SvcClient;
use serde_json::Value;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  svc call <method> [params-json] [--addr HOST:PORT]\n  svc bench [--addr HOST:PORT] [--threads N] [--requests M] [--method NAME] [--params JSON]"
    );
    ExitCode::FAILURE
}

fn env_addr() -> Option<String> {
    std::env::var("MINOBS_SVC_ADDR")
        .ok()
        .filter(|a| !a.trim().is_empty())
        .map(|a| a.trim().to_string())
}

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "svc",
        "client and load generator for the solvability-query daemon",
        "svc call stats | svc bench --threads 2 --requests 100",
    );
    match args.first().map(String::as_str) {
        Some("call") => call(&args[1..]),
        Some("bench") => bench(&args[1..]),
        _ => usage(),
    }
}

fn call(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut method = None;
    let mut params = Value::Null;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            text if method.is_none() => method = Some(text.to_string()),
            text => match serde_json::from_str(text) {
                Ok(value) => params = value,
                Err(err) => {
                    eprintln!("svc call: params are not JSON: {err:?}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    let Some(method) = method else {
        return usage();
    };
    let Some(addr) = addr else {
        eprintln!("svc call: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    let mut client = match SvcClient::connect(addr.as_str()) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("svc call: cannot connect to {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match client.call(&method, params) {
        Ok(result) => {
            let text = serde_json::to_string_pretty(&result)
                .unwrap_or_else(|err| format!("<unprintable result: {err:?}>"));
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("svc call: {err}");
            ExitCode::FAILURE
        }
    }
}

struct ThreadOutcome {
    latencies_ns: Vec<u64>,
    errors: usize,
}

fn bench(args: &[String]) -> ExitCode {
    let mut addr = env_addr();
    let mut threads = 2usize;
    let mut requests = 50usize;
    let mut method = "check_horizon".to_string();
    let mut params_text = r#"{"scheme":"s1","horizon":6}"#.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => return usage(),
            },
            "--requests" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => return usage(),
            },
            "--method" => match it.next() {
                Some(m) => method = m.clone(),
                None => return usage(),
            },
            "--params" => match it.next() {
                Some(p) => params_text = p.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("svc bench: no address (pass --addr or set MINOBS_SVC_ADDR)");
        return ExitCode::FAILURE;
    };
    let params: Value = match serde_json::from_str(&params_text) {
        Ok(value) => value,
        Err(err) => {
            eprintln!("svc bench: params are not JSON: {err:?}");
            return ExitCode::FAILURE;
        }
    };

    // One cold probe first, on its own connection, so the cache-warming
    // request is measured separately from the closed-loop phase.
    let cold_ns = {
        let mut client = match SvcClient::connect(addr.as_str()) {
            Ok(client) => client,
            Err(err) => {
                eprintln!("svc bench: cannot connect to {addr}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let start = Instant::now();
        if let Err(err) = client.call(&method, params.clone()) {
            eprintln!("svc bench: cold request failed: {err}");
            return ExitCode::FAILURE;
        }
        start.elapsed().as_nanos() as u64
    };

    let started = Instant::now();
    let outcomes: Vec<ThreadOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let addr = addr.clone();
                let method = method.clone();
                let params = params.clone();
                scope.spawn(move || run_thread(&addr, &method, &params, requests))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    latencies.sort_unstable();
    let ok = latencies.len();
    let throughput = ok as f64 / elapsed.as_secs_f64().max(1e-9);

    println!(
        "svc bench: {threads} threads × {requests} requests of {method} against {addr}"
    );
    println!(
        "  {ok} ok, {errors} err in {:.3}s → {throughput:.1} req/s",
        elapsed.as_secs_f64()
    );
    if ok > 0 {
        println!(
            "  warm latency µs: p50 {} p90 {} p99 {} max {}",
            percentile(&latencies, 50) / 1_000,
            percentile(&latencies, 90) / 1_000,
            percentile(&latencies, 99) / 1_000,
            latencies[ok - 1] / 1_000
        );
        let warm_mean = latencies.iter().sum::<u64>() / ok as u64;
        println!(
            "  cold first request: {} µs ({:.1}× warm mean)",
            cold_ns / 1_000,
            cold_ns as f64 / warm_mean.max(1) as f64
        );
    }
    if errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_thread(addr: &str, method: &str, params: &Value, requests: usize) -> ThreadOutcome {
    let mut outcome = ThreadOutcome {
        latencies_ns: Vec::with_capacity(requests),
        errors: 0,
    };
    let mut client = match SvcClient::connect(addr) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("svc bench: connect failed: {err}");
            outcome.errors = requests;
            return outcome;
        }
    };
    for _ in 0..requests {
        let start = Instant::now();
        match client.call(method, params.clone()) {
            Ok(_) => outcome.latencies_ns.push(start.elapsed().as_nanos() as u64),
            Err(err) => {
                eprintln!("svc bench: request failed: {err}");
                outcome.errors += 1;
            }
        }
    }
    outcome
}

/// Nearest-rank percentile over sorted data.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank.min(sorted.len()) - 1]
}
