//! The sharded in-memory verdict cache.
//!
//! Keys are canonical scheme-and-alphabet serializations
//! ([`crate::spec::ParsedScheme::cache_key`]); values hold a monotone
//! [`HorizonVerdicts`] summary for `check_horizon`/`first_horizon`
//! queries plus the memoised Theorem III.8 verdict for `solvable`.
//! Sharding keeps lock hold times to a hash-map probe — workers never
//! hold a shard lock while the checker runs, so concurrent misses on the
//! same key may race to compute; both then record the same (definite,
//! order-independent) verdict.
//!
//! Every lookup feeds one of three registry counters: `svc.cache_hits`
//! (answered at the exact recorded horizon), `svc.cache_subsumptions`
//! (answered by monotonicity from a different horizon), or
//! `svc.cache_misses`.

use minobs_obs::{Counter, MetricsRegistry};
use minobs_synth::cache::{CacheAnswer, HorizonVerdicts};
use serde_json::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

const SHARDS: usize = 16;

#[derive(Default)]
struct Entry {
    verdicts: HorizonVerdicts,
    theorem: Option<Value>,
}

/// A sharded map from canonical scheme keys to verdict summaries.
pub struct VerdictCache {
    shards: Vec<Mutex<HashMap<String, Entry>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    subsumptions: Arc<Counter>,
}

impl VerdictCache {
    /// An empty cache wired onto `registry`'s `svc.cache_*` counters.
    pub fn new(registry: &MetricsRegistry) -> VerdictCache {
        VerdictCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: registry.counter("svc.cache_hits"),
            misses: registry.counter("svc.cache_misses"),
            subsumptions: registry.counter("svc.cache_subsumptions"),
        }
    }

    fn shard(&self, key: &str) -> MutexGuard<'_, HashMap<String, Entry>> {
        // FNV-1a; the std hasher is randomized per-process, which is fine
        // too, but a fixed hash keeps shard assignment reproducible.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.shards[(h as usize) % SHARDS]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Answers a horizon-`k` query for `key`, counting the disposition.
    pub fn lookup_horizon(&self, key: &str, k: usize) -> Option<CacheAnswer> {
        let answer = self
            .shard(key)
            .get(key)
            .and_then(|entry| entry.verdicts.lookup(k));
        match answer {
            Some(CacheAnswer::Exact { .. }) => self.hits.inc(),
            Some(CacheAnswer::Subsumed { .. }) => self.subsumptions.inc(),
            None => self.misses.inc(),
        }
        answer
    }

    /// Records a definite horizon verdict for `key`.
    pub fn record_horizon(&self, key: &str, k: usize, solvable: bool) {
        self.shard(key)
            .entry(key.to_string())
            .or_default()
            .verdicts
            .record(k, solvable);
    }

    /// The memoised Theorem III.8 result for `key`, counting hit/miss.
    pub fn lookup_theorem(&self, key: &str) -> Option<Value> {
        let cached = self.shard(key).get(key).and_then(|e| e.theorem.clone());
        if cached.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        cached
    }

    /// Memoises a Theorem III.8 result for `key`.
    pub fn record_theorem(&self, key: &str, result: Value) {
        self.shard(key).entry(key.to_string()).or_default().theorem = Some(result);
    }

    /// Number of cached scheme keys across all shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Every cached entry, sorted by key: the WAL compactor's source of
    /// truth, and the comparison form for restart-consistency tests.
    /// Shards are locked one at a time, so concurrent writers may land
    /// in or out of the snapshot — fine for both uses, since verdicts
    /// are immutable and only ever *added*.
    pub fn snapshot(&self) -> Vec<(String, HorizonVerdicts, Option<Value>)> {
        let mut entries: Vec<(String, HorizonVerdicts, Option<Value>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .map(|(key, entry)| (key.clone(), entry.verdicts, entry.theorem.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispositions_feed_the_counters() {
        let registry = MetricsRegistry::new();
        let cache = VerdictCache::new(&registry);
        assert!(cache.lookup_horizon("classic:s1|gamma", 2).is_none());
        cache.record_horizon("classic:s1|gamma", 2, true);
        assert!(matches!(
            cache.lookup_horizon("classic:s1|gamma", 2),
            Some(CacheAnswer::Exact { solvable: true })
        ));
        assert!(matches!(
            cache.lookup_horizon("classic:s1|gamma", 7),
            Some(CacheAnswer::Subsumed { solvable: true, proven_at: 2 })
        ));
        // Another key is independent.
        assert!(cache.lookup_horizon("classic:r1|gamma", 2).is_none());
        assert_eq!(registry.counter("svc.cache_hits").get(), 1);
        assert_eq!(registry.counter("svc.cache_subsumptions").get(), 1);
        assert_eq!(registry.counter("svc.cache_misses").get(), 2);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn theorem_verdicts_memoise() {
        let registry = MetricsRegistry::new();
        let cache = VerdictCache::new(&registry);
        assert!(cache.lookup_theorem("classic:r1|gamma").is_none());
        cache.record_theorem("classic:r1|gamma", Value::from(false));
        assert_eq!(
            cache.lookup_theorem("classic:r1|gamma"),
            Some(Value::from(false))
        );
        assert_eq!(registry.counter("svc.cache_hits").get(), 1);
        assert_eq!(registry.counter("svc.cache_misses").get(), 1);
    }
}
