//! Parsing scheme/alphabet descriptions from request params, and the
//! canonical serialization the verdict cache keys on.
//!
//! A scheme description is either a bare name (`"s1"`, `"regular_r1"`)
//! or an object `{"name": ..., ...params}`. Parsing normalises case,
//! resolves aliases, canonicalises lasso scenarios (minimal rotation and
//! cycle), and sorts/dedups scenario lists — so two syntactically
//! different descriptions of the same scheme produce the same
//! [`ParsedScheme::cache_key`] and share verdict-cache entries.

use minobs_core::prelude::*;
use minobs_omega::schemes::{
    decide_regular, regular_almost_fair, regular_avoid_prefix, regular_c1, regular_fair,
    regular_gamma_minus, regular_r1, regular_s0, regular_s1, regular_t, regular_total_budget,
    RegularScheme,
};
use minobs_synth::checker::{
    gamma_alphabet, sigma_alphabet, solvable_by_budgeted, solvable_by_par_budgeted, Budget,
    CheckResult,
};
use serde_json::Value;

/// A scheme parsed from a request, with its canonical cache-key stem.
pub struct ParsedScheme {
    kind: SchemeKind,
    canonical: String,
}

enum SchemeKind {
    Classic(ClassicScheme),
    Regular(RegularScheme),
}

impl ParsedScheme {
    /// Parses a scheme description: a name string or an object with a
    /// `name` field plus family-specific params (`scenarios`, `prefix`,
    /// `k`).
    pub fn parse(value: &Value) -> Result<ParsedScheme, String> {
        let (name, params) = match value {
            Value::String(s) => (s.as_str(), None),
            Value::Object(_) => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("scheme object needs a \"name\" string")?;
                (name, Some(value))
            }
            Value::Null => return Err("missing \"scheme\" param".to_string()),
            _ => return Err("\"scheme\" must be a name or an object".to_string()),
        };
        let name = name.trim().to_ascii_lowercase();
        let (family, bare) = match name.strip_prefix("regular_") {
            Some(rest) => ("regular", rest),
            None => ("classic", name.as_str()),
        };

        // Families that take no params.
        let plain: Option<(ClassicScheme, &str)> = match bare {
            "s0" => Some((classic::s0(), "s0")),
            "t_white" => Some((ClassicScheme::T(Role::White), "t_white")),
            "t_black" => Some((ClassicScheme::T(Role::Black), "t_black")),
            "c1" => Some((classic::c1(), "c1")),
            "s1" => Some((classic::s1(), "s1")),
            "r1" | "gamma_omega" => Some((classic::r1(), "r1")),
            "s2" | "sigma_omega" => Some((classic::s2(), "s2")),
            "fair" | "fair_gamma" => Some((classic::fair_gamma(), "fair")),
            "almost_fair" | "almost_fair_black" => {
                Some((ClassicScheme::AlmostFair(Role::Black), "almost_fair_black"))
            }
            "almost_fair_white" => {
                Some((ClassicScheme::AlmostFair(Role::White), "almost_fair_white"))
            }
            _ => None,
        };
        if let Some((scheme, canon)) = plain {
            return ParsedScheme::build(family, canon.to_string(), scheme);
        }

        // Parameterized families.
        match bare {
            "gamma_minus" => {
                let scenarios = parse_scenarios(params)?;
                let canon = format!(
                    "gamma_minus[{}]",
                    scenarios
                        .iter()
                        .map(Scenario::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                );
                ParsedScheme::build(family, canon, ClassicScheme::GammaMinus(scenarios))
            }
            "avoid_prefix" => {
                let word = parse_prefix(params)?;
                if word.to_gamma().is_none() {
                    return Err(
                        "avoid_prefix takes a Γ prefix (use sigma_avoid_prefix for 'x')"
                            .to_string(),
                    );
                }
                let canon = format!("avoid_prefix[{word}]");
                ParsedScheme::build(family, canon, ClassicScheme::AvoidPrefix(word))
            }
            "sigma_avoid_prefix" => {
                let word = parse_prefix(params)?;
                let canon = format!("sigma_avoid_prefix[{word}]");
                ParsedScheme::build(family, canon, ClassicScheme::SigmaAvoidPrefix(word))
            }
            "total_budget" => {
                let k = parse_k(params)?;
                ParsedScheme::build(
                    family,
                    format!("total_budget[{k}]"),
                    ClassicScheme::TotalBudget(k),
                )
            }
            "sigma_total_budget" => {
                let k = parse_k(params)?;
                ParsedScheme::build(
                    family,
                    format!("sigma_total_budget[{k}]"),
                    ClassicScheme::SigmaTotalBudget(k),
                )
            }
            other => Err(format!("unknown scheme {other:?}")),
        }
    }

    fn build(family: &str, canon: String, scheme: ClassicScheme) -> Result<ParsedScheme, String> {
        if family == "classic" {
            return Ok(ParsedScheme {
                kind: SchemeKind::Classic(scheme),
                canonical: format!("classic:{canon}"),
            });
        }
        // Rebuild the same family as an ω-regular scheme.
        let regular = match &scheme {
            ClassicScheme::S0 => regular_s0(),
            ClassicScheme::T(role) => regular_t(*role),
            ClassicScheme::C1 => regular_c1(),
            ClassicScheme::S1 => regular_s1(),
            ClassicScheme::R1 => regular_r1(),
            ClassicScheme::FairGamma => regular_fair(),
            ClassicScheme::AlmostFair(Role::Black) => regular_almost_fair(),
            ClassicScheme::GammaMinus(scenarios) => regular_gamma_minus(scenarios),
            ClassicScheme::TotalBudget(k) => regular_total_budget(*k),
            ClassicScheme::AvoidPrefix(word) => {
                let gamma = word.to_gamma().expect("checked Γ above");
                regular_avoid_prefix(&gamma)
            }
            other => {
                return Err(format!(
                    "no ω-regular encoding for {}",
                    OmissionScheme::name(other)
                ))
            }
        };
        Ok(ParsedScheme {
            kind: SchemeKind::Regular(regular),
            canonical: format!("regular:{canon}"),
        })
    }

    /// The scheme as the checker's trait object.
    pub fn as_omission(&self) -> &dyn OmissionScheme {
        match &self.kind {
            SchemeKind::Classic(s) => s,
            SchemeKind::Regular(s) => s,
        }
    }

    /// Human-readable scheme name (the underlying library name, not the
    /// canonical key).
    pub fn display_name(&self) -> String {
        self.as_omission().name()
    }

    /// The canonical cache-key stem, before the alphabet is appended.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The full verdict-cache key for queries under `alphabet`.
    pub fn cache_key(&self, alphabet: &[Letter]) -> String {
        format!("{}|{}", self.canonical, alphabet_tag(alphabet))
    }

    /// The alphabet used when a request does not pick one: `Γ` for
    /// schemes within `Γ^ω`, the full `Σ` otherwise.
    pub fn default_alphabet(&self) -> Vec<Letter> {
        match &self.kind {
            SchemeKind::Classic(s) if !s.is_gamma_subset() => sigma_alphabet(),
            _ => gamma_alphabet(),
        }
    }

    /// Runs the bounded checker at horizon `k` under `budget`, on the
    /// rayon-backed frontier when `parallel`. The parallel path needs the
    /// concrete (`Sync`) scheme type, hence the dispatch here rather than
    /// through [`ParsedScheme::as_omission`].
    pub fn check(
        &self,
        k: usize,
        alphabet: &[Letter],
        budget: Budget,
        parallel: bool,
    ) -> CheckResult {
        match (&self.kind, parallel) {
            (SchemeKind::Classic(s), true) => solvable_by_par_budgeted(s, k, alphabet, budget),
            (SchemeKind::Regular(s), true) => solvable_by_par_budgeted(s, k, alphabet, budget),
            _ => solvable_by_budgeted(self.as_omission(), k, alphabet, budget),
        }
    }

    /// Runs the Theorem III.8 decision procedure, or explains why it
    /// does not apply (double-omission schemes are out of its scope).
    pub fn decide(&self) -> Result<Solvability, String> {
        match &self.kind {
            SchemeKind::Classic(
                s @ (ClassicScheme::SigmaAvoidPrefix(_) | ClassicScheme::SigmaTotalBudget(_)),
            ) => Err(format!(
                "Theorem III.8 only covers schemes without double omission; \
                 check {} with check_horizon instead",
                OmissionScheme::name(s)
            )),
            SchemeKind::Classic(s) => Ok(decide_classic(s)),
            SchemeKind::Regular(s) => Ok(decide_regular(s)),
        }
    }
}

/// Parses the optional `alphabet` param: `"gamma"` (default for Γ-subset
/// schemes) or `"sigma"`.
pub fn parse_alphabet(params: &Value, scheme: &ParsedScheme) -> Result<Vec<Letter>, String> {
    match params.get("alphabet").and_then(Value::as_str) {
        None => Ok(scheme.default_alphabet()),
        Some(tag) => match tag.trim().to_ascii_lowercase().as_str() {
            "gamma" => Ok(gamma_alphabet()),
            "sigma" => Ok(sigma_alphabet()),
            other => Err(format!("unknown alphabet {other:?} (gamma or sigma)")),
        },
    }
}

fn alphabet_tag(alphabet: &[Letter]) -> &'static str {
    if alphabet.contains(&Letter::DropBoth) {
        "sigma"
    } else {
        "gamma"
    }
}

fn parse_scenarios(params: Option<&Value>) -> Result<Vec<Scenario>, String> {
    let list = params
        .and_then(|p| p.get("scenarios"))
        .and_then(Value::as_array)
        .ok_or("gamma_minus needs a \"scenarios\" array of lasso strings like \"w(b)\"")?;
    let mut scenarios = list
        .iter()
        .map(|v| {
            let text = v.as_str().ok_or("scenario entries must be strings")?;
            let scenario: Scenario = text
                .parse()
                .map_err(|e| format!("bad scenario {text:?}: {e:?}"))?;
            Ok(scenario.canonicalize())
        })
        .collect::<Result<Vec<Scenario>, String>>()?;
    // Canonical order: the excluded set is a set, not a sequence.
    scenarios.sort_by_key(Scenario::to_string);
    scenarios.dedup();
    Ok(scenarios)
}

fn parse_prefix(params: Option<&Value>) -> Result<Word, String> {
    let text = params
        .and_then(|p| p.get("prefix"))
        .and_then(Value::as_str)
        .ok_or("avoid_prefix needs a \"prefix\" string like \"-wb\"")?;
    text.parse::<Word>()
        .map_err(|e| format!("bad prefix {text:?}: {e:?}"))
}

fn parse_k(params: Option<&Value>) -> Result<usize, String> {
    let k = params
        .and_then(|p| p.get("k"))
        .and_then(Value::as_u64)
        .ok_or("total_budget needs an integer \"k\"")?;
    if k > 64 {
        return Err("total budget k capped at 64".to_string());
    }
    Ok(k as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: &Value) -> String {
        let scheme = ParsedScheme::parse(v).unwrap();
        let alphabet = scheme.default_alphabet();
        scheme.cache_key(&alphabet)
    }

    fn obj(pairs: &[(&str, Value)]) -> Value {
        let mut map = serde_json::Map::new();
        for (k, v) in pairs {
            map.insert((*k).to_string(), v.clone());
        }
        Value::Object(map)
    }

    #[test]
    fn names_normalise_to_one_key() {
        assert_eq!(key(&Value::from("s1")), key(&Value::from(" S1 ")));
        assert_eq!(
            key(&Value::from("s1")),
            key(&obj(&[("name", Value::from("s1"))]))
        );
        assert_eq!(key(&Value::from("fair")), key(&Value::from("fair_gamma")));
        assert_eq!(
            key(&Value::from("almost_fair")),
            key(&Value::from("ALMOST_FAIR_BLACK"))
        );
        // Different schemes stay distinct.
        assert_ne!(key(&Value::from("s1")), key(&Value::from("r1")));
        assert_ne!(key(&Value::from("s1")), key(&Value::from("regular_s1")));
    }

    #[test]
    fn gamma_minus_scenario_lists_canonicalise() {
        let a = obj(&[
            ("name", Value::from("gamma_minus")),
            (
                "scenarios",
                Value::from(vec![Value::from("w(b)"), Value::from("(-)")]),
            ),
        ]);
        // Reordered, duplicated, and with a non-minimal lasso for the
        // same scenarios: (-) == -(--), w(b) == w(bb).
        let b = obj(&[
            ("name", Value::from("GAMMA_MINUS")),
            (
                "scenarios",
                Value::from(vec![
                    Value::from("-(--)"),
                    Value::from("w(bb)"),
                    Value::from("(-)"),
                ]),
            ),
        ]);
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn sigma_schemes_default_to_the_sigma_alphabet() {
        let scheme = ParsedScheme::parse(&Value::from("s2")).unwrap();
        assert!(scheme.default_alphabet().contains(&Letter::DropBoth));
        let gamma = ParsedScheme::parse(&Value::from("s1")).unwrap();
        assert!(!gamma.default_alphabet().contains(&Letter::DropBoth));
        assert!(scheme.cache_key(&scheme.default_alphabet()).ends_with("|sigma"));
    }

    #[test]
    fn theorem_scope_is_enforced() {
        let sigma = ParsedScheme::parse(&obj(&[
            ("name", Value::from("sigma_total_budget")),
            ("k", Value::from(2u64)),
        ]))
        .unwrap();
        assert!(sigma.decide().is_err());
        let gamma = ParsedScheme::parse(&Value::from("r1")).unwrap();
        assert!(!gamma.decide().unwrap().is_solvable());
        let regular = ParsedScheme::parse(&Value::from("regular_s1")).unwrap();
        assert!(regular.decide().unwrap().is_solvable());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Aliases and spellings that must all resolve to one scheme.
        const SPELLINGS: &[&[&str]] = &[
            &["s1", " S1 ", "s1 "],
            &["r1", "gamma_omega", "R1"],
            &["s2", "sigma_omega", "S2"],
            &["fair", "fair_gamma", "FAIR"],
            &["almost_fair", "almost_fair_black", "Almost_Fair"],
            &["t_white", "T_WHITE", " t_white"],
        ];

        /// For each lasso: syntactically different strings denoting the
        /// same ω-word (cycle doubling, folding a cycle into the
        /// prefix, both).
        const LASSOS: &[&[&str]] = &[
            &["(-)", "(--)", "-(-)", "-(--)"],
            &["w(b)", "w(bb)", "wb(b)", "wb(bb)"],
            &["(wb)", "(wbwb)", "wb(wb)", "wb(wbwb)"],
            &["b(w)", "b(ww)", "bw(w)", "bw(ww)"],
        ];

        fn spelled(text: &str, as_object: bool) -> Value {
            if as_object {
                obj(&[("name", Value::from(text))])
            } else {
                Value::from(text)
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any two spellings of the same named scheme — alias,
            /// casing, whitespace, string vs object form — produce the
            /// same cache key.
            #[test]
            fn prop_spellings_share_a_cache_key(
                scheme in 0usize..6,
                a in 0usize..3,
                b in 0usize..3,
                obj_a in any::<bool>(),
                obj_b in any::<bool>(),
            ) {
                let left = key(&spelled(SPELLINGS[scheme][a], obj_a));
                let right = key(&spelled(SPELLINGS[scheme][b], obj_b));
                prop_assert_eq!(left, right);
            }

            /// `gamma_minus` descriptions with reordered, duplicated,
            /// and non-minimal lasso spellings of the same scenario set
            /// produce the same cache key.
            #[test]
            fn prop_gamma_minus_descriptions_share_a_cache_key(
                mask in 1usize..16,
                variants in proptest::collection::vec(0usize..4, 4),
                reverse in any::<bool>(),
                duplicate in any::<bool>(),
            ) {
                let picked: Vec<usize> = (0..4).filter(|i| mask & (1 << i) != 0).collect();
                let minimal: Vec<Value> =
                    picked.iter().map(|&i| Value::from(LASSOS[i][0])).collect();
                let mut mutated: Vec<Value> = picked
                    .iter()
                    .map(|&i| Value::from(LASSOS[i][variants[i]]))
                    .collect();
                if reverse {
                    mutated.reverse();
                }
                if duplicate {
                    mutated.push(mutated[0].clone());
                }
                let left = key(&obj(&[
                    ("name", Value::from("gamma_minus")),
                    ("scenarios", Value::from(minimal)),
                ]));
                let right = key(&obj(&[
                    ("name", Value::from("GAMMA_MINUS")),
                    ("scenarios", Value::from(mutated)),
                ]));
                prop_assert_eq!(left, right);
            }
        }
    }

    #[test]
    fn malformed_descriptions_are_rejected() {
        for bad in [
            Value::from("mystery"),
            Value::from(3u64),
            Value::Null,
            obj(&[("name", Value::from("avoid_prefix")), ("prefix", Value::from("-wx?"))]),
            obj(&[("name", Value::from("avoid_prefix")), ("prefix", Value::from("-x"))]),
            obj(&[("name", Value::from("gamma_minus"))]),
            obj(&[("name", Value::from("total_budget"))]),
            obj(&[("name", Value::from("regular_sigma_total_budget")), ("k", Value::from(1u64))]),
        ] {
            assert!(ParsedScheme::parse(&bad).is_err(), "{bad:?}");
        }
    }
}
