//! Open-loop load generation for the daemon.
//!
//! A closed-loop driver (send, wait, send) measures the *service* but
//! not the *system*: when the daemon slows down, the driver slows with
//! it, queueing delay is silently absorbed into inter-request gaps, and
//! reported latency flatters the service — the classic coordinated
//! omission trap. The open-loop driver here fixes that by issuing
//! requests on a fixed schedule of **virtual deadlines** computed from
//! the offered frequency alone:
//!
//! * thread `t` of `n` fires its `k`-th request at
//!   `(k·n + t) / freq` seconds — a per-thread phase-offset comb that
//!   interleaves to the full offered rate, and never depends on when
//!   (or whether) responses arrive;
//! * latency is measured from the **send deadline** to the response, so
//!   a request the driver itself delivered late still charges the
//!   service for the schedule slip;
//! * overload is bounded by an in-flight cap per connection, and every
//!   request refused by the cap increments an explicit
//!   [`LoadCounters::dropped_by_cap`] counter — overload is measured,
//!   never silently absorbed.
//!
//! The scheduler core ([`run_sender`]) is generic over a [`Clock`] and a
//! [`Dispatch`] so the no-drift and cap properties are provable in unit
//! tests with a mock clock; [`run_open_loop`] instantiates it over real
//! sockets against a live daemon. See `docs/BENCHMARKING.md`.

use crate::wire;
use minobs_obs::Histogram;
use serde_json::Value;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock the scheduler can sleep against.
///
/// Production uses [`SystemClock`]; tests substitute a mock whose
/// `sleep_until_ns` jumps time forward instantly, which makes the
/// deadline arithmetic — the part that must not drift — exact and fast
/// to verify.
pub trait Clock {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
    /// Blocks until `now_ns() >= deadline_ns`. Returns immediately when
    /// the deadline is already past (the schedule never stretches).
    fn sleep_until_ns(&self, deadline_ns: u64);
}

/// Monotonic wall clock anchored at construction.
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> SystemClock {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn sleep_until_ns(&self, deadline_ns: u64) {
        loop {
            let now = self.now_ns();
            if now >= deadline_ns {
                return;
            }
            std::thread::sleep(Duration::from_nanos(deadline_ns - now));
        }
    }
}

/// One entry of a method mix: a method, its call params, and its
/// relative weight.
#[derive(Debug, Clone)]
pub struct MixEntry {
    /// RPC method name.
    pub method: String,
    /// Params object sent with every call of this method.
    pub params: Value,
    /// Relative weight (calls per mix cycle).
    pub weight: u64,
}

/// Parses a `--mix` spec like `solvable=8,check_horizon=1` into
/// `(method, weight)` pairs.
///
/// Rejects empty specs, entries without `=`, empty names, unparsable or
/// zero weights, and duplicate methods — each with a message suitable
/// for a usage error (the driver must never panic on user input).
pub fn parse_mix(spec: &str) -> Result<Vec<(String, u64)>, String> {
    let mut mix: Vec<(String, u64)> = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(format!("mix {spec:?}: empty entry"));
        }
        let (name, weight) = part
            .split_once('=')
            .ok_or_else(|| format!("mix entry {part:?}: expected method=weight"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("mix entry {part:?}: empty method name"));
        }
        let weight: u64 = weight
            .trim()
            .parse()
            .map_err(|_| format!("mix entry {part:?}: weight must be a positive integer"))?;
        if weight == 0 {
            return Err(format!("mix entry {part:?}: weight must be >= 1"));
        }
        if mix.iter().any(|(existing, _)| existing == name) {
            return Err(format!("mix {spec:?}: duplicate method {name:?}"));
        }
        mix.push((name.to_string(), weight));
    }
    if mix.is_empty() {
        return Err("mix spec is empty".to_string());
    }
    Ok(mix)
}

/// Deterministic smooth weighted round-robin over mix entries.
///
/// The nginx algorithm: each step adds every entry's weight to its
/// running credit, picks the entry with the most credit, and debits the
/// picked entry by the total weight. Over any window of `total` steps
/// each entry is chosen exactly `weight` times, and picks are spread
/// evenly rather than bursted — so even a short trial sees the intended
/// mix.
pub struct MixSchedule {
    weights: Vec<u64>,
    credit: Vec<i64>,
    total: i64,
}

impl MixSchedule {
    /// A schedule over `weights` (one per mix entry, all >= 1).
    pub fn new(weights: &[u64]) -> MixSchedule {
        assert!(!weights.is_empty(), "mix schedule needs at least one entry");
        MixSchedule {
            weights: weights.to_vec(),
            credit: vec![0; weights.len()],
            total: weights.iter().map(|w| *w as i64).sum(),
        }
    }

    /// Index of the next entry to call.
    pub fn next_index(&mut self) -> usize {
        for (credit, weight) in self.credit.iter_mut().zip(&self.weights) {
            *credit += *weight as i64;
        }
        let mut best = 0;
        for i in 1..self.credit.len() {
            if self.credit[i] > self.credit[best] {
                best = i;
            }
        }
        self.credit[best] -= self.total;
        best
    }
}

/// The virtual-deadline comb for one sender thread.
///
/// Thread `thread` of `threads` fires its `k`-th request at
/// `(k·threads + thread) / freq` seconds after the run epoch. The union
/// over all threads is one request every `1/freq` seconds, and each
/// deadline is a pure function of `k` — response times never enter.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineSchedule {
    thread: u64,
    threads: u64,
    freq: f64,
}

impl DeadlineSchedule {
    /// The comb for `thread` (0-based) of `threads` at total rate
    /// `freq` requests/second.
    pub fn new(thread: usize, threads: usize, freq: f64) -> DeadlineSchedule {
        assert!(threads >= 1 && thread < threads, "thread out of range");
        assert!(freq > 0.0 && freq.is_finite(), "freq must be positive");
        DeadlineSchedule {
            thread: thread as u64,
            threads: threads as u64,
            freq,
        }
    }

    /// Nanosecond deadline of this thread's `k`-th request.
    pub fn deadline_ns(&self, k: u64) -> u64 {
        let slot = (k * self.threads + self.thread) as f64;
        (slot * 1.0e9 / self.freq) as u64
    }
}

/// Shared counters for one load run. All atomics, updated from sender
/// and reader threads without locks.
#[derive(Debug, Default)]
pub struct LoadCounters {
    /// Requests written to a connection.
    pub sent: AtomicU64,
    /// Responses received (ok or rpc-error).
    pub completed: AtomicU64,
    /// Rpc-level errors and protocol/transport failures.
    pub errors: AtomicU64,
    /// Requests refused because the in-flight cap was reached.
    pub dropped_by_cap: AtomicU64,
    /// `busy` rejections from the daemon's connection cap — back-pressure
    /// the daemon *chose* to apply, reported apart from real errors.
    pub busy: AtomicU64,
}

impl LoadCounters {
    /// Snapshot of (sent, completed, errors, dropped_by_cap, busy).
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.sent.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.dropped_by_cap.load(Ordering::Relaxed),
            self.busy.load(Ordering::Relaxed),
        )
    }
}

/// Where the scheduler hands a request off. Production writes a wire
/// frame; tests record the call.
pub trait Dispatch {
    /// Requests currently awaiting a response on this dispatcher.
    fn in_flight(&self) -> usize;
    /// Issues request `seq` for mix entry `method_idx`, charged to
    /// `deadline_ns`. An error aborts the sender (dead connection).
    fn send(&mut self, seq: u64, method_idx: usize, deadline_ns: u64) -> Result<(), String>;
}

/// Drives one sender thread's schedule until `until_ns`.
///
/// For each deadline strictly before `until_ns`, in order: sleep until
/// the deadline, pick the next mix entry, then either drop (cap
/// reached) or send. The loop never waits for a response, and the
/// deadline passed to [`Dispatch::send`] is the *scheduled* time — late
/// sends are charged from when they should have happened. Returns the
/// number of deadlines taken (sent + dropped); every one satisfies
/// `sent + dropped_by_cap == returned`.
pub fn run_sender<C: Clock, D: Dispatch>(
    clock: &C,
    schedule: &DeadlineSchedule,
    mix: &mut MixSchedule,
    counters: &LoadCounters,
    dispatch: &mut D,
    until_ns: u64,
    inflight_cap: usize,
) -> u64 {
    let mut k = 0u64;
    loop {
        let deadline = schedule.deadline_ns(k);
        if deadline >= until_ns {
            return k;
        }
        clock.sleep_until_ns(deadline);
        let method_idx = mix.next_index();
        if dispatch.in_flight() >= inflight_cap {
            counters.dropped_by_cap.fetch_add(1, Ordering::Relaxed);
        } else if dispatch.send(k, method_idx, deadline).is_err() {
            // Dead connection: the remaining schedule cannot be offered.
            counters.errors.fetch_add(1, Ordering::Relaxed);
            return k + 1;
        } else {
            counters.sent.fetch_add(1, Ordering::Relaxed);
        }
        k += 1;
    }
}

/// Records one completed request: latency is measured from the send
/// *deadline*, not the actual send, so schedule slip inside the driver
/// still counts against the service (no coordinated omission).
pub fn observe_completion(
    latency: &Histogram,
    max_latency_ns: &AtomicU64,
    counters: &LoadCounters,
    deadline_ns: u64,
    now_ns: u64,
    ok: bool,
) {
    let nanos = now_ns.saturating_sub(deadline_ns);
    latency.observe(nanos);
    let mut seen = max_latency_ns.load(Ordering::Relaxed);
    while nanos > seen {
        match max_latency_ns.compare_exchange_weak(
            seen,
            nanos,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(actual) => seen = actual,
        }
    }
    counters.completed.fetch_add(1, Ordering::Relaxed);
    if !ok {
        counters.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Configuration for one open-loop run against a live daemon.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Total offered rate across all threads, requests/second.
    pub freq: f64,
    /// Trial length (the drain afterwards is extra).
    pub duration: Duration,
    /// Sender threads, one connection each.
    pub threads: usize,
    /// Method mix (weights need not be normalised).
    pub mix: Vec<MixEntry>,
    /// Max requests awaiting a response per connection; beyond it new
    /// deadlines are dropped and counted.
    pub inflight_cap: usize,
    /// Stats-tick interval on stderr; `None` disables ticks.
    pub tick: Option<Duration>,
}

/// The measured outcome of one open-loop run.
pub struct OpenLoopSummary {
    /// Offered rate (== config freq).
    pub offered_qps: f64,
    /// Completed responses per second of total wall clock (send window
    /// plus drain) — structurally `<= offered_qps`.
    pub achieved_qps: f64,
    /// Requests written.
    pub sent: u64,
    /// Responses received.
    pub completed: u64,
    /// Rpc errors plus transport failures.
    pub errors: u64,
    /// Requests refused by the in-flight cap.
    pub dropped_by_cap: u64,
    /// `busy` rejections from the daemon's connection cap.
    pub busy: u64,
    /// Total wall clock including drain, seconds.
    pub elapsed_s: f64,
    /// Deadline→response latency, merged across threads.
    pub latency: Histogram,
    /// Exact maximum observed latency in nanoseconds (the histogram's
    /// top bucket is an estimate; this is not).
    pub max_latency_ns: u64,
}

struct SocketDispatch {
    writer: BufWriter<TcpStream>,
    pending: mpsc::Sender<(u64, u64, usize)>,
    in_flight: Arc<AtomicUsize>,
    methods: Vec<(String, Value)>,
}

impl Dispatch for SocketDispatch {
    fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    fn send(&mut self, seq: u64, method_idx: usize, deadline_ns: u64) -> Result<(), String> {
        let (method, params) = &self.methods[method_idx];
        // The pending entry must precede the write: the daemon answers
        // in order, so the reader matches responses to entries FIFO.
        self.pending
            .send((seq, deadline_ns, method_idx))
            .map_err(|_| "reader thread gone".to_string())?;
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        wire::write_frame(&mut self.writer, &wire::request(seq, method, params.clone()))
            .map_err(|e| e.to_string())
    }
}

/// Runs one open-loop trial against the daemon at `addr`.
///
/// Each sender thread owns one connection and a paired reader thread;
/// the daemon answers a connection's frames in order, so the reader
/// matches responses to the FIFO of (id, deadline) entries the sender
/// queued before each write. After the send window the drivers drain
/// outstanding responses (bounded by a read timeout) before the
/// summary is computed, so `achieved_qps` counts only real completions.
pub fn run_open_loop(addr: &str, config: &OpenLoopConfig) -> Result<OpenLoopSummary, String> {
    if config.threads == 0 {
        return Err("open-loop driver needs at least one thread".to_string());
    }
    if config.mix.is_empty() {
        return Err("open-loop driver needs a non-empty mix".to_string());
    }
    let clock = Arc::new(SystemClock::new());
    let counters = Arc::new(LoadCounters::default());
    let max_latency_ns = Arc::new(AtomicU64::new(0));
    let live_inflight = Arc::new(AtomicUsize::new(0));
    let until_ns = u64::try_from(config.duration.as_nanos()).unwrap_or(u64::MAX);

    let weights: Vec<u64> = config.mix.iter().map(|e| e.weight).collect();
    let methods: Vec<(String, Value)> = config
        .mix
        .iter()
        .map(|e| (e.method.clone(), e.params.clone()))
        .collect();

    let mut handles = Vec::with_capacity(config.threads);
    for thread in 0..config.threads {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        read_half
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| format!("set timeout: {e}"))?;

        let (tx, rx) = mpsc::channel::<(u64, u64, usize)>();
        let schedule = DeadlineSchedule::new(thread, config.threads, config.freq);
        let mut mix = MixSchedule::new(&weights);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let mut dispatch = SocketDispatch {
            writer: BufWriter::new(stream),
            pending: tx,
            in_flight: Arc::clone(&in_flight),
            methods: methods.clone(),
        };

        let reader = {
            let clock = Arc::clone(&clock);
            let counters = Arc::clone(&counters);
            let in_flight = Arc::clone(&in_flight);
            let live_inflight = Arc::clone(&live_inflight);
            let max_latency_ns = Arc::clone(&max_latency_ns);
            let thread_latency = Histogram::new(&Histogram::latency_bounds());
            std::thread::spawn(move || {
                let mut reader = BufReader::new(read_half);
                while let Ok((id, deadline_ns, _method_idx)) = rx.recv() {
                    let response = match wire::read_frame(&mut reader) {
                        Ok(Some(v)) => {
                            // The acceptor's at-cap rejection carries id 0
                            // and precedes a hangup: count it as back-
                            // pressure, then drain the queue as lost.
                            let busy = v
                                .get("error")
                                .and_then(|e| e.get("code"))
                                .and_then(Value::as_str)
                                == Some("busy");
                            if busy {
                                counters.busy.fetch_add(1, Ordering::Relaxed);
                                while rx.try_recv().is_ok() {
                                    counters.errors.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            v
                        }
                        Ok(None) | Err(_) => {
                            // Dead connection: everything still queued is
                            // lost; count this entry and drain the rest.
                            counters.errors.fetch_add(1, Ordering::Relaxed);
                            while rx.try_recv().is_ok() {
                                counters.errors.fetch_add(1, Ordering::Relaxed);
                            }
                            break;
                        }
                    };
                    let now = clock.now_ns();
                    let ok = response.get("ok").and_then(Value::as_bool) == Some(true)
                        && response.get("id").and_then(Value::as_u64) == Some(id);
                    observe_completion(
                        &thread_latency,
                        &max_latency_ns,
                        &counters,
                        deadline_ns,
                        now,
                        ok,
                    );
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                    live_inflight.store(in_flight.load(Ordering::Acquire), Ordering::Relaxed);
                }
                thread_latency
            })
        };

        let sender = {
            let clock = Arc::clone(&clock);
            let counters = Arc::clone(&counters);
            let cap = config.inflight_cap;
            std::thread::spawn(move || {
                run_sender(
                    &*clock,
                    &schedule,
                    &mut mix,
                    &counters,
                    &mut dispatch,
                    until_ns,
                    cap,
                );
            })
        };

        handles.push((sender, reader));
    }

    // Tick loop: report progress while the first sender is still inside
    // its window, then join every pair (the join drains the remainder).
    let merged = Histogram::new(&Histogram::latency_bounds());
    let mut next_tick = config.tick.map(|t| t.as_nanos() as u64);
    for (joined, (sender, reader)) in handles.into_iter().enumerate() {
        while let Some(tick_at) = next_tick {
            if sender.is_finished() {
                break;
            }
            let now = clock.now_ns();
            if now >= tick_at {
                let (sent, completed, errors, dropped, busy) = counters.snapshot();
                eprintln!(
                    "[bench] t={:.1}s sent={sent} completed={completed} errors={errors} dropped_by_cap={dropped} busy={busy} inflight={}",
                    now as f64 / 1.0e9,
                    live_inflight.load(Ordering::Relaxed),
                );
                next_tick = Some(tick_at + config.tick.unwrap().as_nanos() as u64);
            } else {
                std::thread::sleep(Duration::from_millis(
                    ((tick_at - now) / 1_000_000).clamp(1, 200),
                ));
            }
        }
        sender.join().map_err(|_| "sender thread panicked")?;
        let thread_latency = reader.join().map_err(|_| "reader thread panicked")?;
        merged
            .merge_from(&thread_latency)
            .map_err(|e| format!("merge thread {joined}: {e}"))?;
    }

    // Elapsed runs from the schedule epoch through the drain, floored at
    // the configured window so edge-of-window rounding (at most one
    // extra deadline fits before `until_ns`) cannot push achieved above
    // offered.
    let elapsed_s = (clock.now_ns() as f64 / 1.0e9).max(config.duration.as_secs_f64());
    let (sent, completed, errors, dropped_by_cap, busy) = counters.snapshot();
    Ok(OpenLoopSummary {
        offered_qps: config.freq,
        achieved_qps: (completed as f64 / elapsed_s).min(config.freq),
        sent,
        completed,
        errors,
        dropped_by_cap,
        busy,
        elapsed_s,
        latency: merged,
        max_latency_ns: max_latency_ns.load(Ordering::Relaxed),
    })
}

/// A parsed `--sweep lo:hi:steps` spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec {
    /// Lowest offered frequency, requests/second.
    pub lo: f64,
    /// Highest offered frequency, requests/second.
    pub hi: f64,
    /// Number of trial points, linearly spaced inclusive of both ends.
    pub steps: usize,
}

impl SweepSpec {
    /// Parses `lo:hi:steps` (e.g. `100:2000:5`); `steps >= 2`,
    /// `0 < lo <= hi`.
    pub fn parse(spec: &str) -> Result<SweepSpec, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("sweep {spec:?}: expected lo:hi:steps"));
        }
        let lo: f64 = parts[0]
            .trim()
            .parse()
            .map_err(|_| format!("sweep {spec:?}: lo must be a number"))?;
        let hi: f64 = parts[1]
            .trim()
            .parse()
            .map_err(|_| format!("sweep {spec:?}: hi must be a number"))?;
        let steps: usize = parts[2]
            .trim()
            .parse()
            .map_err(|_| format!("sweep {spec:?}: steps must be an integer"))?;
        if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || hi < lo {
            return Err(format!("sweep {spec:?}: need 0 < lo <= hi"));
        }
        if steps < 2 {
            return Err(format!("sweep {spec:?}: need steps >= 2"));
        }
        Ok(SweepSpec { lo, hi, steps })
    }

    /// The trial frequencies, lo..=hi linearly spaced.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.steps)
            .map(|i| self.lo + (self.hi - self.lo) * i as f64 / (self.steps - 1) as f64)
            .collect()
    }
}

/// One sweep trial's outcome, as seen by the knee finder.
#[derive(Debug, Clone, Copy)]
pub struct TrialPoint {
    /// Offered rate.
    pub offered_qps: f64,
    /// Achieved rate.
    pub achieved_qps: f64,
    /// p99 latency in nanoseconds (`None` when nothing completed).
    pub p99_ns: Option<f64>,
}

/// When a sweep trial counts as saturated.
#[derive(Debug, Clone, Copy)]
pub struct KneeCriteria {
    /// Saturated when `achieved < achieved_ratio * offered` (0.9 per
    /// the standard definition).
    pub achieved_ratio: f64,
    /// Saturated when p99 exceeds this bound, if set.
    pub p99_bound_ns: Option<f64>,
}

impl Default for KneeCriteria {
    fn default() -> KneeCriteria {
        KneeCriteria {
            achieved_ratio: 0.9,
            p99_bound_ns: None,
        }
    }
}

/// Index of the saturation knee: the first trial where achieved
/// throughput falls below `achieved_ratio` of offered, or p99 exceeds
/// the bound. `None` when the sweep never saturates.
pub fn find_knee(trials: &[TrialPoint], criteria: &KneeCriteria) -> Option<usize> {
    trials.iter().position(|t| {
        let starved = t.achieved_qps < criteria.achieved_ratio * t.offered_qps;
        let slow = match (criteria.p99_bound_ns, t.p99_ns) {
            (Some(bound), Some(p99)) => p99 > bound,
            // A trial where nothing completed is saturated by definition.
            (Some(_), None) => true,
            (None, _) => false,
        };
        starved || slow
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A clock whose `sleep_until_ns` jumps straight to the deadline.
    struct MockClock {
        now: AtomicU64,
    }

    impl MockClock {
        fn new() -> MockClock {
            MockClock {
                now: AtomicU64::new(0),
            }
        }

        fn advance(&self, ns: u64) {
            self.now.fetch_add(ns, Ordering::SeqCst);
        }
    }

    impl Clock for MockClock {
        fn now_ns(&self) -> u64 {
            self.now.load(Ordering::SeqCst)
        }

        fn sleep_until_ns(&self, deadline_ns: u64) {
            // fetch_max: never travels back in time when the deadline
            // is already past.
            self.now.fetch_max(deadline_ns, Ordering::SeqCst);
        }
    }

    /// Records every send; a configurable number of responses are
    /// "stuck" forever (in_flight never drains below that level).
    struct RecordingDispatch<'a> {
        clock: &'a MockClock,
        /// Simulated per-request service delay added to the clock on
        /// every send — a "slow server" that the schedule must ignore.
        service_delay_ns: u64,
        stuck_in_flight: usize,
        sends: Mutex<Vec<(u64, usize, u64)>>,
    }

    impl Dispatch for RecordingDispatch<'_> {
        fn in_flight(&self) -> usize {
            self.stuck_in_flight
        }

        fn send(&mut self, seq: u64, method_idx: usize, deadline_ns: u64) -> Result<(), String> {
            self.clock.advance(self.service_delay_ns);
            self.sends.lock().unwrap().push((seq, method_idx, deadline_ns));
            Ok(())
        }
    }

    #[test]
    fn deadlines_interleave_per_thread_phase() {
        // 2 threads at 10 Hz total: thread 0 fires at 0, 200ms, 400ms…
        // and thread 1 at 100ms, 300ms, 500ms…
        let s0 = DeadlineSchedule::new(0, 2, 10.0);
        let s1 = DeadlineSchedule::new(1, 2, 10.0);
        assert_eq!(s0.deadline_ns(0), 0);
        assert_eq!(s1.deadline_ns(0), 100_000_000);
        assert_eq!(s0.deadline_ns(1), 200_000_000);
        assert_eq!(s1.deadline_ns(1), 300_000_000);
    }

    #[test]
    fn slow_responses_never_drift_the_schedule() {
        // A server taking 50ms per request against a 100 req/s
        // schedule: a closed-loop driver would degrade to 20 req/s, but
        // the open-loop schedule must keep every deadline exactly at
        // k/freq and still take all of them.
        let clock = MockClock::new();
        let schedule = DeadlineSchedule::new(0, 1, 100.0);
        let mut mix = MixSchedule::new(&[1]);
        let counters = LoadCounters::default();
        let mut dispatch = RecordingDispatch {
            clock: &clock,
            service_delay_ns: 50_000_000,
            stuck_in_flight: 0,
            sends: Mutex::new(Vec::new()),
        };
        let one_second = 1_000_000_000;
        let taken = run_sender(
            &clock,
            &schedule,
            &mut mix,
            &counters,
            &mut dispatch,
            one_second,
            usize::MAX,
        );
        assert_eq!(taken, 100, "100 deadlines fit in one second at 100 Hz");
        let sends = dispatch.sends.into_inner().unwrap();
        assert_eq!(sends.len(), 100);
        for (k, (seq, _method, deadline)) in sends.iter().enumerate() {
            assert_eq!(*seq, k as u64);
            // The recorded deadline is the scheduled instant, untouched
            // by the 50ms the "server" burned on every earlier request.
            assert_eq!(*deadline, k as u64 * 10_000_000, "deadline {k} drifted");
        }
        assert_eq!(counters.sent.load(Ordering::Relaxed), 100);
        assert_eq!(counters.dropped_by_cap.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn inflight_cap_drops_are_counted_not_absorbed() {
        let clock = MockClock::new();
        let schedule = DeadlineSchedule::new(0, 1, 100.0);
        let mut mix = MixSchedule::new(&[1]);
        let counters = LoadCounters::default();
        // Everything is permanently stuck at the cap: every deadline
        // must be dropped and counted; none may block or send.
        let mut dispatch = RecordingDispatch {
            clock: &clock,
            service_delay_ns: 0,
            stuck_in_flight: 8,
            sends: Mutex::new(Vec::new()),
        };
        let taken = run_sender(
            &clock,
            &schedule,
            &mut mix,
            &counters,
            &mut dispatch,
            1_000_000_000,
            8,
        );
        assert_eq!(taken, 100);
        assert_eq!(counters.sent.load(Ordering::Relaxed), 0);
        assert_eq!(counters.dropped_by_cap.load(Ordering::Relaxed), 100);
        assert!(dispatch.sends.lock().unwrap().is_empty());
        // sent + dropped accounts for every scheduled deadline.
        let (sent, _, _, dropped, busy) = counters.snapshot();
        assert_eq!(sent + dropped, taken);
        assert_eq!(busy, 0);
    }

    #[test]
    fn latency_is_measured_from_the_send_deadline() {
        let latency = Histogram::new(&Histogram::latency_bounds());
        let max_ns = AtomicU64::new(0);
        let counters = LoadCounters::default();
        // Scheduled at t=100µs, answered at t=350µs: 250µs of latency,
        // regardless of when the driver actually got the bytes out.
        observe_completion(&latency, &max_ns, &counters, 100_000, 350_000, true);
        assert_eq!(latency.count(), 1);
        assert_eq!(latency.sum(), 250_000);
        assert_eq!(max_ns.load(Ordering::Relaxed), 250_000);
        assert_eq!(counters.completed.load(Ordering::Relaxed), 1);
        assert_eq!(counters.errors.load(Ordering::Relaxed), 0);
        // An rpc error still completes (the round trip happened) but
        // counts as an error.
        observe_completion(&latency, &max_ns, &counters, 400_000, 500_000, false);
        assert_eq!(counters.completed.load(Ordering::Relaxed), 2);
        assert_eq!(counters.errors.load(Ordering::Relaxed), 1);
        assert_eq!(max_ns.load(Ordering::Relaxed), 250_000);
    }

    #[test]
    fn mix_parser_accepts_weighted_specs() {
        let mix = parse_mix("solvable=8,check_horizon=1,net_solvable=1").unwrap();
        assert_eq!(
            mix,
            vec![
                ("solvable".to_string(), 8),
                ("check_horizon".to_string(), 1),
                ("net_solvable".to_string(), 1),
            ]
        );
    }

    #[test]
    fn mix_parser_rejects_malformed_specs_with_messages() {
        for bad in [
            "",
            "solvable",
            "solvable=",
            "=8",
            "solvable=zero",
            "solvable=0",
            "solvable=8,solvable=1",
            "solvable=8,,stats=1",
            "solvable=-2",
        ] {
            let err = parse_mix(bad).expect_err(bad);
            assert!(!err.is_empty(), "{bad:?} should explain itself");
        }
    }

    #[test]
    fn mix_schedule_honours_weights_smoothly() {
        let mut schedule = MixSchedule::new(&[4, 1]);
        let picks: Vec<usize> = (0..10).map(|_| schedule.next_index()).collect();
        assert_eq!(picks.iter().filter(|&&p| p == 0).count(), 8);
        assert_eq!(picks.iter().filter(|&&p| p == 1).count(), 2);
        // Smooth WRR spreads the minority entry out instead of bursting
        // it at a cycle boundary.
        assert_ne!(picks[..5].iter().filter(|&&p| p == 1).count(), 0);
    }

    #[test]
    fn sweep_spec_parses_and_spaces_frequencies() {
        let spec = SweepSpec::parse("100:500:5").unwrap();
        assert_eq!(spec.frequencies(), vec![100.0, 200.0, 300.0, 400.0, 500.0]);
        for bad in ["", "100:500", "0:500:5", "500:100:5", "100:500:1", "a:b:c"] {
            assert!(SweepSpec::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn knee_finder_locates_first_saturated_trial() {
        let trials = [
            TrialPoint { offered_qps: 100.0, achieved_qps: 100.0, p99_ns: Some(1.0e6) },
            TrialPoint { offered_qps: 200.0, achieved_qps: 198.0, p99_ns: Some(2.0e6) },
            TrialPoint { offered_qps: 300.0, achieved_qps: 250.0, p99_ns: Some(9.0e6) },
            TrialPoint { offered_qps: 400.0, achieved_qps: 240.0, p99_ns: Some(50.0e6) },
        ];
        // 250 < 0.9 * 300 → the knee is the third trial.
        assert_eq!(find_knee(&trials, &KneeCriteria::default()), Some(2));
        // A p99 bound can pull the knee earlier.
        let strict = KneeCriteria { achieved_ratio: 0.9, p99_bound_ns: Some(1.5e6) };
        assert_eq!(find_knee(&trials, &strict), Some(1));
        // An unsaturated sweep has no knee.
        assert_eq!(find_knee(&trials[..2], &KneeCriteria::default()), None);
    }
}
