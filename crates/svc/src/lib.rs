//! `minobs-svc`: a concurrent solvability-query service.
//!
//! A long-running TCP daemon ([`server::serve`]) answers solvability
//! queries over a length-prefixed JSON protocol ([`wire`]): Theorem
//! III.8 verdicts (`solvable`), bounded-horizon checks (`check_horizon`,
//! `first_horizon`), network solvability via Theorem V.1
//! (`net_solvable`), scripted simulations of `A_w` and flooding
//! consensus (`simulate`), plus `stats` and `shutdown`.
//!
//! The centerpiece is a sharded verdict cache ([`cache::VerdictCache`])
//! keyed on canonical scheme serializations ([`spec::ParsedScheme`])
//! with **monotone horizon subsumption**: a `Solvable` verdict at
//! horizon `k` answers every query at `k' ≥ k`, an `Unsolvable` verdict
//! at `k` answers every `k' ≤ k` (see `minobs_synth::cache` for the
//! proof sketch). Cache hits, misses, and subsumptions are counted in
//! the daemon's metrics registry and surfaced by `stats`; every request
//! emits `svc_request`/`svc_response` trace events through the standard
//! recorder pipeline.
//!
//! Daemons can form a replicated cluster: a background [`gossip`] loop
//! exchanges per-shard digests with configured peers and ships missing
//! verdicts as `minobs/wal/v1`-shaped deltas (convergent because bounds
//! only tighten), while [`cluster_client::ClusterClient`] routes each
//! key to its ring owner with failover. See `docs/CLUSTER.md`.
//!
//! See `docs/SERVICE.md` for the wire format and method reference.

pub mod cache;
pub mod client;
pub mod cluster_client;
pub mod gossip;
pub mod loadgen;
pub mod methods;
pub mod server;
pub mod spec;
pub mod wal;
pub mod wire;

pub use cache::VerdictCache;
pub use client::{RetryPolicy, SvcClient, SvcError};
pub use cluster_client::ClusterClient;
pub use server::{serve, Limits, Server, ServerState, SvcConfig};
pub use spec::ParsedScheme;
