//! The crash-safe write-ahead verdict log (`minobs/wal/v1`).
//!
//! Verdicts are immutable theorems, which makes persistence unusually
//! clean: a record is never updated or invalidated, only *subsumed* by a
//! tighter boundary, so the log is append-only, replay is idempotent,
//! and replay order does not matter. The daemon appends one record per
//! fresh definite verdict and replays the whole log at startup to warm
//! the [`VerdictCache`].
//!
//! ## On-disk format
//!
//! An 8-byte magic (`MOBSWAL1`) followed by length-prefixed,
//! CRC32-checksummed records:
//!
//! ```text
//! [len: u32 BE] [crc32(payload): u32 BE] [payload: len bytes of JSON]
//! ```
//!
//! Payloads are one JSON object each (see [`WalRecord`]): a `horizon`
//! delta, a `theorem` memo, or a `snapshot` written by compaction.
//!
//! ## Recovery semantics
//!
//! Replay consumes the longest valid prefix. The first record that is
//! truncated, fails its checksum, parses to garbage, or contradicts the
//! monotone boundaries already replayed ends the replay — the tail is
//! *dropped, never served*: a half-written crash tail can lose the last
//! verdicts, but can never produce a wrong one. The file is truncated
//! back to the valid prefix before appending resumes, so a torn tail
//! does not corrupt post-restart records.
//!
//! ## Compaction
//!
//! Deltas for the same key accumulate (each boundary tightening leaves
//! the looser record dead). When dead records exceed
//! [`CompactionPolicy::dead_ratio`], the live cache is rewritten as one
//! `snapshot` record per key into a temp file, atomically renamed over
//! the log. Crash before the rename leaves the old log; crash after
//! leaves the new one — never a mix.
//!
//! ## Fault injection
//!
//! All writes go through the [`WalFile`] trait, so harnesses can inject
//! crash-after-N-bytes and `ENOSPC`-style failures (see
//! `minobs_chaos::fault::FaultPlan` and `tests/wal_recovery.rs`). A
//! failed append permanently degrades the daemon to memory-only mode:
//! the `svc.wal_degraded` gauge flips to 1 and a `wal_degraded` trace
//! event is emitted, but queries keep answering.

use crate::cache::VerdictCache;
use minobs_synth::cache::HorizonVerdicts;
use serde_json::{Map, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Version tag carried by every record payload.
pub const WAL_SCHEMA: &str = "minobs/wal/v1";
/// File magic; a file not starting with this is not a WAL.
pub const MAGIC: &[u8; 8] = b"MOBSWAL1";
/// Hard cap on one record's payload, mirroring the RPC frame cap; a
/// length prefix beyond it is treated as corruption, not an allocation.
pub const MAX_RECORD: u32 = 16 * 1024 * 1024;
/// Appends between automatic buffer flushes; bounds the crash-loss
/// window without putting an fsync on the request path.
const FLUSH_EVERY: u64 = 64;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// One WAL payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A fresh definite horizon verdict (`VerdictCache::record_horizon`).
    Horizon {
        /// Canonical cache key.
        key: String,
        /// The horizon checked.
        k: usize,
        /// The definite verdict at `k`.
        solvable: bool,
    },
    /// A memoised Theorem III.8 verdict (`VerdictCache::record_theorem`).
    Theorem {
        /// Canonical cache key (`…|theorem`).
        key: String,
        /// The full memoised result object.
        result: Value,
    },
    /// One key's whole entry, written by compaction.
    Snapshot {
        /// Canonical cache key.
        key: String,
        /// Both monotone boundaries.
        verdicts: HorizonVerdicts,
        /// The theorem memo, when one exists.
        theorem: Option<Value>,
    },
}

impl WalRecord {
    /// Stable operation name, also used by `wal_append` trace events.
    pub fn op(&self) -> &'static str {
        match self {
            WalRecord::Horizon { .. } => "horizon",
            WalRecord::Theorem { .. } => "theorem",
            WalRecord::Snapshot { .. } => "snapshot",
        }
    }

    /// The canonical key the record is about.
    pub fn key(&self) -> &str {
        match self {
            WalRecord::Horizon { key, .. }
            | WalRecord::Theorem { key, .. }
            | WalRecord::Snapshot { key, .. } => key,
        }
    }

    /// Serialises to the JSON payload (without framing).
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("wal".to_string(), Value::from(WAL_SCHEMA));
        map.insert("op".to_string(), Value::from(self.op()));
        map.insert("key".to_string(), Value::from(self.key()));
        match self {
            WalRecord::Horizon { k, solvable, .. } => {
                map.insert("k".to_string(), Value::from(*k as u64));
                map.insert("solvable".to_string(), Value::from(*solvable));
            }
            WalRecord::Theorem { result, .. } => {
                map.insert("result".to_string(), result.clone());
            }
            WalRecord::Snapshot {
                verdicts, theorem, ..
            } => {
                map.insert("verdicts".to_string(), verdicts.to_json());
                map.insert(
                    "theorem".to_string(),
                    theorem.clone().unwrap_or(Value::Null),
                );
            }
        }
        Value::Object(map)
    }

    /// Parses one payload; `None` on anything malformed — the caller
    /// treats that as a corrupt tail, not an error to propagate.
    pub fn from_json(value: &Value) -> Option<WalRecord> {
        if value.get("wal").and_then(Value::as_str) != Some(WAL_SCHEMA) {
            return None;
        }
        let key = value.get("key").and_then(Value::as_str)?.to_string();
        match value.get("op").and_then(Value::as_str)? {
            "horizon" => Some(WalRecord::Horizon {
                key,
                k: usize::try_from(value.get("k")?.as_u64()?).ok()?,
                solvable: value.get("solvable")?.as_bool()?,
            }),
            "theorem" => Some(WalRecord::Theorem {
                key,
                result: value.get("result")?.clone(),
            }),
            "snapshot" => Some(WalRecord::Snapshot {
                key,
                verdicts: HorizonVerdicts::from_json(value.get("verdicts")?)?,
                theorem: match value.get("theorem")? {
                    Value::Null => None,
                    v => Some(v.clone()),
                },
            }),
            _ => None,
        }
    }

    /// Frames the record for appending: length, checksum, payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = serde_json::to_string(&self.to_json())
            .expect("WAL payloads are plain JSON objects")
            .into_bytes();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// Where WAL bytes go. Production is a buffered file; harnesses inject
/// in-memory or failing implementations.
pub trait WalFile: Send {
    /// Appends `frame` at the end of the log.
    fn append(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Pushes buffered bytes to the OS.
    fn flush(&mut self) -> io::Result<()>;
}

struct DiskFile(BufWriter<File>);

impl WalFile for DiskFile {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.0.write_all(frame)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

/// An in-memory [`WalFile`] over a shared byte buffer, for tests and
/// fault harnesses: the handle stays readable after the "process" (the
/// [`Wal`]) is dropped, exactly like a disk surviving a crash.
#[derive(Clone, Default)]
pub struct MemoryWalFile {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemoryWalFile {
    /// An empty in-memory log.
    pub fn new() -> MemoryWalFile {
        MemoryWalFile::default()
    }

    /// A copy of everything appended so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.bytes.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl WalFile for MemoryWalFile {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.bytes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(frame);
        Ok(())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// When the log is rewritten from the live cache.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Compaction is never considered below this many records.
    pub min_records: u64,
    /// Trigger once `dead / total` exceeds this ratio, where dead
    /// records are those no longer backing a live cache entry.
    pub dead_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            min_records: 1024,
            dead_ratio: 0.5,
        }
    }
}

/// What one compaction did.
#[derive(Debug, Clone, Copy)]
pub struct CompactionStats {
    /// Records in the log before the rewrite.
    pub records_before: u64,
    /// Snapshot records written.
    pub records_after: u64,
}

/// The outcome of replaying a log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records applied to the cache.
    pub records: u64,
    /// Bytes of valid log consumed, magic included.
    pub bytes: u64,
    /// Whether an invalid tail was found and dropped.
    pub dropped_tail: bool,
}

/// Replays framed records from `bytes` (magic included) into `cache`.
///
/// Stops at the first truncated, checksum-failing, unparsable, or
/// monotonicity-contradicting record; everything after it is reported
/// as a dropped tail. Never fails: a WAL that is garbage from byte 0
/// simply replays 0 records.
pub fn replay_bytes(bytes: &[u8], cache: &VerdictCache) -> ReplayReport {
    let mut report = ReplayReport::default();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        report.dropped_tail = !bytes.is_empty();
        return report;
    }
    // Verdicts are validated against a local view before touching the
    // shared cache, so a corrupt-but-checksummed record can never plant
    // a contradiction (and `HorizonVerdicts::record`'s monotonicity
    // debug-assert can never trip on hostile input).
    let mut staged: std::collections::HashMap<String, (HorizonVerdicts, Option<Value>)> =
        std::collections::HashMap::new();
    let mut offset = MAGIC.len();
    loop {
        let remaining = &bytes[offset..];
        if remaining.is_empty() {
            break;
        }
        let Some(consumed) = decode_into(remaining, &mut staged) else {
            report.dropped_tail = true;
            break;
        };
        offset += consumed;
        report.records += 1;
    }
    report.bytes = offset as u64;
    for (key, (verdicts, theorem)) in staged {
        if let Some(k) = verdicts.min_solvable() {
            cache.record_horizon(&key, k, true);
        }
        if let Some(k) = verdicts.max_unsolvable() {
            cache.record_horizon(&key, k, false);
        }
        if let Some(result) = theorem {
            cache.record_theorem(&key, result);
        }
    }
    report
}

/// Decodes and stages one frame from the head of `bytes`; `None` on any
/// form of corruption (the caller stops there).
fn decode_into(
    bytes: &[u8],
    staged: &mut std::collections::HashMap<String, (HorizonVerdicts, Option<Value>)>,
) -> Option<usize> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_be_bytes(bytes[0..4].try_into().ok()?);
    if len > MAX_RECORD {
        return None;
    }
    let end = 8usize.checked_add(len as usize)?;
    if bytes.len() < end {
        return None;
    }
    let crc = u32::from_be_bytes(bytes[4..8].try_into().ok()?);
    let payload = &bytes[8..end];
    if crc32(payload) != crc {
        return None;
    }
    let value: Value = serde_json::from_str(std::str::from_utf8(payload).ok()?).ok()?;
    let record = WalRecord::from_json(&value)?;
    let entry = staged.entry(record.key().to_string()).or_default();
    match record {
        WalRecord::Horizon { k, solvable, .. } => {
            // A delta that contradicts the boundaries replayed so far is
            // corruption (verdicts are theorems); reject the record.
            if entry.0.lookup(k).is_some_and(|a| a.solvable() != solvable) {
                return None;
            }
            entry.0.record(k, solvable);
        }
        WalRecord::Theorem { result, .. } => entry.1 = Some(result),
        WalRecord::Snapshot {
            verdicts, theorem, ..
        } => {
            if let Some(k) = verdicts.min_solvable() {
                if entry.0.lookup(k).is_some_and(|a| !a.solvable()) {
                    return None;
                }
                entry.0.record(k, true);
            }
            if let Some(k) = verdicts.max_unsolvable() {
                if entry.0.lookup(k).is_some_and(|a| a.solvable()) {
                    return None;
                }
                entry.0.record(k, false);
            }
            if theorem.is_some() {
                entry.1 = theorem;
            }
        }
    }
    Some(end)
}

/// An open write-ahead log.
pub struct Wal {
    file: Box<dyn WalFile>,
    /// Backing path; `None` for injected files, which also disables
    /// compaction (there is nothing to rename over).
    path: Option<PathBuf>,
    policy: CompactionPolicy,
    /// Records in the log: replayed count plus appends since open.
    records: u64,
    appends_since_flush: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying it into
    /// `cache` first. A torn or corrupt tail is truncated away before
    /// appending resumes. A file that is not a WAL at all is an error —
    /// refusing to overwrite foreign data is the caller's cue to degrade.
    pub fn open(
        path: &Path,
        cache: &VerdictCache,
        policy: CompactionPolicy,
    ) -> io::Result<(Wal, ReplayReport)> {
        // A crash between compaction's `File::create(&tmp)` and its
        // atomic rename strands `<path>.wal.tmp`; the half-written temp
        // is dead weight (the rename never happened, so the real log is
        // still authoritative) and would otherwise leak forever.
        let stale = path.with_extension("wal.tmp");
        match std::fs::remove_file(&stale) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let bytes = match File::open(path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                bytes
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        if !bytes.is_empty() && (bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} exists but is not a minobs WAL", path.display()),
            ));
        }
        let report = replay_bytes(&bytes, cache);
        let file = if bytes.is_empty() {
            let mut f = File::create(path)?;
            f.write_all(MAGIC)?;
            f
        } else {
            let f = OpenOptions::new().write(true).open(path)?;
            // Drop the invalid tail so new appends extend a valid prefix.
            f.set_len(report.bytes)?;
            f
        };
        let mut writer = BufWriter::new(file);
        writer.seek_to_end()?;
        Ok((
            Wal {
                file: Box::new(DiskFile(writer)),
                path: Some(path.to_path_buf()),
                policy,
                records: report.records,
                appends_since_flush: 0,
            },
            report,
        ))
    }

    /// A log over an injected [`WalFile`], starting from empty: the
    /// magic is appended immediately. Compaction is disabled.
    pub fn with_file(mut file: Box<dyn WalFile>, policy: CompactionPolicy) -> io::Result<Wal> {
        file.append(MAGIC)?;
        Ok(Wal {
            file,
            path: None,
            policy,
            records: 0,
            appends_since_flush: 0,
        })
    }

    /// Records in the log (replayed + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one record; returns its framed size. On `Err` the log
    /// must be considered dead — the caller drops the [`Wal`] and runs
    /// memory-only (degradation is one-way by design: a disk that failed
    /// once cannot silently hold half a log).
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let frame = record.encode();
        self.file.append(&frame)?;
        self.records += 1;
        self.appends_since_flush += 1;
        if self.appends_since_flush >= FLUSH_EVERY {
            self.flush()?;
        }
        Ok(frame.len() as u64)
    }

    /// Pushes buffered appends to the OS (drain path, periodic tick).
    pub fn flush(&mut self) -> io::Result<()> {
        self.appends_since_flush = 0;
        self.file.flush()
    }

    /// Rewrites the log as one snapshot per live cache entry when the
    /// dead-record ratio exceeds policy — rewrite-to-temp then atomic
    /// rename, so a crash at any point leaves one valid log. Returns
    /// `None` when compaction is not due (or not possible).
    pub fn maybe_compact(&mut self, cache: &VerdictCache) -> io::Result<Option<CompactionStats>> {
        if self.path.is_none() || self.records < self.policy.min_records {
            return Ok(None);
        }
        let live = cache.entries() as u64;
        let dead = self.records.saturating_sub(live);
        if (dead as f64) <= self.records as f64 * self.policy.dead_ratio {
            return Ok(None);
        }
        self.compact(cache).map(Some)
    }

    /// Unconditionally compacts; see [`Wal::maybe_compact`].
    pub fn compact(&mut self, cache: &VerdictCache) -> io::Result<CompactionStats> {
        let path = self.path.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::Unsupported, "injected WAL cannot compact")
        })?;
        let records_before = self.records;
        let tmp = path.with_extension("wal.tmp");
        let entries = cache.snapshot();
        {
            let mut writer = BufWriter::new(File::create(&tmp)?);
            writer.write_all(MAGIC)?;
            for (key, verdicts, theorem) in &entries {
                let record = WalRecord::Snapshot {
                    key: key.clone(),
                    verdicts: *verdicts,
                    theorem: theorem.clone(),
                };
                writer.write_all(&record.encode())?;
            }
            writer.flush()?;
            writer.get_ref().sync_all()?;
        }
        // Close the old handle before the rename replaces it.
        self.file.flush()?;
        std::fs::rename(&tmp, &path)?;
        let file = OpenOptions::new().write(true).open(&path)?;
        let mut writer = BufWriter::new(file);
        writer.seek_to_end()?;
        self.file = Box::new(DiskFile(writer));
        self.records = entries.len() as u64;
        self.appends_since_flush = 0;
        Ok(CompactionStats {
            records_before,
            records_after: self.records,
        })
    }
}

trait SeekToEnd {
    fn seek_to_end(&mut self) -> io::Result<()>;
}

impl SeekToEnd for BufWriter<File> {
    fn seek_to_end(&mut self) -> io::Result<()> {
        use std::io::Seek;
        self.seek(io::SeekFrom::End(0)).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_obs::MetricsRegistry;

    fn cache() -> VerdictCache {
        VerdictCache::new(&MetricsRegistry::new())
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let records = [
            WalRecord::Horizon {
                key: "classic:s1|gamma".to_string(),
                k: 3,
                solvable: true,
            },
            WalRecord::Theorem {
                key: "classic:s1|theorem".to_string(),
                result: Value::from(true),
            },
            WalRecord::Snapshot {
                key: "classic:r1|gamma".to_string(),
                verdicts: {
                    let mut v = HorizonVerdicts::new();
                    v.record(2, false);
                    v.record(5, true);
                    v
                },
                theorem: None,
            },
        ];
        for record in &records {
            assert_eq!(WalRecord::from_json(&record.to_json()).as_ref(), Some(record));
        }
    }

    #[test]
    fn append_then_replay_is_identity() {
        let file = MemoryWalFile::new();
        let mut wal =
            Wal::with_file(Box::new(file.clone()), CompactionPolicy::default()).unwrap();
        wal.append(&WalRecord::Horizon {
            key: "a".to_string(),
            k: 2,
            solvable: false,
        })
        .unwrap();
        wal.append(&WalRecord::Horizon {
            key: "a".to_string(),
            k: 5,
            solvable: true,
        })
        .unwrap();
        wal.append(&WalRecord::Theorem {
            key: "a|theorem".to_string(),
            result: Value::from(7u64),
        })
        .unwrap();
        wal.flush().unwrap();

        let cache = cache();
        let report = replay_bytes(&file.bytes(), &cache);
        assert_eq!(report.records, 3);
        assert!(!report.dropped_tail);
        let entries = cache.snapshot();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1.max_unsolvable(), Some(2));
        assert_eq!(entries[0].1.min_solvable(), Some(5));
        assert_eq!(entries[1].2, Some(Value::from(7u64)));
    }

    #[test]
    fn torn_and_corrupt_tails_are_dropped_not_fatal() {
        let file = MemoryWalFile::new();
        let mut wal =
            Wal::with_file(Box::new(file.clone()), CompactionPolicy::default()).unwrap();
        for k in 0..4usize {
            wal.append(&WalRecord::Horizon {
                key: "a".to_string(),
                k,
                solvable: false,
            })
            .unwrap();
        }
        wal.flush().unwrap();
        let full = file.bytes();

        // Every truncation point replays a prefix and never errors.
        for cut in 0..full.len() {
            let cache = cache();
            let report = replay_bytes(&full[..cut], &cache);
            assert!(report.bytes <= cut as u64);
            assert!(report.records <= 4);
            if let Some((_, v, _)) = cache.snapshot().first() {
                // Whatever survived is a true verdict, never an invented one.
                assert!(v.max_unsolvable().is_some_and(|m| m <= 3));
                assert_eq!(v.min_solvable(), None);
            }
        }

        // A flipped payload bit fails the checksum and drops the tail.
        let mut rotted = full.clone();
        let last = rotted.len() - 1;
        rotted[last] ^= 0x01;
        let cache = cache();
        let report = replay_bytes(&rotted, &cache);
        assert_eq!(report.records, 3);
        assert!(report.dropped_tail);
    }

    #[test]
    fn contradictory_record_ends_replay() {
        let file = MemoryWalFile::new();
        let mut wal =
            Wal::with_file(Box::new(file.clone()), CompactionPolicy::default()).unwrap();
        wal.append(&WalRecord::Horizon {
            key: "a".to_string(),
            k: 3,
            solvable: true,
        })
        .unwrap();
        // Checksummed but impossible: unsolvable above a solvable bound.
        wal.append(&WalRecord::Horizon {
            key: "a".to_string(),
            k: 4,
            solvable: false,
        })
        .unwrap();
        wal.flush().unwrap();
        let cache = cache();
        let report = replay_bytes(&file.bytes(), &cache);
        assert_eq!(report.records, 1);
        assert!(report.dropped_tail);
        assert_eq!(cache.snapshot()[0].1.min_solvable(), Some(3));
    }

    #[test]
    fn write_errors_surface_for_degradation() {
        struct FailingFile {
            written: u64,
            fail_after: u64,
        }
        impl WalFile for FailingFile {
            fn append(&mut self, frame: &[u8]) -> io::Result<()> {
                self.written += frame.len() as u64;
                if self.written > self.fail_after {
                    return Err(io::Error::new(
                        io::ErrorKind::StorageFull,
                        "no space left on device",
                    ));
                }
                Ok(())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wal = Wal::with_file(
            Box::new(FailingFile {
                written: 0,
                fail_after: 64,
            }),
            CompactionPolicy::default(),
        )
        .unwrap();
        let record = WalRecord::Horizon {
            key: "a".to_string(),
            k: 1,
            solvable: true,
        };
        let mut failed = false;
        for _ in 0..8 {
            if wal.append(&record).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "the injected ENOSPC never surfaced");
    }

    #[test]
    fn disk_wal_reopens_warm_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("minobs-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.wal");
        let _ = std::fs::remove_file(&path);

        {
            let cache = cache();
            let (mut wal, report) =
                Wal::open(&path, &cache, CompactionPolicy::default()).unwrap();
            assert_eq!(report, ReplayReport::default());
            wal.append(&WalRecord::Horizon {
                key: "a".to_string(),
                k: 2,
                solvable: true,
            })
            .unwrap();
            wal.flush().unwrap();
        }
        // Simulate a crash mid-append: chop 3 bytes off the tail.
        {
            let len = std::fs::metadata(&path).unwrap().len();
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(len - 3).unwrap();
            let cache = cache();
            let (mut wal, report) =
                Wal::open(&path, &cache, CompactionPolicy::default()).unwrap();
            assert_eq!(report.records, 0);
            assert!(report.dropped_tail);
            assert!(cache.snapshot().is_empty());
            // Appending after the truncation extends a valid log.
            wal.append(&WalRecord::Horizon {
                key: "b".to_string(),
                k: 1,
                solvable: false,
            })
            .unwrap();
            wal.flush().unwrap();
        }
        {
            let cache = cache();
            let (_, report) = Wal::open(&path, &cache, CompactionPolicy::default()).unwrap();
            assert_eq!(report.records, 1);
            assert!(!report.dropped_tail);
            assert_eq!(cache.snapshot()[0].0, "b");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_compaction_tmp_is_removed_on_open() {
        let dir = std::env::temp_dir().join(format!("minobs-wal-tmpleak-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.wal");
        let tmp = path.with_extension("wal.tmp");
        let _ = std::fs::remove_file(&path);

        // Life 1: write one real verdict.
        {
            let cache = cache();
            let (mut wal, _) = Wal::open(&path, &cache, CompactionPolicy::default()).unwrap();
            wal.append(&WalRecord::Horizon {
                key: "a".to_string(),
                k: 2,
                solvable: true,
            })
            .unwrap();
            wal.flush().unwrap();
        }
        // A crash mid-compaction stranded a half-written temp sibling.
        std::fs::write(&tmp, b"MOBSWAL1half-written snapshot").unwrap();
        assert!(tmp.exists());

        // Life 2: reopening cleans it up and replays the real log intact.
        {
            let cache = cache();
            let (_, report) = Wal::open(&path, &cache, CompactionPolicy::default()).unwrap();
            assert!(!tmp.exists(), "stale .wal.tmp survived reopen");
            assert_eq!(report.records, 1);
            assert_eq!(cache.snapshot()[0].0, "a");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_rewrites_dead_deltas_and_preserves_contents() {
        let dir = std::env::temp_dir().join(format!("minobs-wal-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.wal");
        let _ = std::fs::remove_file(&path);

        let cache = cache();
        let policy = CompactionPolicy {
            min_records: 4,
            dead_ratio: 0.5,
        };
        let (mut wal, _) = Wal::open(&path, &cache, policy).unwrap();
        // 12 deltas, one live key: overwhelmingly dead.
        for k in 0..12usize {
            cache.record_horizon("a", k, false);
            wal.append(&WalRecord::Horizon {
                key: "a".to_string(),
                k,
                solvable: false,
            })
            .unwrap();
        }
        let stats = wal.maybe_compact(&cache).unwrap().expect("compaction due");
        assert_eq!(stats.records_before, 12);
        assert_eq!(stats.records_after, 1);
        assert!(wal.maybe_compact(&cache).unwrap().is_none());

        // Appends after compaction land after the snapshot.
        cache.record_horizon("b", 3, true);
        wal.append(&WalRecord::Horizon {
            key: "b".to_string(),
            k: 3,
            solvable: true,
        })
        .unwrap();
        wal.flush().unwrap();
        drop(wal);

        let warm = self::cache();
        let (_, report) = Wal::open(&path, &warm, policy).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(warm.snapshot().len(), 2);
        assert_eq!(warm.snapshot()[0].1.max_unsolvable(), Some(11));
        assert_eq!(warm.snapshot()[1].1.min_solvable(), Some(3));
        let _ = std::fs::remove_file(&path);
    }
}
