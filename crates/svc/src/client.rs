//! A blocking client for the daemon's wire protocol.
//!
//! One [`SvcClient`] owns one TCP connection; calls are synchronous and
//! the daemon answers a connection's requests in order, so a client is
//! safe to use from one thread at a time (clone-per-thread for load).
//!
//! Every daemon method is idempotent — verdicts are immutable theorems,
//! so asking twice cannot change an answer — which makes blind retry
//! safe. [`SvcClient::call_with_retry`] exploits that: transport
//! failures and `busy` rejections reconnect and retry under exponential
//! backoff with deterministic jitter, capped by a [`RetryPolicy`]
//! budget. Definitive RPC errors (`bad_params`, `unsupported`, …) are
//! never retried.

use crate::wire::{self, FrameError, RPC_VERSION};
use minobs_obs::TraceContext;
use serde_json::Value;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a call failed.
#[derive(Debug)]
pub enum SvcError {
    /// Transport failure (including a connection closed mid-response).
    Io(io::Error),
    /// The daemon refused the connection at its concurrency cap; safe to
    /// retry after a backoff.
    Busy(String),
    /// The daemon answered with something that is not a valid response.
    Protocol(String),
    /// The daemon answered with a method-level error.
    Rpc {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable explanation.
        message: String,
    },
}

impl SvcError {
    /// Whether retrying the same call can help: transport failures and
    /// `busy` rejections are transient, everything else is definitive.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SvcError::Io(_) | SvcError::Busy(_))
    }
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Io(e) => write!(f, "i/o error: {e}"),
            SvcError::Busy(m) => write!(f, "daemon busy: {m}"),
            SvcError::Protocol(m) => write!(f, "protocol error: {m}"),
            SvcError::Rpc { code, message } => write!(f, "rpc error [{code}]: {message}"),
        }
    }
}

impl From<io::Error> for SvcError {
    fn from(e: io::Error) -> SvcError {
        SvcError::Io(e)
    }
}

impl From<FrameError> for SvcError {
    fn from(e: FrameError) -> SvcError {
        match e {
            FrameError::Io(e) => SvcError::Io(e),
            other => SvcError::Protocol(other.to_string()),
        }
    }
}

/// How [`SvcClient::call_with_retry`] behaves between attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt; 0 behaves like [`SvcClient::call`].
    pub budget: u32,
    /// Backoff before the first retry; doubles each retry after.
    pub base: Duration,
    /// Ceiling on any single backoff sleep.
    pub cap: Duration,
    /// Jitter seed; the same seed and call sequence sleeps the same
    /// schedule, keeping retry tests and recorded runs deterministic.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            budget: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x6d69_6e6f_6273, // "minobs"
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based) of the call
    /// whose first request id was `id`: exponential from `base`, capped
    /// at `cap`, jittered into the upper half of the window so
    /// simultaneous clients at the same attempt spread out.
    pub fn backoff(&self, id: u64, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        let nanos = exp.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        // xorshift64 over (seed, id, attempt): deterministic jitter with
        // no rand dependency.
        let mut x = self.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt) << 32;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Duration::from_nanos(nanos / 2 + x % (nanos / 2 + 1))
    }
}

/// A connected client.
pub struct SvcClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// The resolved peer, kept for reconnect-on-retry.
    addr: SocketAddr,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
}

impl SvcClient {
    /// Connects to a daemon, blocking indefinitely. Prefer
    /// [`SvcClient::connect_with_timeout`] anywhere a hung peer should
    /// not hang the caller.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SvcClient, SvcError> {
        SvcClient::connect_with_timeout(addr, None)
    }

    /// Connects to a daemon, failing any single address attempt after
    /// `timeout`. Addresses the name resolves to are tried in order.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<SvcClient, SvcError> {
        let mut last: Option<io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            match open_stream(resolved, timeout) {
                Ok(stream) => {
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(SvcClient {
                        reader,
                        writer: BufWriter::new(stream),
                        next_id: 1,
                        addr: resolved,
                        connect_timeout: timeout,
                        read_timeout: None,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(SvcError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }

    /// Sets a read timeout for responses; `None` blocks forever. The
    /// timeout survives reconnects.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), SvcError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Drops the connection and dials the same peer again, reapplying
    /// timeouts. Request ids keep counting up, so a response straggling
    /// in from before the reconnect can never match a new request.
    pub fn reconnect(&mut self) -> Result<(), SvcError> {
        let stream = open_stream(self.addr, self.connect_timeout)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = BufWriter::new(stream);
        Ok(())
    }

    /// Calls `method` and returns the `result` payload. Each call mints
    /// a fresh root [`TraceContext`], so every request is traceable
    /// end-to-end by default; use [`SvcClient::call_with_ctx`] to thread
    /// an existing context through instead.
    pub fn call(&mut self, method: &str, params: Value) -> Result<Value, SvcError> {
        let ctx = TraceContext::root();
        self.call_with_ctx(method, params, &ctx)
    }

    /// Calls `method` under an explicit distributed trace context: the
    /// request envelope carries `ctx` and the daemon parents its
    /// `rpc.{method}` span under `ctx.parent_span` within
    /// `ctx.trace_id`.
    pub fn call_with_ctx(
        &mut self,
        method: &str,
        params: Value,
        ctx: &TraceContext,
    ) -> Result<Value, SvcError> {
        let id = self.next_id;
        self.next_id += 1;
        wire::write_frame(
            &mut self.writer,
            &wire::request_with_ctx(id, method, params, ctx),
        )?;
        self.writer.flush()?;
        let response = wire::read_frame(&mut self.reader)?.ok_or_else(|| {
            SvcError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a response",
            ))
        })?;
        decode_response(&response, id)
    }

    /// Calls `method`, retrying transient failures (transport errors,
    /// `busy` rejections) under `policy`: reconnect, back off
    /// exponentially with jitter, try again, up to `policy.budget`
    /// retries. Safe because every daemon method is idempotent. All
    /// attempts share one freshly minted trace context, so a retried
    /// request stays one trace.
    pub fn call_with_retry(
        &mut self,
        method: &str,
        params: Value,
        policy: &RetryPolicy,
    ) -> Result<Value, SvcError> {
        let ctx = TraceContext::root();
        self.call_with_retry_ctx(method, params, policy, &ctx)
    }

    /// [`SvcClient::call_with_retry`] under an explicit trace context —
    /// the building block [`crate::ClusterClient`] uses to keep one
    /// `trace_id` across retry *and* failover hops.
    pub fn call_with_retry_ctx(
        &mut self,
        method: &str,
        params: Value,
        policy: &RetryPolicy,
        ctx: &TraceContext,
    ) -> Result<Value, SvcError> {
        let first_id = self.next_id;
        let mut attempt = 0u32;
        loop {
            match self.call_with_ctx(method, params.clone(), ctx) {
                Ok(value) => return Ok(value),
                Err(e) if e.is_retryable() && attempt < policy.budget => {
                    std::thread::sleep(policy.backoff(first_id, attempt));
                    attempt += 1;
                    // A failed attempt leaves the connection in an
                    // unknown state (half-written frame, unread busy
                    // hangup); always start the retry on a fresh one.
                    // A failed reconnect just burns this attempt.
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn open_stream(addr: SocketAddr, timeout: Option<Duration>) -> io::Result<TcpStream> {
    let stream = match timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true).ok();
    Ok(stream)
}

fn decode_response(response: &Value, id: u64) -> Result<Value, SvcError> {
    let rpc = response.get("rpc").and_then(Value::as_str);
    if rpc != Some(RPC_VERSION) {
        return Err(SvcError::Protocol(format!(
            "unexpected rpc version {rpc:?}"
        )));
    }
    // The acceptor's at-cap rejection is not a reply to any request —
    // it carries id 0 — so busy detection must run before the id check.
    if let Some(error) = response.get("error") {
        if error.get("code").and_then(Value::as_str) == Some("busy") {
            let message = error
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            return Err(SvcError::Busy(message));
        }
    }
    let got = response.get("id").and_then(Value::as_u64);
    if got != Some(id) {
        return Err(SvcError::Protocol(format!(
            "response id {got:?} does not match request id {id}"
        )));
    }
    match response.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(response.get("result").cloned().unwrap_or(Value::Null)),
        Some(false) => {
            let error = response.get("error");
            let code = error
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string();
            let message = error
                .and_then(|e| e.get("message"))
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            Err(SvcError::Rpc { code, message })
        }
        None => Err(SvcError::Protocol("response missing \"ok\"".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{err_response, ok_response, read_frame, write_frame};
    use std::net::TcpListener;

    #[test]
    fn responses_decode() {
        let ok = ok_response(4, Value::from(7u64));
        assert_eq!(decode_response(&ok, 4).unwrap(), Value::from(7u64));
        assert!(matches!(
            decode_response(&ok, 5),
            Err(SvcError::Protocol(_))
        ));
        let err = err_response(4, "bad_params", "nope");
        match decode_response(&err, 4) {
            Err(SvcError::Rpc { code, message }) => {
                assert_eq!(code, "bad_params");
                assert_eq!(message, "nope");
            }
            other => panic!("expected rpc error, got {other:?}"),
        }
    }

    #[test]
    fn busy_decodes_despite_the_unmatched_id() {
        let busy = err_response(0, "busy", "connection limit reached");
        match decode_response(&busy, 41) {
            Err(SvcError::Busy(message)) => assert_eq!(message, "connection limit reached"),
            other => panic!("expected busy, got {other:?}"),
        }
        assert!(SvcError::Busy(String::new()).is_retryable());
        assert!(SvcError::Io(io::Error::other("x")).is_retryable());
        assert!(!SvcError::Rpc {
            code: "bad_params".into(),
            message: String::new()
        }
        .is_retryable());
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            budget: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 7,
        };
        for attempt in 0..8 {
            let a = policy.backoff(3, attempt);
            assert_eq!(a, policy.backoff(3, attempt), "jitter must be deterministic");
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(100));
            assert!(a >= exp / 2 && a <= exp, "attempt {attempt}: {a:?} vs {exp:?}");
        }
        // Different ids jitter differently (with overwhelming likelihood).
        assert_ne!(policy.backoff(3, 4), policy.backoff(4, 4));
    }

    #[test]
    fn retry_survives_a_busy_hangup_then_succeeds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: at-cap rejection, exactly as the
            // acceptor sends it — id 0, then hang up.
            let (stream, _) = listener.accept().unwrap();
            let mut writer = &stream;
            write_frame(&mut writer, &err_response(0, "busy", "connection limit reached"))
                .unwrap();
            drop(stream);
            // Second connection: answer properly.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = &stream;
            let request = read_frame(&mut reader).unwrap().unwrap();
            let id = request.get("id").and_then(Value::as_u64).unwrap();
            // Every client call carries a fresh root trace context.
            let trace_id = request
                .get("ctx")
                .and_then(|ctx| ctx.get("trace_id"))
                .and_then(Value::as_str)
                .expect("retried calls still carry a ctx")
                .to_string();
            assert_eq!(trace_id.len(), 32);
            let mut writer = &stream;
            write_frame(&mut writer, &ok_response(id, Value::from(42u64))).unwrap();
        });

        let mut client =
            SvcClient::connect_with_timeout(addr, Some(Duration::from_secs(5))).unwrap();
        client.set_timeout(Some(Duration::from_secs(5))).unwrap();
        let policy = RetryPolicy {
            budget: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            seed: 1,
        };
        let value = client.call_with_retry("stats", Value::Null, &policy).unwrap();
        assert_eq!(value, Value::from(42u64));
        server.join().unwrap();
    }

    #[test]
    fn exhausted_budget_returns_the_last_error() {
        // A listener that always rejects busy.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..3 {
                let (stream, _) = listener.accept().unwrap();
                let mut writer = &stream;
                let _ = write_frame(&mut writer, &err_response(0, "busy", "still full"));
            }
        });
        let mut client =
            SvcClient::connect_with_timeout(addr, Some(Duration::from_secs(5))).unwrap();
        client.set_timeout(Some(Duration::from_secs(5))).unwrap();
        let policy = RetryPolicy {
            budget: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 1,
        };
        match client.call_with_retry("stats", Value::Null, &policy) {
            Err(SvcError::Busy(_)) | Err(SvcError::Io(_)) => {}
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        server.join().unwrap();
    }
}
