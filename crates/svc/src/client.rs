//! A blocking client for the daemon's wire protocol.
//!
//! One [`SvcClient`] owns one TCP connection; calls are synchronous and
//! the daemon answers a connection's requests in order, so a client is
//! safe to use from one thread at a time (clone-per-thread for load).

use crate::wire::{self, FrameError, RPC_VERSION};
use serde_json::Value;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a call failed.
#[derive(Debug)]
pub enum SvcError {
    /// Transport failure.
    Io(io::Error),
    /// The daemon answered with something that is not a valid response.
    Protocol(String),
    /// The daemon answered with a method-level error.
    Rpc {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable explanation.
        message: String,
    },
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Io(e) => write!(f, "i/o error: {e}"),
            SvcError::Protocol(m) => write!(f, "protocol error: {m}"),
            SvcError::Rpc { code, message } => write!(f, "rpc error [{code}]: {message}"),
        }
    }
}

impl From<io::Error> for SvcError {
    fn from(e: io::Error) -> SvcError {
        SvcError::Io(e)
    }
}

impl From<FrameError> for SvcError {
    fn from(e: FrameError) -> SvcError {
        match e {
            FrameError::Io(e) => SvcError::Io(e),
            other => SvcError::Protocol(other.to_string()),
        }
    }
}

/// A connected client.
pub struct SvcClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl SvcClient {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SvcClient, SvcError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(SvcClient {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Sets a read timeout for responses; `None` blocks forever.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), SvcError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Calls `method` and returns the `result` payload.
    pub fn call(&mut self, method: &str, params: Value) -> Result<Value, SvcError> {
        let id = self.next_id;
        self.next_id += 1;
        wire::write_frame(&mut self.writer, &wire::request(id, method, params))?;
        self.writer.flush()?;
        let response = wire::read_frame(&mut self.reader)?
            .ok_or_else(|| SvcError::Protocol("connection closed before a response".into()))?;
        decode_response(&response, id)
    }
}

fn decode_response(response: &Value, id: u64) -> Result<Value, SvcError> {
    let rpc = response.get("rpc").and_then(Value::as_str);
    if rpc != Some(RPC_VERSION) {
        return Err(SvcError::Protocol(format!(
            "unexpected rpc version {rpc:?}"
        )));
    }
    let got = response.get("id").and_then(Value::as_u64);
    if got != Some(id) {
        return Err(SvcError::Protocol(format!(
            "response id {got:?} does not match request id {id}"
        )));
    }
    match response.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(response.get("result").cloned().unwrap_or(Value::Null)),
        Some(false) => {
            let error = response.get("error");
            let code = error
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string();
            let message = error
                .and_then(|e| e.get("message"))
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            Err(SvcError::Rpc { code, message })
        }
        None => Err(SvcError::Protocol("response missing \"ok\"".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{err_response, ok_response};

    #[test]
    fn responses_decode() {
        let ok = ok_response(4, Value::from(7u64));
        assert_eq!(decode_response(&ok, 4).unwrap(), Value::from(7u64));
        assert!(matches!(
            decode_response(&ok, 5),
            Err(SvcError::Protocol(_))
        ));
        let err = err_response(4, "bad_params", "nope");
        match decode_response(&err, 4) {
            Err(SvcError::Rpc { code, message }) => {
                assert_eq!(code, "bad_params");
                assert_eq!(message, "nope");
            }
            other => panic!("expected rpc error, got {other:?}"),
        }
    }
}
