//! A cluster-aware client: consistent-hash routing with ring failover.
//!
//! A [`ClusterClient`] holds one lazily-dialed [`SvcClient`] per cluster
//! node and routes each call by the canonical cache key: the ring owner
//! gets the request first, and on a *transient* failure (transport error
//! or `busy`, after the per-node retry budget) the call fails over to the
//! next node walking the ring — any replica can answer any key, routing
//! is purely an affinity optimisation that keeps a key's cache hot on
//! one node. Definitive RPC errors are returned immediately; they would
//! fail identically everywhere.
//!
//! Membership changes go through [`ClusterClient::add_node`] /
//! [`ClusterClient::remove_node`]; consistent hashing bounds the fallout
//! to ~`1/N` of keys remapping (see `minobs_cluster::ring`).

use crate::client::{RetryPolicy, SvcClient, SvcError};
use minobs_cluster::HashRing;
use minobs_obs::TraceContext;
use serde_json::Value;
use std::collections::HashMap;
use std::io;
use std::time::Duration;

/// A client routing over every node of a verdict-cache cluster.
pub struct ClusterClient {
    ring: HashRing,
    policy: RetryPolicy,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    clients: HashMap<String, SvcClient>,
}

impl ClusterClient {
    /// A client over `nodes` with the default retry policy and a 1s/5s
    /// connect/read timeout. Performs no I/O; connections are dialed on
    /// first use per node.
    pub fn new<S: AsRef<str>>(nodes: &[S]) -> ClusterClient {
        ClusterClient::with_policy(nodes, RetryPolicy::default())
    }

    /// A client with an explicit per-node retry policy. `budget: 0`
    /// fails over to the next ring node on the first transient error.
    pub fn with_policy<S: AsRef<str>>(nodes: &[S], policy: RetryPolicy) -> ClusterClient {
        ClusterClient {
            ring: HashRing::new(nodes),
            policy,
            connect_timeout: Some(Duration::from_secs(1)),
            read_timeout: Some(Duration::from_secs(5)),
            clients: HashMap::new(),
        }
    }

    /// Overrides the dial/read timeouts applied to every per-node
    /// connection (`None` blocks forever). Takes effect on the next dial.
    pub fn set_timeouts(&mut self, connect: Option<Duration>, read: Option<Duration>) {
        self.connect_timeout = connect;
        self.read_timeout = read;
        self.clients.clear();
    }

    /// The routing ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Adds a node to the ring (no-op if present).
    pub fn add_node(&mut self, node: &str) {
        self.ring.add(node);
    }

    /// Removes a node from the ring and drops its connection.
    pub fn remove_node(&mut self, node: &str) {
        self.ring.remove(node);
        self.clients.remove(node);
    }

    /// Calls `method` on the node owning `key`, failing over along the
    /// ring on transient errors. Returns the last transient error when
    /// every node fails, or the first definitive error encountered.
    ///
    /// One root [`TraceContext`] is minted per *logical* call: every
    /// retry on a node and every failover hop re-sends the same
    /// `trace_id`, so a request that bounced across the ring still
    /// stitches into one trace.
    pub fn call(&mut self, key: &str, method: &str, params: Value) -> Result<Value, SvcError> {
        let ctx = TraceContext::root();
        let route: Vec<String> = self
            .ring
            .route(key)
            .into_iter()
            .map(str::to_string)
            .collect();
        if route.is_empty() {
            return Err(SvcError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "cluster has no nodes",
            )));
        }
        let mut last: Option<SvcError> = None;
        for node in route {
            if !self.clients.contains_key(&node) {
                match SvcClient::connect_with_timeout(node.as_str(), self.connect_timeout) {
                    Ok(mut client) => {
                        if let Err(e) = client.set_timeout(self.read_timeout) {
                            last = Some(e);
                            continue;
                        }
                        self.clients.insert(node.clone(), client);
                    }
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            let client = self.clients.get_mut(&node).expect("just ensured");
            match client.call_with_retry_ctx(method, params.clone(), &self.policy, &ctx) {
                Ok(value) => return Ok(value),
                Err(e) if e.is_retryable() => {
                    // This node is unreachable or saturated; drop the
                    // connection and walk to the next ring node.
                    self.clients.remove(&node);
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("non-empty route records an error before falling through"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{err_response, ok_response, read_frame, write_frame};
    use std::net::TcpListener;
    use std::thread;

    /// A fake node that answers its first `count` requests with `busy`
    /// frames (id 0, like the real acceptor at its cap) and everything
    /// after properly, tagging results with `name`.
    fn busy_then_ok(listener: TcpListener, busy_count: usize, name: &'static str) {
        thread::spawn(move || {
            let mut served = 0usize;
            loop {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                if served < busy_count {
                    served += 1;
                    let mut writer = &stream;
                    let _ = write_frame(&mut writer, &err_response(0, "busy", "at capacity"));
                    continue;
                }
                let mut reader = &stream;
                while let Ok(Some(request)) = read_frame(&mut reader) {
                    let id = request.get("id").and_then(Value::as_u64).unwrap_or(0);
                    let mut writer = &stream;
                    if write_frame(&mut writer, &ok_response(id, Value::from(name))).is_err() {
                        break;
                    }
                }
            }
        });
    }

    /// Satellite: deterministic failover — the key's owning node answers
    /// `busy`, the client walks the ring and the next node serves.
    #[test]
    fn busy_owner_fails_over_to_the_next_ring_node() {
        let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
        let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr_a = listener_a.local_addr().unwrap().to_string();
        let addr_b = listener_b.local_addr().unwrap().to_string();

        // Both nodes permanently busy-reject first, then serve; with a
        // zero retry budget the first transient error fails over.
        busy_then_ok(listener_a, usize::MAX, "a");
        busy_then_ok(listener_b, 0, "b");

        let policy = RetryPolicy {
            budget: 0,
            ..RetryPolicy::default()
        };
        let mut client = ClusterClient::with_policy(&[addr_a.clone(), addr_b.clone()], policy);

        // Pick a key that node a owns, so the test exercises failover
        // deterministically rather than by luck.
        let key = (0..)
            .map(|i| format!("scheme|{i}"))
            .find(|k| client.ring().owner(k) == Some(addr_a.as_str()))
            .unwrap();
        let value = client.call(&key, "stats", Value::Null).unwrap();
        assert_eq!(value, Value::from("b"), "the healthy node must answer");
    }

    /// Satellite: retry/failover keeps one `trace_id`. Node a reads the
    /// request (capturing its ctx) then hangs up — a transport error,
    /// so the client fails over — and node b captures the ctx of the
    /// hop that reaches it. Both hops must carry the same trace id.
    #[test]
    fn failover_hops_reuse_the_same_trace_id() {
        let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
        let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr_a = listener_a.local_addr().unwrap().to_string();
        let addr_b = listener_b.local_addr().unwrap().to_string();
        let (tx, rx) = std::sync::mpsc::channel::<String>();

        let capture_ctx = |request: &Value| {
            request
                .get("ctx")
                .and_then(|ctx| ctx.get("trace_id"))
                .and_then(Value::as_str)
                .expect("every hop carries a ctx")
                .to_string()
        };
        let tx_a = tx.clone();
        thread::spawn(move || {
            // Read the frame, report its trace id, drop the connection
            // without answering: an Io error on the client side.
            let (stream, _) = listener_a.accept().unwrap();
            let mut reader = &stream;
            let request = read_frame(&mut reader).unwrap().unwrap();
            tx_a.send(capture_ctx(&request)).unwrap();
        });
        thread::spawn(move || {
            let (stream, _) = listener_b.accept().unwrap();
            let mut reader = &stream;
            let request = read_frame(&mut reader).unwrap().unwrap();
            tx.send(capture_ctx(&request)).unwrap();
            let id = request.get("id").and_then(Value::as_u64).unwrap();
            let mut writer = &stream;
            write_frame(&mut writer, &ok_response(id, Value::from("b"))).unwrap();
        });

        let policy = RetryPolicy {
            budget: 0,
            ..RetryPolicy::default()
        };
        let mut client = ClusterClient::with_policy(&[addr_a.clone(), addr_b], policy);
        let key = (0..)
            .map(|i| format!("scheme|{i}"))
            .find(|k| client.ring().owner(k) == Some(addr_a.as_str()))
            .unwrap();
        let value = client.call(&key, "stats", Value::Null).unwrap();
        assert_eq!(value, Value::from("b"));

        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert_eq!(first.len(), 32, "trace id is 32 hex digits");
        assert_eq!(
            first, second,
            "failover must re-send the same trace_id, not mint a new root"
        );
    }

    #[test]
    fn definitive_errors_do_not_fail_over() {
        let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
        let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr_a = listener_a.local_addr().unwrap().to_string();
        let addr_b = listener_b.local_addr().unwrap().to_string();
        let owner_answers_bad_params = |listener: TcpListener| {
            thread::spawn(move || {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                let mut reader = &stream;
                if let Ok(Some(request)) = read_frame(&mut reader) {
                    let id = request.get("id").and_then(Value::as_u64).unwrap_or(0);
                    let mut writer = &stream;
                    let _ = write_frame(&mut writer, &err_response(id, "bad_params", "nope"));
                }
            })
        };
        owner_answers_bad_params(listener_a);
        owner_answers_bad_params(listener_b);

        let mut client = ClusterClient::new(&[addr_a, addr_b]);
        match client.call("any|key", "stats", Value::Null) {
            Err(SvcError::Rpc { code, .. }) => assert_eq!(code, "bad_params"),
            other => panic!("expected the rpc error straight back, got {other:?}"),
        }
    }

    #[test]
    fn empty_cluster_errors_without_dialing() {
        let mut client = ClusterClient::new(&Vec::<String>::new());
        match client.call("k", "stats", Value::Null) {
            Err(SvcError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::NotConnected),
            other => panic!("expected a not-connected error, got {other:?}"),
        }
    }

    #[test]
    fn membership_changes_drop_connections_and_remap() {
        let mut client = ClusterClient::new(&["a:1", "b:2", "c:3"]);
        assert_eq!(client.ring().len(), 3);
        client.remove_node("b:2");
        assert_eq!(client.ring().len(), 2);
        assert!(client
            .ring()
            .route("some|key")
            .iter()
            .all(|node| *node != "b:2"));
        client.add_node("b:2");
        assert_eq!(client.ring().len(), 3);
    }
}
