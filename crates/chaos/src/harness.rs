//! The fuzzing harness: generate → run → check → shrink → emit.
//!
//! [`run_chaos`] drives `runs` seeded executions of flooding consensus
//! on a named graph. In the default mode every sampled adversary's
//! bound fits the `O_f` contract `f = c(G) − 1`, so Theorem V.1
//! promises consensus and all five properties are asserted. In
//! *over-budget* mode the harness instead plants a cut-targeted
//! adversary of width `c(G)` against the same contract — a guaranteed
//! budget-conformance breach the shrinker must reduce to one round of
//! `c(G)` cut arcs. Every violating run is shrunk and packaged as a
//! [`Reproducer`]; [`replay`] runs an artifact back through the same
//! checker.

use crate::artifact::{GraphSpec, Reproducer};
use crate::gen::AdversaryGen;
use crate::props::{check_run, Violation};
use crate::record::RecordingAdversary;
use crate::shrink::shrink_script;
use minobs_graphs::{edge_connectivity, DirectedEdge, Graph};
use minobs_net::{DecisionRule, FloodConsensus};
use minobs_obs::{MemoryRecorder, TraceEvent};
use minobs_sim::adversary::{Adversary, BudgetChecked, BudgetViolation, ScriptedAdversary};
use minobs_sim::network::{run_network, run_network_with_recorder, NetOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one fuzzing campaign.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// The graph to fuzz.
    pub graph: GraphSpec,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// How many runs to execute.
    pub runs: usize,
    /// Plant a contract breach: cut-targeted width `c(G)` against the
    /// contract `f = c(G) − 1`.
    pub over_budget: bool,
}

/// Outcome of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Runs executed.
    pub runs: usize,
    /// Runs that violated at least one property.
    pub violating_runs: usize,
    /// One shrunk reproducer per violating run.
    pub reproducers: Vec<Reproducer>,
}

/// Executes one run: flooding consensus on `graph` under `adversary`,
/// with script recording and budget checking layered on. Returns the
/// outcome, the effective omission script, and any contract breaches.
fn execute(
    graph: &Graph,
    inputs: &[u64],
    adversary: Box<dyn Adversary>,
    contract_f: usize,
    max_rounds: usize,
) -> (NetOutcome, Vec<Vec<DirectedEdge>>, Vec<BudgetViolation>) {
    let mut checked = BudgetChecked::new(RecordingAdversary::new(adversary), contract_f);
    let nodes = FloodConsensus::fleet(graph, inputs, DecisionRule::ValueOfMinId);
    let outcome = run_network(graph, nodes, &mut checked, max_rounds);
    let (recording, violations) = checked.into_parts();
    (outcome, recording.into_script(), violations)
}

/// Engine horizon for a graph: flooding decides at round `n − 1`
/// (Theorem V.1 / Corollary III.14 at network scale); doubling it gives
/// the adversary room to misbehave after the deadline too.
fn horizon(graph: &Graph) -> usize {
    2 * graph.vertex_count().saturating_sub(1).max(1)
}

/// Runs a fuzzing campaign. Deterministic per [`ChaosConfig`]: the same
/// config yields the same report, reproducers included, byte for byte.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let graph = cfg.graph.build();
    let n = graph.vertex_count();
    let connectivity = edge_connectivity(&graph);
    let contract_f = connectivity - 1;
    let max_rounds = horizon(&graph);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = ChaosReport {
        runs: cfg.runs,
        violating_runs: 0,
        reproducers: Vec::new(),
    };

    for run in 0..cfg.runs {
        let inputs: Vec<u64> = (0..n).map(|_| rng.random_below(10) as u64).collect();
        let gen = if cfg.over_budget {
            AdversaryGen::CutTargeted {
                width: connectivity,
            }
        } else {
            AdversaryGen::sample(&mut rng, &graph, contract_f, max_rounds)
        };
        // Theorem V.1: consensus is only promised when the adversary's
        // bound fits the contract.
        let expect_consensus = gen.bound(&graph) <= contract_f;
        let adversary = gen.instantiate(&graph, &mut rng);
        let (outcome, script, breaches) = execute(&graph, &inputs, adversary, contract_f, max_rounds);
        let violations = check_run(&outcome, &breaches, expect_consensus);
        let Some(first) = violations.first() else {
            continue;
        };
        report.violating_runs += 1;
        let kind = first.kind();

        let mut still_fails = |candidate: &[Vec<DirectedEdge>]| -> bool {
            let scripted = Box::new(ScriptedAdversary::once(candidate.to_vec()));
            let (o, _, b) = execute(&graph, &inputs, scripted, contract_f, max_rounds);
            check_run(&o, &b, expect_consensus)
                .iter()
                .any(|v| v.kind() == kind)
        };
        // The recorded script replays the violation by construction
        // (only effective drops matter, and those are what it holds);
        // shrink_script hands it back unchanged if it somehow doesn't.
        let minimal = shrink_script(script, &mut still_fails);

        report.reproducers.push(Reproducer {
            graph: cfg.graph,
            seed: cfg.seed,
            run,
            contract_f,
            max_rounds,
            inputs,
            violation: kind.to_string(),
            script: minimal,
        });
    }
    report
}

/// The result of replaying a reproducer.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Whether the recorded violation kind occurred again.
    pub reproduced: bool,
    /// Every violation observed during the replay.
    pub violations: Vec<Violation>,
}

/// Replays a reproducer's script through the full checker. All five
/// properties are checked — the replayed adversary is the shrunk
/// script, whose conformance is exactly what the artifact asserts.
pub fn replay(rep: &Reproducer) -> ReplayOutcome {
    let graph = rep.graph.build();
    let scripted = Box::new(ScriptedAdversary::once(rep.script.clone()));
    let (outcome, _, breaches) = execute(
        &graph,
        &rep.inputs,
        scripted,
        rep.contract_f,
        rep.max_rounds,
    );
    let violations = check_run(&outcome, &breaches, true);
    ReplayOutcome {
        reproduced: violations.iter().any(|v| v.kind() == rep.violation),
        violations,
    }
}

/// [`replay`] capturing a `minobs/trace/v1` event stream of the
/// violating execution, for the `.trace.jsonl` artifact sibling.
pub fn replay_with_trace(rep: &Reproducer) -> (ReplayOutcome, Vec<TraceEvent>) {
    let graph = rep.graph.build();
    let mut checked = BudgetChecked::new(
        RecordingAdversary::new(Box::new(ScriptedAdversary::once(rep.script.clone()))),
        rep.contract_f,
    );
    let nodes = FloodConsensus::fleet(&graph, &rep.inputs, DecisionRule::ValueOfMinId);
    let mut recorder = MemoryRecorder::new();
    let outcome = run_network_with_recorder(&graph, nodes, &mut checked, rep.max_rounds, &mut recorder);
    let (_, breaches) = checked.into_parts();
    let violations = check_run(&outcome, &breaches, true);
    (
        ReplayOutcome {
            reproduced: violations.iter().any(|v| v.kind() == rep.violation),
            violations,
        },
        recorder.into_events(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforming_adversaries_never_violate() {
        // The heart of Theorem V.1 as a fuzz target: every generator
        // with bound ≤ c(G) − 1 must leave consensus intact, on all
        // three named graphs, across pinned seeds.
        for graph in GraphSpec::ALL {
            for seed in [1, 2, 3] {
                let report = run_chaos(&ChaosConfig {
                    graph,
                    seed,
                    runs: 25,
                    over_budget: false,
                });
                assert_eq!(
                    report.violating_runs, 0,
                    "{graph} seed {seed}: {:?}",
                    report.reproducers.first().map(|r| &r.violation)
                );
            }
        }
    }

    #[test]
    fn planted_breach_is_found_and_shrunk_to_the_cut() {
        for graph in GraphSpec::ALL {
            let connectivity = edge_connectivity(&graph.build());
            let report = run_chaos(&ChaosConfig {
                graph,
                seed: 7,
                runs: 3,
                over_budget: true,
            });
            assert_eq!(report.violating_runs, 3, "{graph}");
            for rep in &report.reproducers {
                assert_eq!(rep.violation, "budget_exceeded");
                // Minimal witness: one round, exactly c(G) = f + 1 arcs.
                assert_eq!(rep.script.len(), 1, "{graph}: {:?}", rep.script);
                assert_eq!(rep.script[0].len(), connectivity, "{graph}");
                let out = replay(rep);
                assert!(out.reproduced, "{graph}: {:?}", out.violations);
            }
        }
    }

    #[test]
    fn same_seed_yields_byte_identical_reproducers() {
        let cfg = ChaosConfig {
            graph: GraphSpec::C4,
            seed: 7,
            runs: 3,
            over_budget: true,
        };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        let bytes = |r: &ChaosReport| -> Vec<String> {
            r.reproducers.iter().map(Reproducer::to_json_string).collect()
        };
        assert_eq!(bytes(&a), bytes(&b));
        assert!(!a.reproducers.is_empty());
    }

    #[test]
    fn artifact_roundtrip_replays() {
        let report = run_chaos(&ChaosConfig {
            graph: GraphSpec::H3,
            seed: 11,
            runs: 1,
            over_budget: true,
        });
        let rep = &report.reproducers[0];
        let parsed = Reproducer::from_json_str(&rep.to_json_string()).unwrap();
        assert_eq!(&parsed, rep);
        assert!(replay(&parsed).reproduced);
    }

    #[test]
    fn replay_with_trace_emits_a_run() {
        let report = run_chaos(&ChaosConfig {
            graph: GraphSpec::C4,
            seed: 7,
            runs: 1,
            over_budget: true,
        });
        let (out, events) = replay_with_trace(&report.reproducers[0]);
        assert!(out.reproduced);
        assert!(matches!(events.first(), Some(TraceEvent::RunStart { .. })));
        assert!(matches!(events.last(), Some(TraceEvent::RunEnd { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Message { .. })));
    }
}
