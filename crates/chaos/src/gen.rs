//! The adversary generator DSL.
//!
//! An [`AdversaryGen`] describes a *family* of adversaries; calling
//! [`AdversaryGen::instantiate`] samples one concrete member from a
//! seeded RNG. Generators compose: a crash can be stacked on background
//! omission noise, and any generator can be made eventually quiescent.
//!
//! Each generator exposes a static per-round bound on its *effective*
//! omissions ([`AdversaryGen::bound`]). Sampling under a budget
//! ([`AdversaryGen::sample`]) only ever returns generators whose bound
//! fits — the harness relies on this to know which runs must reach
//! consensus (Theorem V.1: every bound `≤ c(G) − 1` is tolerated).

use minobs_graphs::{cut_partition, DirectedEdge, Graph};
use minobs_sim::adversary::{Adversary, CrashAdversary, RandomOmissions};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A composable description of an adversary family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversaryGen {
    /// Uniform omission noise: at most `f` in-flight messages die per
    /// round, chosen uniformly from the pending set (`O_f`).
    BudgetCapped {
        /// Per-round effective-drop cap.
        f: usize,
    },
    /// A `Γ_C`-style attack on a minimum cut: each round, up to `width`
    /// arcs of the cut die, in whichever direction currently carries
    /// more traffic. With `width = c(G)` this partitions the graph.
    CutTargeted {
        /// How many cut arcs to kill per round.
        width: usize,
    },
    /// A random node crash-stops at a random round `≤ latest_round`:
    /// from then on all of its sends are omitted.
    CrashOnset {
        /// Latest possible onset round.
        latest_round: usize,
    },
    /// `inner`, silenced from round `after` on — the eventually
    /// quiescent adversaries under which flooding must terminate.
    Quiescent {
        /// First fault-free round.
        after: usize,
        /// The adversary active before `after`.
        inner: Box<AdversaryGen>,
    },
    /// The union of several adversaries' omission sets.
    Stacked(Vec<AdversaryGen>),
}

impl AdversaryGen {
    /// Static per-round bound on effective omissions: the instantiated
    /// adversary never effectively drops more than this in any round.
    pub fn bound(&self, graph: &Graph) -> usize {
        match self {
            AdversaryGen::BudgetCapped { f } => *f,
            AdversaryGen::CutTargeted { width } => *width,
            // A crashed node loses at most its whole out-neighborhood.
            AdversaryGen::CrashOnset { .. } => (0..graph.vertex_count())
                .map(|v| graph.neighbors(v).len())
                .max()
                .unwrap_or(0),
            AdversaryGen::Quiescent { inner, .. } => inner.bound(graph),
            AdversaryGen::Stacked(parts) => {
                parts.iter().map(|p| p.bound(graph)).sum()
            }
        }
    }

    /// Samples one concrete adversary. Every random choice (victims,
    /// onset rounds, per-round noise) flows from `rng`, so a seed pins
    /// the whole run.
    pub fn instantiate(&self, graph: &Graph, rng: &mut StdRng) -> Box<dyn Adversary> {
        match self {
            AdversaryGen::BudgetCapped { f } => Box::new(RandomOmissions::new(
                *f,
                StdRng::seed_from_u64(rng.next_u64()),
            )),
            AdversaryGen::CutTargeted { width } => {
                let p = cut_partition(graph)
                    .expect("cut-targeted generator needs a connected graph with ≥ 2 nodes");
                let mut a_to_b: Vec<DirectedEdge> = p
                    .cut
                    .iter()
                    .map(|&(a, b)| DirectedEdge::new(a, b))
                    .collect();
                let mut b_to_a: Vec<DirectedEdge> = p
                    .cut
                    .iter()
                    .map(|&(a, b)| DirectedEdge::new(b, a))
                    .collect();
                a_to_b.sort_unstable();
                b_to_a.sort_unstable();
                Box::new(CutSliceAdversary {
                    a_to_b,
                    b_to_a,
                    width: *width,
                })
            }
            AdversaryGen::CrashOnset { latest_round } => Box::new(CrashAdversary {
                victim: rng.random_below(graph.vertex_count()),
                crash_round: rng.random_below(latest_round + 1),
            }),
            AdversaryGen::Quiescent { after, inner } => Box::new(QuiescentAdversary {
                after: *after,
                inner: inner.instantiate(graph, rng),
            }),
            AdversaryGen::Stacked(parts) => Box::new(StackedAdversary {
                parts: parts.iter().map(|p| p.instantiate(graph, rng)).collect(),
            }),
        }
    }

    /// Samples a random generator whose [`bound`](Self::bound) is at
    /// most `budget`. Crash onset is only eligible when every node's
    /// degree fits the budget; composition recurses at most twice.
    pub fn sample(rng: &mut StdRng, graph: &Graph, budget: usize, max_rounds: usize) -> Self {
        Self::sample_depth(rng, graph, budget, max_rounds, 2)
    }

    fn sample_depth(
        rng: &mut StdRng,
        graph: &Graph,
        budget: usize,
        max_rounds: usize,
        depth: usize,
    ) -> Self {
        let max_degree = (0..graph.vertex_count())
            .map(|v| graph.neighbors(v).len())
            .max()
            .unwrap_or(0);
        let cut_width = cut_partition(graph).map(|p| p.f()).unwrap_or(0);
        let mut choices = vec![0u8];
        if budget > 0 && cut_width > 0 {
            choices.push(1);
        }
        if max_degree <= budget {
            choices.push(2);
        }
        if depth > 0 {
            choices.push(3);
            if budget >= 2 {
                choices.push(4);
            }
        }
        match choices[rng.random_below(choices.len())] {
            0 => AdversaryGen::BudgetCapped {
                f: rng.random_below(budget + 1),
            },
            1 => AdversaryGen::CutTargeted {
                width: 1 + rng.random_below(budget.min(cut_width)),
            },
            2 => AdversaryGen::CrashOnset {
                latest_round: max_rounds,
            },
            3 => AdversaryGen::Quiescent {
                after: rng.random_below(max_rounds + 1),
                inner: Box::new(Self::sample_depth(rng, graph, budget, max_rounds, depth - 1)),
            },
            _ => {
                let first = rng.random_below(budget + 1);
                AdversaryGen::Stacked(vec![
                    Self::sample_depth(rng, graph, first, max_rounds, depth - 1),
                    Self::sample_depth(rng, graph, budget - first, max_rounds, depth - 1),
                ])
            }
        }
    }
}

/// Runtime form of [`AdversaryGen::CutTargeted`]: kills up to `width`
/// arcs of the cut per round, busier direction first, in-flight arcs
/// before idle ones (idle arcs are harmless padding, kept so the
/// omission *intent* is visible in recorded scripts).
struct CutSliceAdversary {
    a_to_b: Vec<DirectedEdge>,
    b_to_a: Vec<DirectedEdge>,
    width: usize,
}

impl Adversary for CutSliceAdversary {
    fn select_drops(&mut self, _round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let live = |dir: &[DirectedEdge]| pending.iter().filter(|e| dir.contains(e)).count();
        let dir = if live(&self.a_to_b) >= live(&self.b_to_a) {
            &self.a_to_b
        } else {
            &self.b_to_a
        };
        let mut picked: Vec<DirectedEdge> = dir
            .iter()
            .copied()
            .filter(|e| pending.contains(e))
            .take(self.width)
            .collect();
        for &arc in dir.iter() {
            if picked.len() >= self.width {
                break;
            }
            if !picked.contains(&arc) {
                picked.push(arc);
            }
        }
        picked
    }
}

/// Runtime form of [`AdversaryGen::Quiescent`].
struct QuiescentAdversary {
    after: usize,
    inner: Box<dyn Adversary>,
}

impl Adversary for QuiescentAdversary {
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        if round >= self.after {
            Vec::new()
        } else {
            self.inner.select_drops(round, pending)
        }
    }
}

/// Runtime form of [`AdversaryGen::Stacked`]: the sorted union of the
/// parts' omission sets.
struct StackedAdversary {
    parts: Vec<Box<dyn Adversary>>,
}

impl Adversary for StackedAdversary {
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let mut drops: Vec<DirectedEdge> = self
            .parts
            .iter_mut()
            .flat_map(|p| p.select_drops(round, pending))
            .collect();
        drops.sort_unstable();
        drops.dedup();
        drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_graphs::generators;

    fn effective(drops: &[DirectedEdge], pending: &[DirectedEdge]) -> usize {
        let set: std::collections::BTreeSet<_> =
            drops.iter().filter(|e| pending.contains(e)).collect();
        set.len()
    }

    fn all_arcs(g: &Graph) -> Vec<DirectedEdge> {
        g.edges().iter().flat_map(|e| e.directions()).collect()
    }

    #[test]
    fn sampled_generators_respect_their_bound() {
        for g in [generators::cycle(4), generators::hypercube(3)] {
            let budget = minobs_graphs::edge_connectivity(&g) - 1;
            let pending = all_arcs(&g);
            for seed in 0..50u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let gen = AdversaryGen::sample(&mut rng, &g, budget, 10);
                assert!(gen.bound(&g) <= budget, "{gen:?}");
                let mut adv = gen.instantiate(&g, &mut rng);
                for round in 0..10 {
                    let drops = adv.select_drops(round, &pending);
                    assert!(
                        effective(&drops, &pending) <= budget,
                        "{gen:?} round {round}"
                    );
                }
            }
        }
    }

    #[test]
    fn cut_targeted_kills_exactly_width_cut_arcs() {
        let g = generators::cycle(4);
        let mut rng = StdRng::seed_from_u64(7);
        let gen = AdversaryGen::CutTargeted { width: 2 };
        let mut adv = gen.instantiate(&g, &mut rng);
        let pending = all_arcs(&g);
        let drops = adv.select_drops(0, &pending);
        assert_eq!(drops.len(), 2);
        assert_eq!(effective(&drops, &pending), 2);
    }

    #[test]
    fn quiescent_silences_inner_after_cutoff() {
        let g = generators::cycle(4);
        let mut rng = StdRng::seed_from_u64(3);
        let gen = AdversaryGen::Quiescent {
            after: 2,
            inner: Box::new(AdversaryGen::CutTargeted { width: 1 }),
        };
        let mut adv = gen.instantiate(&g, &mut rng);
        let pending = all_arcs(&g);
        assert!(!adv.select_drops(0, &pending).is_empty());
        assert!(!adv.select_drops(1, &pending).is_empty());
        assert!(adv.select_drops(2, &pending).is_empty());
        assert!(adv.select_drops(9, &pending).is_empty());
    }

    #[test]
    fn stacked_unions_and_dedups() {
        let g = generators::cycle(4);
        let mut rng = StdRng::seed_from_u64(5);
        let gen = AdversaryGen::Stacked(vec![
            AdversaryGen::CutTargeted { width: 1 },
            AdversaryGen::CutTargeted { width: 1 },
        ]);
        let mut adv = gen.instantiate(&g, &mut rng);
        let pending = all_arcs(&g);
        let drops = adv.select_drops(0, &pending);
        // Both parts target the same min cut, same direction: the union
        // dedups to one arc.
        assert_eq!(drops.len(), 1);
        let mut sorted = drops.clone();
        sorted.sort_unstable();
        assert_eq!(drops, sorted, "union is emitted sorted");
    }

    #[test]
    fn instantiation_is_deterministic_per_seed() {
        let g = generators::hypercube(3);
        let pending = all_arcs(&g);
        let run = |seed: u64| -> Vec<Vec<DirectedEdge>> {
            let mut rng = StdRng::seed_from_u64(seed);
            let gen = AdversaryGen::sample(&mut rng, &g, 2, 8);
            let mut adv = gen.instantiate(&g, &mut rng);
            (0..8).map(|r| adv.select_drops(r, &pending)).collect()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(1), run(2), "different seeds should differ somewhere");
    }
}
