//! Replayable reproducer artifacts (`minobs/reproducer/v1`).
//!
//! A [`Reproducer`] is everything needed to re-run a violating
//! execution exactly: the graph (by name), the inputs, the `O_f`
//! contract, and the shrunk omission script. Serialization is
//! deterministic — the serde shim's `Map` preserves insertion order and
//! artifacts carry no timestamps — so the same seed produces
//! byte-identical JSON, which CI exploits to pin reproducers.

use minobs_graphs::{generators, DirectedEdge, Graph};
use serde::value::{Map, Value};
use serde::Serialize;

/// Schema tag carried by every reproducer artifact.
pub const REPRODUCER_SCHEMA: &str = "minobs/reproducer/v1";

/// The named graphs the harness fuzzes. Names are stable artifact
/// vocabulary: `k2`, `c4`, `h3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphSpec {
    /// `K_2`: two nodes, one edge, `c(G) = 1` — the two-process case.
    K2,
    /// `C_4`: the 4-cycle, `c(G) = 2` — the smallest nontrivial cut.
    C4,
    /// `Q_3`: the 3-hypercube, `c(G) = 3`.
    H3,
}

impl GraphSpec {
    /// All named graphs, in artifact-name order.
    pub const ALL: [GraphSpec; 3] = [GraphSpec::K2, GraphSpec::C4, GraphSpec::H3];

    /// The stable artifact name.
    pub fn name(self) -> &'static str {
        match self {
            GraphSpec::K2 => "k2",
            GraphSpec::C4 => "c4",
            GraphSpec::H3 => "h3",
        }
    }

    /// Builds the graph.
    pub fn build(self) -> Graph {
        match self {
            GraphSpec::K2 => generators::complete(2),
            GraphSpec::C4 => generators::cycle(4),
            GraphSpec::H3 => generators::hypercube(3),
        }
    }

    /// Parses an artifact name.
    pub fn parse(s: &str) -> Option<GraphSpec> {
        GraphSpec::ALL.into_iter().find(|g| g.name() == s)
    }
}

impl std::fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A self-contained, replayable counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// The graph the violation occurred on.
    pub graph: GraphSpec,
    /// The fuzzing seed that found it.
    pub seed: u64,
    /// Which run under that seed.
    pub run: usize,
    /// The `O_f` contract in force.
    pub contract_f: usize,
    /// Max rounds the engine ran for.
    pub max_rounds: usize,
    /// Per-node inputs.
    pub inputs: Vec<u64>,
    /// Kind of the violated property (see `Violation::kind`).
    pub violation: String,
    /// The shrunk effective omission script, one arc list per round.
    pub script: Vec<Vec<DirectedEdge>>,
}

impl Reproducer {
    /// Stable artifact file name, derived only from seeded data.
    pub fn file_name(&self) -> String {
        format!(
            "{}_seed{}_run{}_{}.json",
            self.graph.name(),
            self.seed,
            self.run,
            self.violation
        )
    }

    /// Pretty JSON with a trailing newline — the on-disk artifact form.
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("reproducer JSON never fails");
        s.push('\n');
        s
    }

    /// Parses an artifact produced by [`Reproducer::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Reproducer, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema")?;
        if schema != REPRODUCER_SCHEMA {
            return Err(format!(
                "schema {schema:?}, expected {REPRODUCER_SCHEMA:?}"
            ));
        }
        let graph_name = value
            .get("graph")
            .and_then(Value::as_str)
            .ok_or("missing graph")?;
        let graph =
            GraphSpec::parse(graph_name).ok_or_else(|| format!("unknown graph {graph_name:?}"))?;
        let field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let inputs = value
            .get("inputs")
            .and_then(Value::as_array)
            .ok_or("missing inputs")?
            .iter()
            .map(|v| v.as_u64().ok_or("non-numeric input"))
            .collect::<Result<Vec<u64>, _>>()?;
        let violation = value
            .get("violation")
            .and_then(Value::as_str)
            .ok_or("missing violation")?
            .to_string();
        let script = value
            .get("script")
            .and_then(Value::as_array)
            .ok_or("missing script")?
            .iter()
            .map(|round| {
                round
                    .as_array()
                    .ok_or("script round is not an array")?
                    .iter()
                    .map(|arc| {
                        let pair = arc.as_array().ok_or("arc is not a pair")?;
                        match pair {
                            [from, to] => Ok(DirectedEdge::new(
                                from.as_u64().ok_or("non-numeric arc endpoint")? as usize,
                                to.as_u64().ok_or("non-numeric arc endpoint")? as usize,
                            )),
                            _ => Err("arc is not a pair"),
                        }
                    })
                    .collect::<Result<Vec<DirectedEdge>, _>>()
            })
            .collect::<Result<Vec<Vec<DirectedEdge>>, _>>()?;
        Ok(Reproducer {
            graph,
            seed: field("seed")?,
            run: field("run")? as usize,
            contract_f: field("contract_f")? as usize,
            max_rounds: field("max_rounds")? as usize,
            inputs,
            violation,
            script,
        })
    }
}

impl Serialize for Reproducer {
    fn to_json_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("schema", Value::from(REPRODUCER_SCHEMA));
        map.insert("graph", Value::from(self.graph.name()));
        map.insert("seed", Value::from(self.seed));
        map.insert("run", Value::from(self.run as u64));
        map.insert("contract_f", Value::from(self.contract_f as u64));
        map.insert("max_rounds", Value::from(self.max_rounds as u64));
        map.insert(
            "inputs",
            Value::Array(self.inputs.iter().map(|&v| Value::from(v)).collect()),
        );
        map.insert("violation", Value::from(self.violation.as_str()));
        map.insert(
            "script",
            Value::Array(
                self.script
                    .iter()
                    .map(|round| {
                        Value::Array(
                            round
                                .iter()
                                .map(|e| {
                                    Value::Array(vec![
                                        Value::from(e.from as u64),
                                        Value::from(e.to as u64),
                                    ])
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        );
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Reproducer {
        Reproducer {
            graph: GraphSpec::C4,
            seed: 42,
            run: 3,
            contract_f: 1,
            max_rounds: 8,
            inputs: vec![0, 7, 3, 9],
            violation: "budget_exceeded".to_string(),
            script: vec![
                vec![DirectedEdge::new(0, 1), DirectedEdge::new(3, 2)],
                vec![],
                vec![DirectedEdge::new(1, 0)],
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = sample();
        let text = r.to_json_string();
        assert_eq!(Reproducer::from_json_str(&text), Ok(r));
    }

    #[test]
    fn serialization_is_byte_stable() {
        assert_eq!(sample().to_json_string(), sample().to_json_string());
        assert!(sample().to_json_string().ends_with('\n'));
        assert!(sample()
            .to_json_string()
            .starts_with("{\n  \"schema\": \"minobs/reproducer/v1\""));
    }

    #[test]
    fn rejects_wrong_schema_and_unknown_graph() {
        assert!(Reproducer::from_json_str(r#"{"schema":"other/v1"}"#)
            .unwrap_err()
            .contains("schema"));
        let bad = sample().to_json_string().replace("\"c4\"", "\"k9\"");
        assert!(Reproducer::from_json_str(&bad)
            .unwrap_err()
            .contains("unknown graph"));
    }

    #[test]
    fn graph_spec_names_roundtrip() {
        for spec in GraphSpec::ALL {
            assert_eq!(GraphSpec::parse(spec.name()), Some(spec));
            assert!(spec.build().vertex_count() >= 2);
        }
        assert_eq!(GraphSpec::parse("petersen"), None);
    }
}
