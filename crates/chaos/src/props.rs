//! The paper's guarantees as executable properties.
//!
//! A finished run is checked against five invariants. The first three
//! are Theorem V.1's consensus conditions, asserted only when the
//! adversary's static bound fits the contract (`f < c(G)`); the last two
//! hold for *every* run, conforming or not.
//!
//! * **Agreement** — no two nodes decide differently.
//! * **Validity** — a uniform input vector forces that value.
//! * **Termination** — everyone decides by the round bound (for
//!   flooding, `n − 1` rounds; Corollary III.14 at network scale).
//! * **Budget conformance** — per round, `|drops ∩ pending| ≤ f`
//!   (set-wise), as recorded by
//!   [`minobs_sim::adversary::BudgetChecked`].
//! * **Conservation** — every sent message is delivered or dropped.

use minobs_sim::adversary::BudgetViolation;
use minobs_sim::network::{NetOutcome, NetVerdict};

/// One observed violation of a paper invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two nodes decided different values.
    Agreement {
        /// A witness pair of distinct decisions.
        values: (u64, u64),
    },
    /// Uniform inputs, but someone decided something else.
    Validity {
        /// The common proposal.
        proposed: u64,
        /// The offending decision.
        decided: u64,
    },
    /// A node failed to decide within the round bound.
    Termination {
        /// How many nodes are still undecided.
        undecided: usize,
    },
    /// The adversary effectively dropped more than its `O_f` contract.
    BudgetExceeded {
        /// The offending round.
        round: usize,
        /// Effective drops that round.
        requested: usize,
        /// The contract budget `f`.
        budget: usize,
    },
    /// Message accounting broke: `sent ≠ delivered + dropped`.
    Conservation {
        /// Messages handed to the environment.
        sent: usize,
        /// Messages delivered.
        delivered: usize,
        /// Messages dropped by the adversary.
        dropped: usize,
    },
}

impl Violation {
    /// Stable machine-readable kind, used in reproducer artifacts.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Agreement { .. } => "agreement",
            Violation::Validity { .. } => "validity",
            Violation::Termination { .. } => "termination",
            Violation::BudgetExceeded { .. } => "budget_exceeded",
            Violation::Conservation { .. } => "conservation",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Agreement { values: (a, b) } => {
                write!(f, "agreement broken: decisions {a} and {b}")
            }
            Violation::Validity { proposed, decided } => {
                write!(f, "validity broken: all proposed {proposed}, decided {decided}")
            }
            Violation::Termination { undecided } => {
                write!(f, "termination broken: {undecided} nodes undecided at the round bound")
            }
            Violation::BudgetExceeded {
                round,
                requested,
                budget,
            } => write!(
                f,
                "O_{budget} contract broken at round {round}: {requested} effective drops"
            ),
            Violation::Conservation {
                sent,
                delivered,
                dropped,
            } => write!(
                f,
                "conservation broken: sent {sent} != delivered {delivered} + dropped {dropped}"
            ),
        }
    }
}

/// Checks a finished run. Budget and conservation violations are always
/// reported; agreement, validity, and termination only when
/// `expect_consensus` (the adversary's bound fits `f < c(G)`, so
/// Theorem V.1 promises them). Budget violations come first — they are
/// the cause, consensus failures the symptom.
pub fn check_run(
    outcome: &NetOutcome,
    budget_violations: &[BudgetViolation],
    expect_consensus: bool,
) -> Vec<Violation> {
    let mut violations: Vec<Violation> = budget_violations
        .iter()
        .map(|v| Violation::BudgetExceeded {
            round: v.round,
            requested: v.requested,
            budget: v.budget,
        })
        .collect();

    let s = &outcome.stats;
    if s.messages_sent != s.messages_delivered + s.messages_dropped {
        violations.push(Violation::Conservation {
            sent: s.messages_sent,
            delivered: s.messages_delivered,
            dropped: s.messages_dropped,
        });
    }

    if expect_consensus {
        match outcome.verdict {
            NetVerdict::Consensus(_) => {}
            NetVerdict::Disagreement { values } => {
                violations.push(Violation::Agreement { values });
            }
            NetVerdict::ValidityViolation { proposed, decided } => {
                violations.push(Violation::Validity { proposed, decided });
            }
            NetVerdict::Undecided { .. } => {}
        }
        let undecided = outcome.decisions.iter().filter(|d| d.is_none()).count();
        if undecided > 0 {
            violations.push(Violation::Termination { undecided });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_sim::trace::RunStats;

    fn outcome(decisions: Vec<Option<u64>>, verdict: NetVerdict, stats: RunStats) -> NetOutcome {
        NetOutcome {
            decisions,
            verdict,
            stats,
        }
    }

    fn clean_stats() -> RunStats {
        RunStats {
            rounds: 3,
            messages_sent: 12,
            messages_delivered: 10,
            messages_dropped: 2,
            misaddressed: 0,
            max_drops_per_round: 1,
        }
    }

    #[test]
    fn clean_consensus_run_has_no_violations() {
        let o = outcome(
            vec![Some(4), Some(4)],
            NetVerdict::Consensus(4),
            clean_stats(),
        );
        assert!(check_run(&o, &[], true).is_empty());
    }

    #[test]
    fn budget_breach_is_reported_first() {
        let o = outcome(
            vec![Some(4), Some(5)],
            NetVerdict::Disagreement { values: (4, 5) },
            clean_stats(),
        );
        let bv = [BudgetViolation {
            round: 0,
            requested: 2,
            budget: 1,
        }];
        let v = check_run(&o, &bv, true);
        assert_eq!(v[0].kind(), "budget_exceeded");
        assert!(v.iter().any(|x| x.kind() == "agreement"));
    }

    #[test]
    fn consensus_properties_skipped_when_not_expected() {
        let o = outcome(
            vec![Some(4), None],
            NetVerdict::Disagreement { values: (4, 5) },
            clean_stats(),
        );
        assert!(check_run(&o, &[], false).is_empty());
        let v = check_run(&o, &[], true);
        assert!(v.iter().any(|x| x.kind() == "agreement"));
        assert!(v.iter().any(|x| x.kind() == "termination"));
    }

    #[test]
    fn conservation_always_checked() {
        let mut stats = clean_stats();
        stats.messages_delivered = 9;
        let o = outcome(vec![Some(4), Some(4)], NetVerdict::Consensus(4), stats);
        let v = check_run(&o, &[], false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind(), "conservation");
    }
}
