//! Greedy counterexample shrinking over omission scripts.
//!
//! Classic delta debugging, specialized to the two axes an omission
//! script has: whole rounds and individual arcs. The shrinker
//! repeatedly tries, in a fixed deterministic order,
//!
//! 1. truncating the script after each prefix,
//! 2. emptying whole rounds,
//! 3. removing single arcs,
//!
//! keeping a candidate whenever `still_fails` says the violation
//! survives, until a fixpoint. The result is 1-minimal: removing any
//! single remaining arc (or round) makes the violation disappear.
//! Determinism matters — the shrunk script is what gets serialized into
//! the reproducer artifact, and the same seed must yield the same bytes.

use minobs_graphs::DirectedEdge;

/// Shrinks `script` to a locally minimal script that still fails.
///
/// `still_fails` re-runs the system under the candidate script and
/// reports whether the original violation still occurs. If the input
/// script does not fail to begin with, it is returned unchanged.
pub fn shrink_script(
    script: Vec<Vec<DirectedEdge>>,
    still_fails: &mut dyn FnMut(&[Vec<DirectedEdge>]) -> bool,
) -> Vec<Vec<DirectedEdge>> {
    if !still_fails(&script) {
        return script;
    }
    let mut best = script;
    loop {
        let mut progressed = false;

        // Pass 1: truncate — the shortest failing prefix wins.
        for cut in 0..best.len() {
            let candidate = best[..cut].to_vec();
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
                break;
            }
        }

        // Pass 2: empty whole rounds.
        for r in 0..best.len() {
            if best[r].is_empty() {
                continue;
            }
            let mut candidate = best.clone();
            candidate[r].clear();
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
            }
        }

        // Pass 3: drop single arcs.
        for r in 0..best.len() {
            let mut i = 0;
            while i < best[r].len() {
                let mut candidate = best.clone();
                candidate[r].remove(i);
                if still_fails(&candidate) {
                    best = candidate;
                    progressed = true;
                } else {
                    i += 1;
                }
            }
        }

        // Trailing empty rounds carry no information.
        while best.last().is_some_and(Vec::is_empty) {
            best.pop();
            progressed = true;
        }

        if !progressed {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(list: &[(usize, usize)]) -> Vec<DirectedEdge> {
        list.iter().map(|&(a, b)| DirectedEdge::new(a, b)).collect()
    }

    #[test]
    fn shrinks_to_the_single_culprit_arc() {
        // Failure := the script drops (0,1) in some round. Everything
        // else is noise the shrinker must strip.
        let noisy = vec![
            edges(&[(2, 3), (3, 2)]),
            edges(&[(0, 1), (1, 0), (2, 3)]),
            edges(&[(3, 2)]),
        ];
        let mut fails = |s: &[Vec<DirectedEdge>]| {
            s.iter().flatten().any(|e| *e == DirectedEdge::new(0, 1))
        };
        let minimal = shrink_script(noisy, &mut fails);
        assert_eq!(minimal, vec![vec![], edges(&[(0, 1)])]);
    }

    #[test]
    fn shrinks_conjunctive_failure_to_both_witnesses() {
        // Failure needs ≥ 2 arcs in round 0 — a budget-style predicate.
        let noisy = vec![edges(&[(0, 1), (1, 0), (2, 3), (3, 2)]), edges(&[(0, 1)])];
        let mut fails = |s: &[Vec<DirectedEdge>]| s.first().is_some_and(|r| r.len() >= 2);
        let minimal = shrink_script(noisy, &mut fails);
        // Greedy removal strips from the front, so the last two arcs
        // survive as the 2-minimal witness.
        assert_eq!(minimal, vec![edges(&[(2, 3), (3, 2)])]);
    }

    #[test]
    fn non_failing_script_is_returned_unchanged() {
        let script = vec![edges(&[(0, 1)])];
        let mut fails = |_: &[Vec<DirectedEdge>]| false;
        assert_eq!(shrink_script(script.clone(), &mut fails), script);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let noisy = vec![
            edges(&[(0, 1), (1, 2), (2, 0)]),
            edges(&[(1, 0), (2, 1)]),
        ];
        let run = || {
            let mut fails =
                |s: &[Vec<DirectedEdge>]| s.iter().map(Vec::len).sum::<usize>() >= 2;
            shrink_script(noisy.clone(), &mut fails)
        };
        assert_eq!(run(), run());
        assert_eq!(run().iter().map(Vec::len).sum::<usize>(), 2);
    }
}
