//! Chaos harness: seeded adversary fuzzing for the network engines.
//!
//! Theorem V.1 gives the workspace a sharp testable boundary: flooding
//! consensus on a graph `G` tolerates any omission adversary with fewer
//! than `c(G)` losses per round, and no algorithm tolerates `c(G)`. This
//! crate turns that boundary into a randomized harness:
//!
//! 1. **Generate** — [`gen::AdversaryGen`] is a small composable DSL of
//!    adversary generators (budget-capped `O_f` noise, cut-targeted
//!    `Γ_C` attacks, crash onset, eventual quiescence, stacking). A
//!    generator samples a concrete [`minobs_sim::adversary::Adversary`]
//!    from a seeded [`rand::rngs::StdRng`], so every run is replayable
//!    from `(graph, seed)` alone.
//! 2. **Check** — [`props`] states the paper's guarantees as executable
//!    properties of a finished run: Agreement, Validity, Termination by
//!    the round bound, budget conformance (`|drops ∩ pending| ≤ f`,
//!    per round, set-wise), and message conservation.
//! 3. **Shrink** — on a violation, [`shrink`] reduces the recorded
//!    omission script to a local minimum by greedy delta debugging: the
//!    result is a minimal [`minobs_sim::adversary::ScriptedAdversary`]
//!    reproducer, serialized by [`artifact`] as deterministic JSON
//!    (`minobs/reproducer/v1`) that replays byte-for-byte.
//!
//! The [`harness`] module ties the three together; the `chaos` binary
//! exposes `fuzz` and `replay` subcommands (see `docs/CHAOS.md`).
//!
//! Everything is deterministic per seed: artifacts contain no
//! timestamps, the RNG is the workspace's seeded shim, and shrinking
//! explores candidates in a fixed order — the same seed produces the
//! same reproducer, byte for byte.

pub mod artifact;
pub mod fault;
pub mod gen;
pub mod harness;
pub mod link;
pub mod props;
pub mod record;
pub mod shrink;

pub use artifact::{GraphSpec, Reproducer, REPRODUCER_SCHEMA};
pub use fault::FaultPlan;
pub use gen::AdversaryGen;
pub use harness::{replay, run_chaos, ChaosConfig, ChaosReport};
pub use link::{LinkFault, LinkFaultPlan};
pub use props::Violation;
pub use record::RecordingAdversary;
pub use shrink::shrink_script;
