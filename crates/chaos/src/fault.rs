//! Storage fault plans: the adversary DSL pointed at a byte log.
//!
//! The rest of this crate attacks *messages in flight*; a [`FaultPlan`]
//! attacks *bytes at rest* — the failure modes a crash-safe append-only
//! log must survive. A plan describes what the disk did to a log before
//! a process restart:
//!
//! - **crash** — the process died mid-stream: every byte past
//!   `crash_after_bytes` was never written;
//! - **torn tail** — the final `torn_tail_bytes` of what *was* written
//!   landed only partially (a record cut mid-frame);
//! - **bit rot** — `corrupt_last_record` flips one bit in the surviving
//!   tail, so a length/checksum frame must catch it;
//! - **write errors** — `write_error_after_bytes` marks the point at
//!   which appends start failing `ENOSPC`-style, for harnesses driving
//!   an injectable writer rather than mutilating a finished log.
//!
//! Like [`crate::gen::AdversaryGen`], plans are sampled from a seed so
//! every run is replayable from `(seed, log_len)` alone, and a pinned
//! seed sweep is a deterministic CI job.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// One sampled storage fault, applied to a finished byte log (or, for
/// `write_error_after_bytes`, consulted live by an injectable writer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Bytes that survive the crash; everything past this offset is
    /// discarded. `None` leaves the log whole.
    pub crash_after_bytes: Option<u64>,
    /// Bytes additionally torn off the surviving tail (a partially
    /// flushed final record).
    pub torn_tail_bytes: u64,
    /// Flip one bit in the last surviving byte, simulating rot that a
    /// checksum must reject.
    pub corrupt_last_record: bool,
    /// Offset past which an injectable writer should fail appends with
    /// an out-of-space error. `None` writes never fail.
    pub write_error_after_bytes: Option<u64>,
}

impl FaultPlan {
    /// The do-nothing plan: the log survives untouched.
    pub const NONE: FaultPlan = FaultPlan {
        crash_after_bytes: None,
        torn_tail_bytes: 0,
        corrupt_last_record: false,
        write_error_after_bytes: None,
    };

    /// A crash that preserves exactly `bytes` bytes of log.
    pub fn crash_at(bytes: u64) -> FaultPlan {
        FaultPlan {
            crash_after_bytes: Some(bytes),
            ..FaultPlan::NONE
        }
    }

    /// Samples one plan for a log of `log_len` bytes. Deterministic per
    /// seed: each seed pins a crash point somewhere in the log, plus an
    /// independent chance of a torn tail and of bit rot.
    pub fn sample(seed: u64, log_len: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let crash = rng.random_below(log_len as usize + 1) as u64;
        let torn = if rng.random_bool(0.5) {
            rng.random_below(16) as u64
        } else {
            0
        };
        FaultPlan {
            crash_after_bytes: Some(crash),
            torn_tail_bytes: torn,
            corrupt_last_record: rng.random_bool(0.25),
            write_error_after_bytes: None,
        }
    }

    /// Applies the at-rest faults to a finished log, in the order the
    /// hardware would: crash truncation, then the torn tail, then rot on
    /// whatever byte ended up last.
    pub fn mutilate(&self, bytes: &mut Vec<u8>) {
        if let Some(crash) = self.crash_after_bytes {
            bytes.truncate(crash.min(bytes.len() as u64) as usize);
        }
        let keep = bytes.len().saturating_sub(self.torn_tail_bytes as usize);
        bytes.truncate(keep);
        if self.corrupt_last_record {
            if let Some(last) = bytes.last_mut() {
                *last ^= 0x40;
            }
        }
    }

    /// Whether an append that would end at `offset` bytes should fail
    /// with a write error under this plan.
    pub fn fails_at(&self, offset: u64) -> bool {
        self.write_error_after_bytes
            .is_some_and(|limit| offset > limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        for seed in 0..32 {
            assert_eq!(FaultPlan::sample(seed, 1000), FaultPlan::sample(seed, 1000));
        }
    }

    #[test]
    fn mutilation_is_shrinking_and_bounded() {
        for seed in 0..64u64 {
            let original: Vec<u8> = (0..200u8).collect();
            let mut log = original.clone();
            let plan = FaultPlan::sample(seed, log.len() as u64);
            plan.mutilate(&mut log);
            assert!(log.len() <= original.len(), "seed {seed}");
            // Every byte but possibly the last is an untouched prefix.
            if !log.is_empty() {
                let body = &log[..log.len() - 1];
                assert_eq!(body, &original[..body.len()], "seed {seed}");
            }
        }
    }

    #[test]
    fn none_plan_is_identity() {
        let mut log = vec![1u8, 2, 3];
        FaultPlan::NONE.mutilate(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert!(!FaultPlan::NONE.fails_at(u64::MAX));
    }

    #[test]
    fn write_errors_trip_past_the_limit() {
        let plan = FaultPlan {
            write_error_after_bytes: Some(100),
            ..FaultPlan::NONE
        };
        assert!(!plan.fails_at(100));
        assert!(plan.fails_at(101));
    }
}
