//! Replication-link fault plans: the adversary DSL pointed at gossip.
//!
//! [`crate::fault::FaultPlan`] attacks bytes at rest; a [`LinkFaultPlan`]
//! attacks the anti-entropy rounds a verdict-cache cluster uses to stay
//! convergent. A plan describes, per logical gossip round and directed link,
//! whether the exchange is delivered, dropped, or delayed:
//!
//! - **partition** — for a window of rounds, a sampled non-trivial node
//!   split severs every link that crosses it (both directions);
//! - **noise** — outside and inside the window, an independent per-link
//!   chance of a dropped or briefly delayed round;
//! - **heal** — past [`LinkFaultPlan::heal_round`] every link delivers,
//!   unconditionally, so a convergence property has a guaranteed horizon
//!   to assert against.
//!
//! Verdicts are a pure function of `(plan, round, from, to)` — no RNG
//! state advances at decision time — so a plan can be consulted
//! concurrently from every node of an in-process cluster and a pinned
//! seed sweep replays identically, exactly like the storage-fault sweep.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a link does with one gossip round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The round goes through.
    Deliver,
    /// The round is lost; the initiator sees a failure.
    Drop,
    /// The round goes through after this many milliseconds.
    Delay(u64),
}

/// One sampled replication-link fault schedule over a cluster of nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFaultPlan {
    /// Seed the per-link noise is keyed from.
    pub seed: u64,
    /// Number of nodes (indices `0..nodes`).
    pub nodes: usize,
    /// First round of the partition window.
    pub partition_start: u64,
    /// First round *after* the partition window.
    pub partition_end: u64,
    /// Bitmask over node indices naming one side of the partition.
    /// Non-trivial by construction (neither empty nor everyone).
    pub split: u64,
    /// Per-mill probability a non-partitioned round is dropped anyway.
    pub drop_per_mill: u32,
    /// Per-mill probability a delivered round is delayed a few ms.
    pub delay_per_mill: u32,
    /// Round from which every link delivers unconditionally.
    pub heal_round: u64,
}

impl LinkFaultPlan {
    /// The do-nothing plan: every round on every link delivers.
    pub const NONE: LinkFaultPlan = LinkFaultPlan {
        seed: 0,
        nodes: 0,
        partition_start: 0,
        partition_end: 0,
        split: 0,
        drop_per_mill: 0,
        delay_per_mill: 0,
        heal_round: 0,
    };

    /// Samples one plan for a cluster of `nodes` (≥ 2). Deterministic per
    /// seed: the partition window, the split, and the noise rates are all
    /// pinned up front.
    pub fn sample(seed: u64, nodes: usize) -> LinkFaultPlan {
        assert!(nodes >= 2, "a link plan needs at least two nodes");
        assert!(nodes <= 63, "split mask is a u64 bitmask");
        let mut rng = StdRng::seed_from_u64(seed);
        let partition_start = rng.random_below(4) as u64 + 1;
        let window = rng.random_below(8) as u64 + 3;
        // Any value in 1..2^nodes-1 leaves both sides non-empty.
        let split = rng.random_below((1usize << nodes) - 2) as u64 + 1;
        let partition_end = partition_start + window;
        LinkFaultPlan {
            seed,
            nodes,
            partition_start,
            partition_end,
            split,
            drop_per_mill: rng.random_below(250) as u32,
            delay_per_mill: rng.random_below(200) as u32,
            heal_round: partition_end,
        }
    }

    /// `true` once every link is guaranteed to deliver.
    pub fn healed(&self, round: u64) -> bool {
        round >= self.heal_round
    }

    /// `true` when the directed link `from -> to` crosses the partition
    /// during `round`.
    pub fn partitioned(&self, round: u64, from: usize, to: usize) -> bool {
        round >= self.partition_start
            && round < self.partition_end
            && (self.split >> (from % 64)) & 1 != (self.split >> (to % 64)) & 1
    }

    /// The fault verdict for node `from` gossiping to node `to` on logical
    /// round `round`. Pure in its inputs.
    pub fn verdict(&self, round: u64, from: usize, to: usize) -> LinkFault {
        if self.nodes == 0 || self.healed(round) {
            return LinkFault::Deliver;
        }
        if self.partitioned(round, from, to) {
            return LinkFault::Drop;
        }
        // Keyed noise: a splitmix-style hash of (seed, round, link) in
        // place of RNG state, so concurrent callers agree.
        let mut x = self
            .seed
            .wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((from as u64) << 32 | to as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let roll = (x % 1000) as u32;
        if roll < self.drop_per_mill {
            LinkFault::Drop
        } else if roll < self.drop_per_mill + self.delay_per_mill {
            LinkFault::Delay(1 + x % 3)
        } else {
            LinkFault::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan_and_verdicts() {
        for seed in 0..32 {
            let a = LinkFaultPlan::sample(seed, 3);
            let b = LinkFaultPlan::sample(seed, 3);
            assert_eq!(a, b);
            for round in 0..40 {
                for from in 0..3 {
                    for to in 0..3 {
                        assert_eq!(
                            a.verdict(round, from, to),
                            b.verdict(round, from, to),
                            "seed {seed} round {round} {from}->{to}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partition_is_nontrivial_and_severs_both_directions() {
        for seed in 0..64u64 {
            let plan = LinkFaultPlan::sample(seed, 3);
            let mask = plan.split & ((1 << plan.nodes) - 1);
            assert!(mask != 0, "seed {seed}: one side empty");
            assert!(
                mask != (1 << plan.nodes) - 1,
                "seed {seed}: other side empty"
            );
            let round = plan.partition_start;
            for from in 0..plan.nodes {
                for to in 0..plan.nodes {
                    if plan.partitioned(round, from, to) {
                        assert!(plan.partitioned(round, to, from), "symmetric severing");
                        assert_eq!(plan.verdict(round, from, to), LinkFault::Drop);
                    }
                }
            }
            // Some link must actually be severed during the window.
            let severed = (0..plan.nodes)
                .flat_map(|f| (0..plan.nodes).map(move |t| (f, t)))
                .any(|(f, t)| f != t && plan.partitioned(round, f, t));
            assert!(severed, "seed {seed}: partition severs nothing");
        }
    }

    #[test]
    fn every_plan_heals() {
        for seed in 0..64u64 {
            let plan = LinkFaultPlan::sample(seed, 4);
            assert!(plan.heal_round >= plan.partition_end);
            for round in plan.heal_round..plan.heal_round + 10 {
                for from in 0..plan.nodes {
                    for to in 0..plan.nodes {
                        assert_eq!(
                            plan.verdict(round, from, to),
                            LinkFault::Deliver,
                            "seed {seed}: fault after heal"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn none_plan_always_delivers() {
        for round in 0..10 {
            assert_eq!(LinkFaultPlan::NONE.verdict(round, 0, 1), LinkFault::Deliver);
        }
        assert!(LinkFaultPlan::NONE.healed(0));
    }
}
