//! Chaos harness CLI.
//!
//! ```text
//! chaos fuzz --graph <k2|c4|h3> [--seed N] [--runs N] [--over-budget] [--out DIR]
//! chaos replay <artifact.json>...
//! ```
//!
//! `fuzz` runs a seeded campaign. On violations it writes one shrunk
//! reproducer JSON (plus a `minobs/trace/v1` trace sibling) per
//! violating run into `--out` (default `target/chaos`). Exit code 0
//! means "expected outcome": no violations normally; in `--over-budget`
//! mode at least one violation, **all** of kind `budget_exceeded` — a
//! consensus-invariant violation (agreement, validity, termination,
//! conservation) is never an expected outcome and always exits
//! non-zero. The seed can also come from the `MINOBS_CHAOS_SEED`
//! environment variable (the flag wins).
//!
//! `replay` re-runs previously saved artifacts and exits non-zero if
//! any no longer reproduces its recorded violation.

use minobs_chaos::harness::replay_with_trace;
use minobs_chaos::{run_chaos, ChaosConfig, GraphSpec, Reproducer};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  chaos fuzz --graph <k2|c4|h3> [--seed N] [--runs N] [--over-budget] [--out DIR]\n  chaos replay <artifact.json>..."
    );
    ExitCode::FAILURE
}

fn env_seed() -> Option<u64> {
    std::env::var("MINOBS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
}

fn write_artifacts(rep: &Reproducer, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(rep.file_name());
    std::fs::write(&json_path, rep.to_json_string())?;
    let (_, events) = replay_with_trace(rep);
    let trace: String = events
        .iter()
        .map(|e| {
            let mut line = serde_json::to_string(&e.to_json()).expect("trace JSON never fails");
            line.push('\n');
            line
        })
        .collect();
    std::fs::write(json_path.with_extension("trace.jsonl"), trace)?;
    Ok(json_path)
}

fn fuzz(args: &[String]) -> ExitCode {
    let mut graph = None;
    let mut seed = env_seed().unwrap_or(1);
    let mut runs = 25usize;
    let mut over_budget = false;
    let mut out = PathBuf::from("target/chaos");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--graph" => match it.next().map(|s| GraphSpec::parse(s)) {
                Some(Some(g)) => graph = Some(g),
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--runs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(r) => runs = r,
                None => return usage(),
            },
            "--over-budget" => over_budget = true,
            "--out" => match it.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(graph) = graph else {
        return usage();
    };

    let cfg = ChaosConfig {
        graph,
        seed,
        runs,
        over_budget,
    };
    let report = run_chaos(&cfg);
    println!(
        "chaos fuzz: graph {} seed {} — {}/{} runs violated",
        graph, seed, report.violating_runs, report.runs
    );
    for rep in &report.reproducers {
        match write_artifacts(rep, &out) {
            Ok(path) => println!("  {} → {}", rep.violation, path.display()),
            Err(err) => {
                eprintln!("chaos fuzz: cannot write artifact: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Invariant violations (anything but the budget contract breach the
    // over-budget mode exists to provoke) must always fail the run.
    let invariant_violations = report
        .reproducers
        .iter()
        .filter(|rep| rep.violation != "budget_exceeded")
        .count();
    let expected = if over_budget {
        report.violating_runs > 0 && invariant_violations == 0
    } else {
        report.violating_runs == 0
    };
    if expected {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "chaos fuzz: unexpected outcome (over_budget={over_budget}, violations={}, invariant violations={invariant_violations})",
            report.violating_runs
        );
        ExitCode::FAILURE
    }
}

fn replay_files(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        return usage();
    }
    let mut failures = 0usize;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("chaos replay: cannot read {path}: {err}");
                failures += 1;
                continue;
            }
        };
        let rep = match Reproducer::from_json_str(&text) {
            Ok(rep) => rep,
            Err(err) => {
                eprintln!("chaos replay: {path}: {err}");
                failures += 1;
                continue;
            }
        };
        let (outcome, _) = replay_with_trace(&rep);
        if outcome.reproduced {
            println!("chaos replay: {path}: reproduced {}", rep.violation);
        } else {
            eprintln!(
                "chaos replay: {path}: expected {} — observed {:?}",
                rep.violation,
                outcome
                    .violations
                    .iter()
                    .map(|v| v.kind())
                    .collect::<Vec<_>>()
            );
            failures += 1;
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = minobs_bench::cli::handle_common_flags(
        "chaos",
        "seeded adversary fuzzing with counterexample shrinking",
        "chaos fuzz --graph <k2|c4|h3> [--seed N] [--runs N] [--over-budget] [--out DIR]\n  chaos replay <artifact.json>...",
    );
    match args.first().map(String::as_str) {
        Some("fuzz") => fuzz(&args[1..]),
        Some("replay") => replay_files(&args[1..]),
        _ => usage(),
    }
}
