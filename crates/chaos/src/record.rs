//! Script recording: turning any adversary run into a replayable script.
//!
//! [`RecordingAdversary`] wraps an adversary and records, per round, the
//! *effective* omission set `drops ∩ pending` (sorted, deduplicated).
//! Effective sets are what matter for replay: an edge named while no
//! message was in flight changes nothing, so recording it would only
//! bloat the script the shrinker then has to whittle down.

use minobs_graphs::DirectedEdge;
use minobs_sim::adversary::Adversary;

/// Wraps an adversary, recording the effective omission script.
pub struct RecordingAdversary {
    inner: Box<dyn Adversary>,
    script: Vec<Vec<DirectedEdge>>,
}

impl RecordingAdversary {
    /// Wraps `inner`; the script starts empty and grows one entry per
    /// observed round.
    pub fn new(inner: Box<dyn Adversary>) -> Self {
        RecordingAdversary {
            inner,
            script: Vec::new(),
        }
    }

    /// The effective omission script recorded so far.
    pub fn script(&self) -> &[Vec<DirectedEdge>] {
        &self.script
    }

    /// Consumes the wrapper, returning the recorded script.
    pub fn into_script(self) -> Vec<Vec<DirectedEdge>> {
        self.script
    }
}

impl Adversary for RecordingAdversary {
    fn select_drops(&mut self, round: usize, pending: &[DirectedEdge]) -> Vec<DirectedEdge> {
        let drops = self.inner.select_drops(round, pending);
        let mut effective: Vec<DirectedEdge> = drops
            .iter()
            .copied()
            .filter(|e| pending.contains(e))
            .collect();
        effective.sort_unstable();
        effective.dedup();
        while self.script.len() <= round {
            self.script.push(Vec::new());
        }
        self.script[round] = effective;
        drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minobs_sim::adversary::ScriptedAdversary;

    fn edges(list: &[(usize, usize)]) -> Vec<DirectedEdge> {
        list.iter().map(|&(a, b)| DirectedEdge::new(a, b)).collect()
    }

    #[test]
    fn records_only_effective_drops_sorted() {
        // The script names (1,0) twice plus an idle edge (5,6); only the
        // in-flight arcs survive, once each, in sorted order.
        let inner = ScriptedAdversary::repeating(vec![edges(&[(1, 0), (5, 6), (0, 1), (1, 0)])]);
        let mut rec = RecordingAdversary::new(Box::new(inner));
        let pending = edges(&[(0, 1), (1, 0)]);
        let drops = rec.select_drops(0, &pending);
        assert_eq!(drops.len(), 4, "drops pass through untouched");
        assert_eq!(rec.script(), &[edges(&[(0, 1), (1, 0)])]);
    }

    #[test]
    fn pads_unobserved_rounds_with_empty_sets() {
        let inner = ScriptedAdversary::once(vec![]);
        let mut rec = RecordingAdversary::new(Box::new(inner));
        let _ = rec.select_drops(3, &edges(&[(0, 1)]));
        assert_eq!(rec.script().len(), 4);
        assert!(rec.script()[..3].iter().all(Vec::is_empty));
    }
}
