//! The [`UBig`] unsigned big integer.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};
use std::str::FromStr;

const BASE_BITS: u32 = 32;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian base-2³² limbs with no trailing zero limb, so
/// zero is the empty limb vector and derived `Eq`/`Hash` are canonical.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct UBig {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u32>,
}

/// Error returned when parsing a decimal string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUBigError {
    offending: char,
}

impl fmt::Display for ParseUBigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid digit {:?} in UBig literal", self.offending)
    }
}

impl std::error::Error for ParseUBigError {}

impl UBig {
    /// The value 0.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Returns `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff the value is even. Zero is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l % 2 == 0)
    }

    /// Returns `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() - 1) * BASE_BITS as usize + (32 - top.leading_zeros() as usize)
            }
        }
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for &l in self.limbs.iter().rev() {
            v = (v << BASE_BITS) | l as u128;
        }
        Some(v)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        self.to_u128().and_then(|v| u64::try_from(v).ok())
    }

    /// `self + other`.
    pub fn add_ref(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..long.limbs.len() {
            let s = long.limbs[i] as u64 + short.limbs.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> BASE_BITS;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut r = UBig { limbs: out };
        r.trim();
        r
    }

    /// `self - other`, or `None` when `other > self`.
    pub fn checked_sub(&self, other: &UBig) -> Option<UBig> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << BASE_BITS)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        let mut r = UBig { limbs: out };
        r.trim();
        Some(r)
    }

    /// `|self - other|`.
    pub fn abs_diff(&self, other: &UBig) -> UBig {
        match self.cmp(other) {
            Ordering::Less => other.checked_sub(self).unwrap(),
            _ => self.checked_sub(other).unwrap(),
        }
    }

    /// `self * small`.
    pub fn mul_small(&self, small: u32) -> UBig {
        if small == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u64 = 0;
        for &l in &self.limbs {
            let p = l as u64 * small as u64 + carry;
            out.push(p as u32);
            carry = p >> BASE_BITS;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        UBig { limbs: out }
    }

    /// `self * other` (schoolbook; operands in this domain stay small).
    pub fn mul_ref(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> BASE_BITS;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> BASE_BITS;
                k += 1;
            }
        }
        let mut r = UBig { limbs: out };
        r.trim();
        r
    }

    /// `self^exp` by square-and-multiply.
    pub fn pow(&self, exp: u32) -> UBig {
        let mut base = self.clone();
        let mut exp = exp;
        let mut acc = UBig::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// Divides by a small divisor, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics when `div == 0`.
    pub fn div_rem_small(&self, div: u32) -> (UBig, u32) {
        assert!(div != 0, "division by zero");
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << BASE_BITS) | self.limbs[i] as u64;
            out[i] = (cur / div as u64) as u32;
            rem = cur % div as u64;
        }
        let mut q = UBig { limbs: out };
        q.trim();
        (q, rem as u32)
    }

    /// The successor `self + 1`.
    pub fn succ(&self) -> UBig {
        self.add_ref(&UBig::one())
    }

    /// The predecessor `self - 1`, or `None` for zero.
    pub fn pred(&self) -> Option<UBig> {
        self.checked_sub(&UBig::one())
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            o => o,
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for UBig {
            fn from(v: $t) -> Self {
                let mut v = v as u128;
                let mut limbs = Vec::new();
                while v != 0 {
                    limbs.push(v as u32);
                    v >>= BASE_BITS;
                }
                UBig { limbs }
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, u128, usize);

impl Add for UBig {
    type Output = UBig;
    fn add(self, rhs: UBig) -> UBig {
        self.add_ref(&rhs)
    }
}

impl Add<&UBig> for &UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        self.add_ref(rhs)
    }
}

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        *self = self.add_ref(rhs);
    }
}

impl Sub for UBig {
    type Output = UBig;
    /// # Panics
    /// Panics on underflow; use [`UBig::checked_sub`] to handle it.
    fn sub(self, rhs: UBig) -> UBig {
        self.checked_sub(&rhs).expect("UBig subtraction underflow")
    }
}

impl Sub<&UBig> for &UBig {
    type Output = UBig;
    fn sub(self, rhs: &UBig) -> UBig {
        self.checked_sub(rhs).expect("UBig subtraction underflow")
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        *self = self.checked_sub(rhs).expect("UBig subtraction underflow");
    }
}

impl Mul for UBig {
    type Output = UBig;
    fn mul(self, rhs: UBig) -> UBig {
        self.mul_ref(&rhs)
    }
}

impl Mul<&UBig> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        self.mul_ref(rhs)
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(10);
            digits.push(char::from(b'0' + r as u8));
            cur = q;
        }
        digits.reverse();
        let s: String = digits.into_iter().collect();
        f.write_str(&s)
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({self})")
    }
}

impl FromStr for UBig {
    type Err = ParseUBigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut acc = UBig::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseUBigError { offending: c })?;
            acc = acc.mul_small(10).add_ref(&UBig::from(d));
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_is_canonical() {
        assert_eq!(UBig::zero(), UBig::from(0u32));
        assert!(UBig::zero().is_zero());
        assert!(UBig::zero().is_even());
        assert_eq!(UBig::zero().bit_len(), 0);
    }

    #[test]
    fn small_roundtrip() {
        for v in [0u128, 1, 2, 12, 255, 4096, u32::MAX as u128, u64::MAX as u128, u128::MAX] {
            assert_eq!(UBig::from(v).to_u128(), Some(v));
        }
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let v: UBig = "9123456789012345678901234567890123456789".parse().unwrap();
        assert_eq!(v.to_string(), "9123456789012345678901234567890123456789");
        assert!(v.to_u128().is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("12a3".parse::<UBig>().is_err());
        assert_eq!("1_000".parse::<UBig>().unwrap(), UBig::from(1000u32));
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = UBig::from(u32::MAX);
        let b = UBig::from(1u32);
        assert_eq!(a.add_ref(&b), UBig::from(1u64 << 32));
    }

    #[test]
    fn subtraction_borrows_and_checks() {
        let a = UBig::from(1u64 << 32);
        let b = UBig::from(1u32);
        assert_eq!(a.checked_sub(&b), Some(UBig::from(u32::MAX)));
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = UBig::from(100u32);
        let b = UBig::from(58u32);
        assert_eq!(a.abs_diff(&b), UBig::from(42u32));
        assert_eq!(b.abs_diff(&a), UBig::from(42u32));
        assert_eq!(a.abs_diff(&a), UBig::zero());
    }

    #[test]
    fn mul_small_by_zero_is_zero() {
        assert_eq!(UBig::from(12345u32).mul_small(0), UBig::zero());
        assert_eq!(UBig::zero().mul_small(7), UBig::zero());
    }

    #[test]
    fn pow_matches_u128() {
        assert_eq!(UBig::from(2u32).pow(127).to_u128(), Some(1u128 << 127));
        assert_eq!(UBig::from(7u32).pow(0), UBig::one());
        assert_eq!(UBig::from(0u32).pow(5), UBig::zero());
    }

    #[test]
    fn div_rem_small_basics() {
        let v = UBig::from(1_000_000_007u64);
        let (q, r) = v.div_rem_small(10);
        assert_eq!(q, UBig::from(100_000_000u64));
        assert_eq!(r, 7);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = UBig::one().div_rem_small(0);
    }

    #[test]
    fn ordering_compares_by_magnitude() {
        let a = UBig::from(u64::MAX);
        let b = UBig::from(u32::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn succ_pred_roundtrip() {
        let v = UBig::from(u32::MAX);
        assert_eq!(v.succ().pred(), Some(v));
        assert_eq!(UBig::zero().pred(), None);
    }

    fn arb_u128_pair() -> impl Strategy<Value = (u128, u128)> {
        (any::<u128>(), any::<u128>())
    }

    proptest! {
        #[test]
        fn prop_add_matches_u128((a, b) in arb_u128_pair()) {
            // Stay inside u128 by halving.
            let (a, b) = (a >> 1, b >> 1);
            prop_assert_eq!(
                UBig::from(a).add_ref(&UBig::from(b)).to_u128(),
                Some(a + b)
            );
        }

        #[test]
        fn prop_sub_matches_u128((a, b) in arb_u128_pair()) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            prop_assert_eq!(
                UBig::from(hi).checked_sub(&UBig::from(lo)).unwrap().to_u128(),
                Some(hi - lo)
            );
            if hi != lo {
                prop_assert_eq!(UBig::from(lo).checked_sub(&UBig::from(hi)), None);
            }
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(
                UBig::from(a).mul_ref(&UBig::from(b)).to_u128(),
                Some(a as u128 * b as u128)
            );
        }

        #[test]
        fn prop_mul_small_matches_mul_ref(a in any::<u128>(), s in any::<u32>()) {
            prop_assert_eq!(
                UBig::from(a).mul_small(s),
                UBig::from(a).mul_ref(&UBig::from(s))
            );
        }

        #[test]
        fn prop_div_rem_roundtrip(a in any::<u128>(), d in 1u32..) {
            let v = UBig::from(a);
            let (q, r) = v.div_rem_small(d);
            prop_assert!(r < d);
            prop_assert_eq!(q.mul_small(d).add_ref(&UBig::from(r)), v);
        }

        #[test]
        fn prop_display_parse_roundtrip(a in any::<u128>()) {
            let v = UBig::from(a);
            let back: UBig = v.to_string().parse().unwrap();
            prop_assert_eq!(v.to_string(), a.to_string());
            prop_assert_eq!(back, v);
        }

        #[test]
        fn prop_parity_matches_u128(a in any::<u128>()) {
            prop_assert_eq!(UBig::from(a).is_even(), a % 2 == 0);
        }

        #[test]
        fn prop_cmp_matches_u128((a, b) in arb_u128_pair()) {
            prop_assert_eq!(UBig::from(a).cmp(&UBig::from(b)), a.cmp(&b));
        }
    }
}
