//! Minimal arbitrary-precision unsigned integer arithmetic.
//!
//! The scenario index function of Fevat & Godard (Definition III.1) maps
//! words of length `r` over the three-letter alphabet Γ bijectively onto
//! `[0, 3^r - 1]`. Experiments routinely exercise scenarios hundreds of
//! rounds long, so index values overflow every primitive integer type.
//! This crate provides [`UBig`], a small, dependency-free unsigned bignum
//! tailored to exactly the operations the index calculus needs:
//!
//! * addition, subtraction (checked), comparison;
//! * multiplication by a small word and full schoolbook multiplication;
//! * the specific affine updates `3·x`, `2·x + y` used by the consensus
//!   algorithm `A_w` (Algorithm 1 of the paper);
//! * parity (the sign `(-1)^{ind(u)}` in Definition III.1);
//! * powers of three, absolute difference, decimal I/O.
//!
//! The representation is little-endian base-2³² limbs with no leading zero
//! limb (canonical form), so equality and ordering are structural.

mod ubig;

pub use ubig::{ParseUBigError, UBig};

/// Returns `3^exp` as a [`UBig`].
///
/// This is the size of the index space for words of length `exp`
/// (Lemma III.2: `ind` is a bijection from `Γ^r` onto `[0, 3^r - 1]`).
pub fn pow3(exp: u32) -> UBig {
    UBig::from(3u32).pow(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow3_small_values() {
        assert_eq!(pow3(0), UBig::from(1u32));
        assert_eq!(pow3(1), UBig::from(3u32));
        assert_eq!(pow3(4), UBig::from(81u32));
        assert_eq!(pow3(20), UBig::from(3486784401u64));
    }

    #[test]
    fn pow3_large_is_consistent_with_repeated_mul() {
        let mut acc = UBig::one();
        for e in 0..200u32 {
            assert_eq!(pow3(e), acc);
            acc = acc.mul_small(3);
        }
    }
}
