//! Deterministic ω-automata over small integer alphabets.

use std::collections::BTreeSet;

/// Acceptance condition of one deterministic automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acceptance {
    /// Accept iff the run visits the marked set infinitely often.
    Buchi(BTreeSet<usize>),
    /// Accept iff the run visits the marked set only finitely often.
    CoBuchi(BTreeSet<usize>),
}

impl Acceptance {
    /// The complement acceptance (exact for deterministic automata).
    pub fn complement(&self) -> Acceptance {
        match self {
            Acceptance::Buchi(f) => Acceptance::CoBuchi(f.clone()),
            Acceptance::CoBuchi(f) => Acceptance::Buchi(f.clone()),
        }
    }

    /// The marked state set.
    pub fn marks(&self) -> &BTreeSet<usize> {
        match self {
            Acceptance::Buchi(f) | Acceptance::CoBuchi(f) => f,
        }
    }
}

/// A complete deterministic transition structure over the alphabet
/// `0..alphabet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetAutomaton {
    alphabet: usize,
    /// `trans[state][letter]` = next state.
    trans: Vec<Vec<usize>>,
    init: usize,
}

impl DetAutomaton {
    /// Builds an automaton; `trans[s]` must have one entry per letter.
    ///
    /// # Panics
    /// Panics on malformed transition tables.
    pub fn new(alphabet: usize, trans: Vec<Vec<usize>>, init: usize) -> DetAutomaton {
        assert!(init < trans.len(), "initial state out of range");
        for (s, row) in trans.iter().enumerate() {
            assert_eq!(row.len(), alphabet, "state {s} row has wrong arity");
            for &t in row {
                assert!(t < trans.len(), "state {s} has out-of-range successor {t}");
            }
        }
        DetAutomaton {
            alphabet,
            trans,
            init,
        }
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// The initial state.
    pub fn init(&self) -> usize {
        self.init
    }

    /// One transition step.
    pub fn step(&self, state: usize, letter: usize) -> usize {
        self.trans[state][letter]
    }

    /// Runs a finite word from the initial state.
    pub fn run(&self, word: &[usize]) -> usize {
        word.iter().fold(self.init, |s, &a| self.step(s, a))
    }

    /// The same structure with a different initial state.
    pub fn with_init(&self, init: usize) -> DetAutomaton {
        assert!(init < self.trans.len());
        DetAutomaton {
            alphabet: self.alphabet,
            trans: self.trans.clone(),
            init,
        }
    }

    /// Remaps letters: the new automaton reads letter `a` of the new
    /// alphabet as `map(a)` of the old one. Used to lift `Γ`-automata to
    /// the pair alphabet `Γ × Γ` via projections.
    pub fn relabel(&self, new_alphabet: usize, map: impl Fn(usize) -> usize) -> DetAutomaton {
        let trans = self
            .trans
            .iter()
            .map(|row| (0..new_alphabet).map(|a| row[map(a)]).collect())
            .collect();
        DetAutomaton {
            alphabet: new_alphabet,
            trans,
            init: self.init,
        }
    }

    /// The set of states the lasso `prefix·cycle^ω` visits infinitely
    /// often (deterministic run).
    ///
    /// # Panics
    /// Panics when `cycle` is empty.
    pub fn lasso_recurrent_states(&self, prefix: &[usize], cycle: &[usize]) -> BTreeSet<usize> {
        assert!(!cycle.is_empty(), "lasso cycle must be nonempty");
        let mut state = self.run(prefix);
        // Iterate the cycle until the state at the cycle boundary repeats.
        let mut seen_at_boundary = vec![state];
        loop {
            for &a in cycle {
                state = self.step(state, a);
            }
            if let Some(pos) = seen_at_boundary.iter().position(|&s| s == state) {
                // The boundary states from `pos` on repeat forever; the
                // recurrent set is everything visited within that loop.
                let mut recurrent = BTreeSet::new();
                let mut s = seen_at_boundary[pos];
                loop {
                    for &a in cycle {
                        recurrent.insert(s);
                        s = self.step(s, a);
                    }
                    recurrent.insert(s);
                    if s == seen_at_boundary[pos] {
                        break;
                    }
                }
                return recurrent;
            }
            seen_at_boundary.push(state);
        }
    }
}

/// One accepted-language obligation: a deterministic automaton plus its
/// acceptance condition. Schemes are conjunctions of obligations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// The transition structure.
    pub automaton: DetAutomaton,
    /// The acceptance condition.
    pub acceptance: Acceptance,
}

impl Obligation {
    /// Builds an obligation.
    pub fn new(automaton: DetAutomaton, acceptance: Acceptance) -> Obligation {
        for &s in acceptance.marks() {
            assert!(s < automaton.state_count(), "mark {s} out of range");
        }
        Obligation {
            automaton,
            acceptance,
        }
    }

    /// Does the lasso `prefix·cycle^ω` satisfy this obligation?
    pub fn accepts_lasso(&self, prefix: &[usize], cycle: &[usize]) -> bool {
        let recurrent = self.automaton.lasso_recurrent_states(prefix, cycle);
        match &self.acceptance {
            Acceptance::Buchi(f) => recurrent.iter().any(|s| f.contains(s)),
            Acceptance::CoBuchi(f) => recurrent.iter().all(|s| !f.contains(s)),
        }
    }

    /// The complement obligation (exact: the automaton is deterministic).
    pub fn complement(&self) -> Obligation {
        Obligation {
            automaton: self.automaton.clone(),
            acceptance: self.acceptance.complement(),
        }
    }

    /// An obligation accepting every word of the alphabet.
    pub fn trivial(alphabet: usize) -> Obligation {
        Obligation {
            automaton: DetAutomaton::new(alphabet, vec![vec![0; alphabet]], 0),
            acceptance: Acceptance::CoBuchi(BTreeSet::new()),
        }
    }

    /// A safety obligation: letters must always satisfy `allowed`; one
    /// forbidden letter jumps to an absorbing dead state.
    pub fn letter_safety(alphabet: usize, allowed: impl Fn(usize) -> bool) -> Obligation {
        // State 0 = alive, 1 = dead (absorbing).
        let trans = vec![
            (0..alphabet)
                .map(|a| if allowed(a) { 0 } else { 1 })
                .collect(),
            vec![1; alphabet],
        ];
        Obligation {
            automaton: DetAutomaton::new(alphabet, trans, 0),
            acceptance: Acceptance::CoBuchi([1].into()),
        }
    }

    /// A liveness obligation: some letter satisfying `goal` must occur
    /// infinitely often.
    pub fn letter_recurrence(alphabet: usize, goal: impl Fn(usize) -> bool) -> Obligation {
        // State 1 = "last letter was a goal letter".
        let row = |_: usize| -> Vec<usize> {
            (0..alphabet)
                .map(|a| if goal(a) { 1 } else { 0 })
                .collect()
        };
        Obligation {
            automaton: DetAutomaton::new(alphabet, vec![row(0), row(1)], 0),
            acceptance: Acceptance::Buchi([1].into()),
        }
    }

    /// An eventuality obligation: some letter satisfying `goal` must occur
    /// at least once.
    pub fn letter_eventually(alphabet: usize, goal: impl Fn(usize) -> bool) -> Obligation {
        // State 1 = "a goal letter has occurred" (absorbing).
        let trans = vec![
            (0..alphabet)
                .map(|a| if goal(a) { 1 } else { 0 })
                .collect(),
            vec![1; alphabet],
        ];
        Obligation {
            automaton: DetAutomaton::new(alphabet, trans, 0),
            acceptance: Acceptance::Buchi([1].into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Alphabet {0, 1}; automaton accepting "infinitely many 1s".
    fn inf_ones() -> Obligation {
        Obligation::letter_recurrence(2, |a| a == 1)
    }

    #[test]
    fn lasso_recurrence_simple() {
        let o = inf_ones();
        assert!(o.accepts_lasso(&[], &[1]));
        assert!(o.accepts_lasso(&[0, 0], &[0, 1]));
        assert!(!o.accepts_lasso(&[1, 1, 1], &[0]));
    }

    #[test]
    fn cobuchi_complement_flips() {
        let o = inf_ones();
        let c = o.complement();
        assert!(!c.accepts_lasso(&[], &[1]));
        assert!(c.accepts_lasso(&[1, 1], &[0]));
        assert_eq!(c.complement(), o);
    }

    #[test]
    fn safety_obligation() {
        let only_zero = Obligation::letter_safety(3, |a| a == 0);
        assert!(only_zero.accepts_lasso(&[], &[0]));
        assert!(only_zero.accepts_lasso(&[0, 0], &[0, 0]));
        assert!(!only_zero.accepts_lasso(&[1], &[0]));
        assert!(!only_zero.accepts_lasso(&[], &[0, 2]));
    }

    #[test]
    fn eventually_obligation() {
        let hits_two = Obligation::letter_eventually(3, |a| a == 2);
        assert!(hits_two.accepts_lasso(&[2], &[0]));
        assert!(hits_two.accepts_lasso(&[0, 0], &[1, 2]));
        assert!(!hits_two.accepts_lasso(&[0, 1], &[0, 1]));
    }

    #[test]
    fn trivial_accepts_all() {
        let t = Obligation::trivial(4);
        assert!(t.accepts_lasso(&[3, 2, 1], &[0]));
        assert!(t.accepts_lasso(&[], &[0, 1, 2, 3]));
    }

    #[test]
    fn relabel_projects() {
        // Lift "infinitely many 1s" over {0,1} to pairs (a,b) in {0,1}²
        // (encoded 2a+b) reading the first component.
        let lifted = Obligation {
            automaton: inf_ones().automaton.relabel(4, |pair| pair / 2),
            acceptance: inf_ones().acceptance,
        };
        assert!(lifted.accepts_lasso(&[], &[2])); // (1,0) forever
        assert!(!lifted.accepts_lasso(&[], &[1])); // (0,1) forever
    }

    #[test]
    fn with_init_changes_start() {
        let o = Obligation::letter_eventually(2, |a| a == 1);
        let started = Obligation {
            automaton: o.automaton.with_init(1),
            acceptance: o.acceptance.clone(),
        };
        assert!(started.accepts_lasso(&[], &[0]), "already in the good state");
    }

    #[test]
    fn run_walks_word() {
        let o = Obligation::letter_eventually(2, |a| a == 1);
        assert_eq!(o.automaton.run(&[0, 0, 0]), 0);
        assert_eq!(o.automaton.run(&[0, 1, 0]), 1);
    }

    #[test]
    fn recurrent_states_of_long_preperiod() {
        // Cycle alignment requires several traversals when the automaton's
        // period and the cycle length interact; exercise with a mod-3
        // counter against a 2-letter cycle.
        let trans = vec![
            vec![1, 1],
            vec![2, 2],
            vec![0, 0],
        ];
        let auto = DetAutomaton::new(2, trans, 0);
        let rec = auto.lasso_recurrent_states(&[], &[0, 1]);
        // Cycle of length 2 against period 3: all states recurrent.
        assert_eq!(rec, [0, 1, 2].into());
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn malformed_table_rejected() {
        let _ = DetAutomaton::new(2, vec![vec![0]], 0);
    }

    #[test]
    #[should_panic(expected = "cycle must be nonempty")]
    fn empty_cycle_rejected() {
        let o = inf_ones();
        let _ = o.automaton.lasso_recurrent_states(&[0], &[]);
    }
}
